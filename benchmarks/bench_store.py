"""Store economics: a warm cache load versus a cold certified compile.

The store's value proposition is that replaying stored certificates is
cheaper than re-running the optimizer, *without* giving up the "no load
without a passing re-check" guarantee.  These benchmarks put a number on
both sides of that trade: the cold path (parse + optimize + certify +
store) and the warm path (load + envelope checks + certificate replay).
"""

from __future__ import annotations

from repro.core.abcd import ABCDConfig
from repro.ir.printer import format_program
from repro.store import CertStore, cached_optimize_source

SRC = """
fn sum(a: int[], n: int): int {
  let s: int = 0;
  for (let i: int = 0; i < n; i = i + 1) {
    if (i < len(a)) {
      s = s + a[i];
    }
  }
  return s;
}
fn main(): int {
  let a: int[] = new int[64];
  for (let i: int = 0; i < len(a); i = i + 1) {
    a[i] = i * 3;
  }
  let total: int = 0;
  for (let round: int = 0; round < 8; round = round + 1) {
    total = total + sum(a, len(a));
  }
  return total;
}
"""


def test_cold_certified_compile(benchmark, tmp_path):
    """The miss path: certified compile + atomic store write."""
    counter = {"n": 0}

    def cold():
        # A fresh directory per round keeps every compile a true miss.
        counter["n"] += 1
        store = CertStore(str(tmp_path / f"cold-{counter['n']}"))
        outcome = cached_optimize_source(store, SRC, ABCDConfig())
        assert not outcome.hit
        return outcome

    outcome = benchmark(cold)
    assert outcome.status == "miss-stored", outcome.unstored_reason


def test_warm_cache_load(benchmark, tmp_path):
    """The hit path: envelope checks + certificate replay, no optimizer."""
    store = CertStore(str(tmp_path / "warm"))
    seeded = cached_optimize_source(store, SRC, ABCDConfig())
    assert seeded.status == "miss-stored", seeded.unstored_reason
    expected = format_program(seeded.program)

    def warm():
        outcome = cached_optimize_source(store, SRC, ABCDConfig())
        assert outcome.hit
        return outcome

    outcome = benchmark(warm)
    # The guarantee the speed must not cost: byte-identical output and a
    # replayed certificate behind every elimination.
    assert format_program(outcome.program) == expected
    assert store.invariant_violations() == 0
