#!/usr/bin/env python
"""Gate the standard-pipeline sparseness counters against a budget.

Reads ``repro bench --json`` output (stdin or ``--input FILE``), extracts
three per-program metrics and compares each against
``benchmarks/perf_budget.json``:

* ``instructions_visited`` for the ``standard-pipeline`` pass — the
  worklist sparseness budget;
* ``solver.steps.upper + solver.steps.lower`` from the session counters —
  the demand-prover traversal budget.  The budgeted values were recorded
  with the unified dual-direction session, which shares one memo across
  both directions and all check sites; regressing past them usually
  means the sharing broke (e.g. per-site provers came back);
* ``dbm_cells_relaxed`` from the solver ablation's closure leg — the
  closure tier's cell-evaluation budget.  Regressing past it usually
  means the closed-cell memoization broke (e.g. open-cycle values
  started being re-derived per query).

The budget file also pins ``hybrid_crossover_checks``, the measured
demand/closure scheduler threshold (``bench_solver_tiers.py``); the
check fails when it drifts from ``repro.core.backend``'s
``HYBRID_CROSSOVER_CHECKS`` constant — the two must be updated
together, with a fresh measurement.

A program exceeding its budget by more than the file's ``tolerance``
(default 20%) fails the check; a program missing from the budget fails
the check — new programs must be budgeted explicitly.  ``--write``
instead refreshes the budget file with the measured values (for
intentional changes; commit the diff).

Exit status: 0 when all programs are within budget, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BUDGET_PATH = Path(__file__).resolve().parent / "perf_budget.json"
PASS_NAME = "standard-pipeline"


def measured_visits(bench_results) -> dict:
    visits = {}
    for entry in bench_results:
        for record in entry.get("session_stats", {}).get("passes", []):
            if record["name"] == PASS_NAME:
                visits[entry["name"]] = record["instructions_visited"]
    return visits


def measured_solver_steps(bench_results) -> dict:
    steps = {}
    for entry in bench_results:
        counters = entry.get("session_stats", {}).get("counters", {})
        if "solver.steps.upper" in counters or "solver.steps.lower" in counters:
            steps[entry["name"]] = counters.get(
                "solver.steps.upper", 0
            ) + counters.get("solver.steps.lower", 0)
    return steps


def measured_dbm_cells(bench_results) -> dict:
    """Closure-tier cell evaluations, from the per-program solver
    ablation (preferred: present in every ``bench --json`` run) or the
    session counters (a ``--solver=closure`` bench run)."""
    cells = {}
    for entry in bench_results:
        ablation = entry.get("solver_ablation") or {}
        closure = ablation.get("closure") or {}
        if "dbm_cells_relaxed" in closure:
            cells[entry["name"]] = closure["dbm_cells_relaxed"]
            continue
        counters = entry.get("session_stats", {}).get("counters", {})
        if "solver.dbm_cells_relaxed" in counters:
            cells[entry["name"]] = counters["solver.dbm_cells_relaxed"]
    return cells


def check_crossover(budget: dict):
    """The scheduler constant and the budget pin must agree."""
    budgeted = budget.get("hybrid_crossover_checks")
    if budgeted is None:
        return ["hybrid_crossover_checks missing from the budget file"]
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.core.backend import HYBRID_CROSSOVER_CHECKS

    print(
        f"{'crossover':>18}: checks {HYBRID_CROSSOVER_CHECKS:>6} "
        f"budget {budgeted:>6} "
        f"{'ok' if budgeted == HYBRID_CROSSOVER_CHECKS else 'FAIL'}"
    )
    if budgeted != HYBRID_CROSSOVER_CHECKS:
        return [
            f"hybrid_crossover_checks: budget pins {budgeted} but "
            f"backend.HYBRID_CROSSOVER_CHECKS is {HYBRID_CROSSOVER_CHECKS}; "
            "re-measure with benchmarks/bench_solver_tiers.py and update both"
        ]
    return []


def check_metric(label: str, measured: dict, budgeted: dict, tolerance: float):
    failures = []
    for name, value in sorted(measured.items()):
        allowed = budgeted.get(name)
        if allowed is None:
            failures.append(f"{name}: {label} not budgeted (measured {value})")
            continue
        ceiling = allowed * (1.0 + tolerance)
        status = "ok" if value <= ceiling else "FAIL"
        print(
            f"{name:>18}: {label} {value:>6} budget {allowed:>6} "
            f"(ceiling {ceiling:>8.1f}) {status}"
        )
        if value > ceiling:
            failures.append(
                f"{name}: {value} {label} > {ceiling:.1f} "
                f"({allowed} +{tolerance:.0%})"
            )
    total = sum(measured.values())
    total_budget = sum(budgeted.get(name, 0) for name in measured)
    print(f"{'TOTAL':>18}: {label} {total:>6} budget {total_budget:>6}")
    return failures


def check(visits: dict, steps: dict, cells: dict, budget: dict) -> int:
    tolerance = budget.get("tolerance", 0.20)
    failures = check_metric(
        "visited", visits,
        budget["standard_pipeline_instructions_visited"], tolerance,
    )
    failures += check_metric(
        "steps", steps, budget.get("solver_steps", {}), tolerance,
    )
    if cells:
        failures += check_metric(
            "cells", cells, budget.get("dbm_cells_relaxed", {}), tolerance,
        )
    elif budget.get("dbm_cells_relaxed"):
        failures.append(
            "dbm_cells_relaxed budgeted but no closure-tier measurements "
            "found in the bench output"
        )
    failures += check_crossover(budget)
    for failure in failures:
        print(f"perf budget exceeded: {failure}", file=sys.stderr)
    return 1 if failures else 0


def write_budget(visits: dict, steps: dict, cells: dict, budget: dict) -> None:
    budget["standard_pipeline_instructions_visited"] = {
        name: visits[name] for name in visits
    }
    budget["solver_steps"] = {name: steps[name] for name in steps}
    if cells:
        budget["dbm_cells_relaxed"] = {name: cells[name] for name in cells}
    BUDGET_PATH.write_text(json.dumps(budget, indent=2) + "\n")
    print(f"budget refreshed: {BUDGET_PATH}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--input",
        help="bench --json output file (default: read stdin)",
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help="refresh the budget file with the measured values",
    )
    args = parser.parse_args(argv)

    if args.input:
        bench_results = json.loads(Path(args.input).read_text())
    else:
        bench_results = json.load(sys.stdin)
    budget = json.loads(BUDGET_PATH.read_text())

    visits = measured_visits(bench_results)
    if not visits:
        print(
            f"no '{PASS_NAME}' pass stats found in bench output",
            file=sys.stderr,
        )
        return 1
    steps = measured_solver_steps(bench_results)
    if not steps:
        print("no solver step counters found in bench output", file=sys.stderr)
        return 1
    cells = measured_dbm_cells(bench_results)
    if args.write:
        write_budget(visits, steps, cells, budget)
        return 0
    return check(visits, steps, cells, budget)


if __name__ == "__main__":
    sys.exit(main())
