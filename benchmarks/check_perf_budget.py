#!/usr/bin/env python
"""Gate the standard-pipeline sparseness counters against a budget.

Reads ``repro bench --json`` output (stdin or ``--input FILE``), extracts
two per-program metrics and compares each against
``benchmarks/perf_budget.json``:

* ``instructions_visited`` for the ``standard-pipeline`` pass — the
  worklist sparseness budget;
* ``solver.steps.upper + solver.steps.lower`` from the session counters —
  the demand-prover traversal budget.  The budgeted values were recorded
  with the unified dual-direction session, which shares one memo across
  both directions and all check sites; regressing past them usually
  means the sharing broke (e.g. per-site provers came back).

A program exceeding its budget by more than the file's ``tolerance``
(default 20%) fails the check; a program missing from the budget fails
the check — new programs must be budgeted explicitly.  ``--write``
instead refreshes the budget file with the measured values (for
intentional changes; commit the diff).

Exit status: 0 when all programs are within budget, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BUDGET_PATH = Path(__file__).resolve().parent / "perf_budget.json"
PASS_NAME = "standard-pipeline"


def measured_visits(bench_results) -> dict:
    visits = {}
    for entry in bench_results:
        for record in entry.get("session_stats", {}).get("passes", []):
            if record["name"] == PASS_NAME:
                visits[entry["name"]] = record["instructions_visited"]
    return visits


def measured_solver_steps(bench_results) -> dict:
    steps = {}
    for entry in bench_results:
        counters = entry.get("session_stats", {}).get("counters", {})
        if "solver.steps.upper" in counters or "solver.steps.lower" in counters:
            steps[entry["name"]] = counters.get(
                "solver.steps.upper", 0
            ) + counters.get("solver.steps.lower", 0)
    return steps


def check_metric(label: str, measured: dict, budgeted: dict, tolerance: float):
    failures = []
    for name, value in sorted(measured.items()):
        allowed = budgeted.get(name)
        if allowed is None:
            failures.append(f"{name}: {label} not budgeted (measured {value})")
            continue
        ceiling = allowed * (1.0 + tolerance)
        status = "ok" if value <= ceiling else "FAIL"
        print(
            f"{name:>18}: {label} {value:>6} budget {allowed:>6} "
            f"(ceiling {ceiling:>8.1f}) {status}"
        )
        if value > ceiling:
            failures.append(
                f"{name}: {value} {label} > {ceiling:.1f} "
                f"({allowed} +{tolerance:.0%})"
            )
    total = sum(measured.values())
    total_budget = sum(budgeted.get(name, 0) for name in measured)
    print(f"{'TOTAL':>18}: {label} {total:>6} budget {total_budget:>6}")
    return failures


def check(visits: dict, steps: dict, budget: dict) -> int:
    tolerance = budget.get("tolerance", 0.20)
    failures = check_metric(
        "visited", visits,
        budget["standard_pipeline_instructions_visited"], tolerance,
    )
    failures += check_metric(
        "steps", steps, budget.get("solver_steps", {}), tolerance,
    )
    for failure in failures:
        print(f"perf budget exceeded: {failure}", file=sys.stderr)
    return 1 if failures else 0


def write_budget(visits: dict, steps: dict, budget: dict) -> None:
    budget["standard_pipeline_instructions_visited"] = {
        name: visits[name] for name in visits
    }
    budget["solver_steps"] = {name: steps[name] for name in steps}
    BUDGET_PATH.write_text(json.dumps(budget, indent=2) + "\n")
    print(f"budget refreshed: {BUDGET_PATH}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--input",
        help="bench --json output file (default: read stdin)",
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help="refresh the budget file with the measured values",
    )
    args = parser.parse_args(argv)

    if args.input:
        bench_results = json.loads(Path(args.input).read_text())
    else:
        bench_results = json.load(sys.stdin)
    budget = json.loads(BUDGET_PATH.read_text())

    visits = measured_visits(bench_results)
    if not visits:
        print(
            f"no '{PASS_NAME}' pass stats found in bench output",
            file=sys.stderr,
        )
        return 1
    steps = measured_solver_steps(bench_results)
    if not steps:
        print("no solver step counters found in bench output", file=sys.stderr)
        return 1
    if args.write:
        write_budget(visits, steps, budget)
        return 0
    return check(visits, steps, budget)


if __name__ == "__main__":
    sys.exit(main())
