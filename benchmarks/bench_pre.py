"""E7 — partially redundant checks (Section 6).

The paper's device: delete ``limit := A.length`` from the running example,
which disconnects ``limit0`` from ``A.length`` in the inequality graph and
turns the loop checks loop-invariant (partially redundant).  PRE inserts a
compensating check ``A[limit0 + d]`` on the loop-entry edge and the
in-loop check disappears.

We reproduce the device as a function taking the bound as a parameter, and
additionally measure the bytemark kernels, the corpus's partial-redundancy
hot spot.
"""

from __future__ import annotations

from repro.core.abcd import ABCDConfig, optimize_program
from repro.ir.instructions import SpeculativeCheck
from repro.pipeline import clone_program, compile_source, run
from repro.runtime.profiler import collect_profile

SECTION6_SRC = """
fn scan(a: int[], limit: int): int {
  let s: int = 0;
  for (let j: int = 0; j < limit; j = j + 1) {
    s = s + a[j];
  }
  return s;
}
fn main(): int {
  let a: int[] = new int[128];
  for (let i: int = 0; i < len(a); i = i + 1) {
    a[i] = i;
  }
  let total: int = 0;
  for (let round: int = 0; round < 16; round = round + 1) {
    total = total + scan(a, len(a));
  }
  return total;
}
"""


def test_section6_loop_invariant_check(benchmark, corpus_results):
    def transform():
        program = compile_source(SECTION6_SRC)
        profile = collect_profile(program, "main")
        report = optimize_program(program, ABCDConfig(pre=True), profile)
        return program, report

    program, report = benchmark(transform)
    base = compile_source(SECTION6_SRC)

    pre_checks = [a for a in report.analyses if a.pre_applied]
    speculative = [
        i
        for fn in program.functions.values()
        for i in fn.all_instructions()
        if isinstance(i, SpeculativeCheck)
    ]
    base_run = run(base, "main")
    opt_run = run(program, "main")

    print()
    print("E7 — PRE of the Section-6 loop-invariant check")
    print(
        f"PRE-transformed checks: {len(pre_checks)}; "
        f"compensating checks inserted: {len(speculative)}"
    )
    survived = opt_run.stats.total_checks + opt_run.stats.speculative_checks
    print(
        f"dynamic checks: {base_run.stats.total_checks} -> {survived} "
        f"(speculative: {opt_run.stats.speculative_checks}, "
        f"speculation failures: {opt_run.stats.speculation_failures})"
    )
    assert base_run.value == opt_run.value
    assert pre_checks and speculative
    # The hoisted check runs once per loop entry (16 rounds) instead of
    # once per iteration (16 * 128).
    assert survived < base_run.stats.total_checks / 10
    assert opt_run.stats.speculation_failures == 0

    bytemark = corpus_results["bytemark"]
    print(
        f"bytemark: {bytemark.report.pre_transformed} checks PRE-transformed, "
        f"{bytemark.static_partially_redundant_fraction:.1%} of static checks "
        "(paper: 26%)"
    )
    assert bytemark.report.pre_transformed >= 1
