"""E3 — wall-clock analysis time per bounds check.

Paper: "The time to analyze one bounds check ranged from 0 to 35
milliseconds, and averaged around 4 milliseconds" on a 166 MHz PowerPC
604e.  Absolute times are incomparable (different hardware and host
language); the reproduced *shape* is a tight distribution — a small
average with a bounded, heavy-ish tail — and per-check cost independent
of program size (demand-driven sparseness).
"""

from __future__ import annotations

import statistics

from repro.bench.corpus import get
from repro.core.abcd import ABCDConfig, optimize_program
from repro.pipeline import compile_source


def test_per_check_analysis_time(corpus_results, benchmark):
    # Benchmark the per-check unit the paper times: one full demand query
    # (graph reuse included, as in the paper's per-check accounting).
    program = compile_source(get("biDirBubbleSort").source())

    def analyze():
        clone = compile_source(get("biDirBubbleSort").source())
        return optimize_program(clone, ABCDConfig())

    benchmark.pedantic(analyze, rounds=3, iterations=1)

    times_ms = [
        analysis.seconds * 1000.0
        for result in corpus_results.values()
        for analysis in result.report.analyses
    ]
    mean = statistics.mean(times_ms)
    print()
    print("E3 — analysis time per check (paper: 0-35 ms, avg ~4 ms on 166MHz)")
    print(
        f"checks={len(times_ms)}  min={min(times_ms):.4f}ms  "
        f"mean={mean:.4f}ms  p95={statistics.quantiles(times_ms, n=20)[18]:.4f}ms  "
        f"max={max(times_ms):.4f}ms"
    )
    # Shape: single checks analyze in far under a millisecond on modern
    # hardware, and no check takes catastrophically long.
    assert mean < 5.0
    assert max(times_ms) < 250.0
    del program
