#!/usr/bin/env python
"""Deep-chain stress: the solver must not lean on the interpreter stack.

Compiles and certifies the committed depth-10,000 fuzz reproducer with
``sys.setrecursionlimit(1000)`` pinned *below* the chain depth.  Every
depth-proportional layer — the solver's frame machine, witness
construction, witness serialization, and the independent checker's
replay — runs under the pinned limit, so any reintroduced recursion over
the proof structure fails here immediately with a ``RecursionError``.

Exit status: 0 when the program optimizes and certifies cleanly under
the pinned limit, 1 otherwise.
"""

from __future__ import annotations

import pathlib
import sys
import time

REPRODUCER = (
    pathlib.Path(__file__).resolve().parent.parent
    / "tests"
    / "fuzz_corpus"
    / "crash-recursionerror-core.solver._prove.mj"
)

PINNED_LIMIT = 1000


def main() -> int:
    from repro.core.abcd import ABCDConfig
    from repro.fuzz.triage import read_reproducer
    from repro.pipeline import abcd, compile_source

    _, source = read_reproducer(REPRODUCER)
    program = compile_source(source)

    sys.setrecursionlimit(PINNED_LIMIT)
    try:
        started = time.monotonic()
        report = abcd(program, config=ABCDConfig(certify=True))
        elapsed = time.monotonic() - started
    finally:
        sys.setrecursionlimit(10_000)

    eliminated = report.eliminated_count()
    accepted = report.certificates_accepted
    rejected = report.certificates_rejected
    revoked = report.revoked_count
    print(
        f"deep-chain stress: recursionlimit {PINNED_LIMIT}, "
        f"{report.analyzed} checks analyzed, {eliminated} eliminated, "
        f"{accepted} certificates accepted, {rejected} rejected, "
        f"{revoked} revoked in {elapsed:.1f}s"
    )
    if eliminated == 0:
        print("deep-chain stress: no eliminations — chain program "
              "no longer exercises the solver", file=sys.stderr)
        return 1
    if rejected or revoked or accepted != report.certificates_emitted:
        print("deep-chain stress: certificate pipeline degraded under "
              "the pinned recursion limit", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
