"""Shared fixtures for the experiment benchmarks (E1–E8, see DESIGN.md).

The full corpus measurement is expensive (it interprets every program
twice plus a profiling run), so it is computed once per session and shared
by the benchmark files.
"""

from __future__ import annotations

import pytest

from repro.bench.corpus import CORPUS, get
from repro.bench.harness import BenchResult, run_benchmark


@pytest.fixture(scope="session")
def corpus_results():
    """Figure-6 pipeline over the whole corpus (ABCD + PRE)."""
    results = {}
    for program in CORPUS:
        results[program.name] = run_benchmark(program, pre=True)
    for name, result in results.items():
        assert result.behaviour_preserved, f"{name}: behaviour changed"
    return results


@pytest.fixture(scope="session")
def symantec_results(corpus_results):
    return {
        name: result
        for name, result in corpus_results.items()
        if get(name).category == "symantec"
    }
