"""Shared fixtures for the experiment benchmarks (E1–E8, see DESIGN.md).

The full corpus measurement is expensive (it interprets every program
twice plus a profiling run), so it is computed once per session and shared
by the benchmark files.
"""

from __future__ import annotations

import pytest

from repro.bench.corpus import CORPUS, get
from repro.bench.harness import BenchResult, run_benchmark
from repro.limits import hard_deadline

#: Hard wall-clock ceiling per benchmark test.  A solver or interpreter
#: regression that hangs would otherwise stall the whole suite; with the
#: alarm it surfaces as one failing test.  Generous because the first test
#: to request ``corpus_results`` pays for the whole session-scoped sweep.
BENCH_TIMEOUT_SECONDS = 600


@pytest.fixture(autouse=True)
def per_benchmark_timeout(request):
    """Fail any benchmark that runs longer than ``BENCH_TIMEOUT_SECONDS``.

    Uses :func:`repro.limits.hard_deadline` (SIGALRM under the hood, no
    external timeout plugin needed); on platforms without SIGALRM or off
    the main thread the guard is a no-op.
    """
    with hard_deadline(
        BENCH_TIMEOUT_SECONDS,
        lambda: TimeoutError(
            f"benchmark {request.node.name} exceeded "
            f"{BENCH_TIMEOUT_SECONDS}s wall-clock budget"
        ),
    ):
        yield


@pytest.fixture(scope="session")
def corpus_results():
    """Figure-6 pipeline over the whole corpus (ABCD + PRE)."""
    results = {}
    for program in CORPUS:
        results[program.name] = run_benchmark(program, pre=True)
    for name, result in results.items():
        assert result.behaviour_preserved, f"{name}: behaviour changed"
    return results


@pytest.fixture(scope="session")
def symantec_results(corpus_results):
    return {
        name: result
        for name, result in corpus_results.items()
        if get(name).category == "symantec"
    }
