"""E4 — static redundancy statistics.

Paper (Section 8): "In static terms, the average number of checks that
were found fully redundant was about 31%.  Only bytemark had a significant
number of static checks that were partially redundant (26%)."

Our corpus is idiom-dense, so the fully-redundant fraction runs higher than
31%; the shape targets are (a) a substantial static fully-redundant
fraction everywhere, and (b) partial redundancy concentrated in bytemark.
"""

from __future__ import annotations

from repro.bench.corpus import get
from repro.bench.harness import run_benchmark


def test_static_fractions(corpus_results, benchmark):
    benchmark(lambda: run_benchmark(get("bytemark"), pre=True))

    print()
    print("E4 — static redundancy (paper: ~31% fully; bytemark 26% partially)")
    print(f"{'benchmark':<18}{'analyzed':>9}{'fully':>8}{'partially':>11}")
    partial_fractions = {}
    for name, result in corpus_results.items():
        fully = result.static_fully_redundant_fraction
        partial = result.static_partially_redundant_fraction
        partial_fractions[name] = partial
        print(
            f"{name:<18}{result.report.analyzed:>9}{fully:>8.1%}{partial:>11.1%}"
        )

    # bytemark is the partial-redundancy outlier, as in the paper.
    bytemark_partial = partial_fractions.pop("bytemark")
    assert bytemark_partial > 0.05
    assert bytemark_partial >= max(partial_fractions.values())


def test_fully_redundant_mean(corpus_results, benchmark):
    benchmark(lambda: None)
    fractions = [
        r.static_fully_redundant_fraction for r in corpus_results.values()
    ]
    mean = sum(fractions) / len(fractions)
    print(f"\nmean static fully-redundant fraction: {mean:.1%} (paper: ~31%)")
    assert mean > 0.31
