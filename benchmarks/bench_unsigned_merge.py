"""E9 — merged unsigned checks (paper, Section 7.2).

"A trick that can merge an upper- and a lower-bound check into a single
check instruction ... performed as an unsigned comparison."  After ABCD,
the surviving check pairs are fused; a merged check costs 2 cycles in the
VM model instead of 3.  Measured: the extra cycle savings on the corpus'
residual checks.
"""

from __future__ import annotations

from repro.bench.corpus import CORPUS, get
from repro.core.abcd import ABCDConfig, optimize_program
from repro.core.extensions import merge_program_unsigned_checks
from repro.pipeline import clone_program, compile_source, run


def test_unsigned_merge_savings(benchmark):
    benchmark(
        lambda: merge_program_unsigned_checks(
            compile_source(get("Hanoi").source())
        )
    )

    print()
    print("E9 — cycle savings from merging residual check pairs (§7.2)")
    print(f"{'benchmark':<18}{'pairs':>7}{'cycles pre':>12}{'cycles post':>12}{'gain':>7}")
    total_pairs = 0
    for program_def in CORPUS:
        program = compile_source(program_def.source())
        optimize_program(program, ABCDConfig())
        unmerged = clone_program(program)
        report = merge_program_unsigned_checks(program)
        total_pairs += report.merged_pairs
        if report.merged_pairs == 0:
            continue
        pre = run(unmerged, "main", fuel=100_000_000).stats
        post = run(program, "main", fuel=100_000_000).stats
        gain = (pre.cycles - post.cycles) / pre.cycles
        print(
            f"{program_def.name:<18}{report.merged_pairs:>7}"
            f"{pre.cycles:>12}{post.cycles:>12}{gain:>7.1%}"
        )
        assert post.cycles <= pre.cycles
        assert post.unsigned_checks > 0
    print(f"{'TOTAL pairs':<18}{total_pairs:>7}")
    assert total_pairs > 0
