"""Micro-benchmark: structural ``Program.clone()`` vs ``copy.deepcopy``.

Guard snapshots and differential cloning used to go through
``copy.deepcopy``, which walks every object (including shared immutable
operands and type objects) with memo bookkeeping.  The structural clone
duplicates only the mutable pieces — blocks, instruction objects, φ
incoming maps — and shares the frozen ones, so a snapshot of the largest
corpus program should be an order of magnitude cheaper.
"""

from __future__ import annotations

import copy
import time
from typing import Callable

from repro.bench.corpus import CORPUS
from repro.ir.printer import format_program
from repro.pipeline import compile_source

#: Conservative floor — the measured speedup is ~20x; anything below this
#: means the structural clone has regressed toward a full object walk.
MIN_SPEEDUP = 3.0


def _largest_corpus_program():
    best = None
    for program_def in CORPUS:
        program = compile_source(program_def.source())
        size = sum(
            len(list(fn.all_instructions())) for fn in program.functions.values()
        )
        if best is None or size > best[1]:
            best = (program_def.name, size, program)
    return best


def _best_of(action: Callable[[], object], reps: int = 30) -> float:
    times = []
    for _ in range(reps):
        started = time.perf_counter()
        action()
        times.append(time.perf_counter() - started)
    return min(times)


def test_structural_clone_beats_deepcopy():
    name, size, program = _largest_corpus_program()
    deepcopy_seconds = _best_of(lambda: copy.deepcopy(program))
    clone_seconds = _best_of(lambda: program.clone())
    speedup = deepcopy_seconds / clone_seconds

    print(f"\nclone micro-benchmark — largest corpus program: {name} ({size} instrs)")
    print(f"{'strategy':<12}{'best of 30':>14}")
    print(f"{'deepcopy':<12}{deepcopy_seconds * 1000:>12.3f}ms")
    print(f"{'clone':<12}{clone_seconds * 1000:>12.3f}ms")
    print(f"speedup: {speedup:.1f}x")

    # The snapshot must be byte-identical in IR terms, not just faster.
    assert format_program(program.clone()) == format_program(program)
    assert speedup > MIN_SPEEDUP, (
        f"structural clone only {speedup:.1f}x faster than deepcopy "
        f"(expected > {MIN_SPEEDUP}x)"
    )
