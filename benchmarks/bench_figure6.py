"""E1 — Figure 6: fraction of dynamic upper-bound checks removed.

Paper: ABCD removes on average 45% of dynamic upper-bound checks; the
Symantec microbenchmarks reach near-ideal elimination; the five SPEC
programs are shown with a local/global split.

Our corpus consists of idiom-preserving MiniJ kernels (see DESIGN.md), so
absolute numbers run higher than the paper's full Java applications — the
*shape* is the reproduction target: micros near-total, Hanoi/Dhrystone/mpeg
limited by interprocedural parameters and multiplicative indexing, SPEC
mixed, and the removal dominated by global (not local) redundancy.
"""

from __future__ import annotations

from repro.bench.corpus import get
from repro.bench.harness import format_figure6, run_benchmark


def test_figure6_table(corpus_results, benchmark):
    """Regenerate Figure 6 and benchmark one representative pipeline run."""
    results = list(corpus_results.values())

    benchmark(lambda: run_benchmark(get("Sieve"), pre=False))

    table = format_figure6(results)
    print()
    print(table)

    mean = sum(r.dynamic_upper_removed_fraction for r in results) / len(results)
    assert mean > 0.45, "reproduction should at least reach the paper's mean"
    # Near-ideal micro benchmarks (paper: "near-optimal" on Symantec).
    assert corpus_results["biDirBubbleSort"].dynamic_upper_removed_fraction > 0.95
    assert corpus_results["Array"].dynamic_upper_removed_fraction > 0.95
    # Hard cases stay hard.
    assert corpus_results["Hanoi"].dynamic_upper_removed_fraction < 0.7
    assert corpus_results["mpeg"].dynamic_upper_removed_fraction < 0.8


def test_figure6_local_global_split(corpus_results, benchmark):
    """The SPEC rows' local/global split: global redundancy dominates."""
    benchmark(lambda: corpus_results["db"].dynamic_upper_removed_split())
    print()
    print(f"{'benchmark':<12}{'local':>9}{'global':>9}")
    for name in ("db", "compress", "mpeg", "jack", "jess"):
        split = corpus_results[name].dynamic_upper_removed_split()
        print(f"{name:<12}{split['local']:>8.1%}{split['global']:>8.1%}")
        assert split["global"] >= split["local"]
