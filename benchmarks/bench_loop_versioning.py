"""E8c — ABCD vs loop versioning (the [MMS98] restructuring comparator).

The paper argues code-duplicating approaches are "too expensive for a
dynamic compiler" and performs hoisting instead.  This benchmark
quantifies both sides on the corpus:

* dynamic checks removed (versioning only covers inductive loop checks;
  ABCD also removes straight-line subsumption, guard-derived, and —
  with PRE — loop-invariant checks);
* code growth (versioning clones loop bodies; ABCD only deletes).
"""

from __future__ import annotations

from repro.baselines.loop_versioning import version_program_loops
from repro.bench.corpus import CORPUS, get
from repro.core.abcd import ABCDConfig, optimize_program
from repro.frontend.parser import parse_source
from repro.frontend.semantic import check_program
from repro.ir.lowering import lower_program
from repro.pipeline import compile_source, run
from repro.ssa.essa import construct_essa
from repro.opt import run_standard_pipeline


def _program_size(program) -> int:
    return sum(1 for fn in program.functions.values() for _ in fn.all_instructions())


def _versioned_program(source: str):
    ast = parse_source(source)
    info = check_program(ast)
    program = lower_program(ast, info)
    report = version_program_loops(program)
    for fn in program.functions.values():
        construct_essa(fn)
        run_standard_pipeline(fn)
    return program, report


def test_versioning_vs_abcd(benchmark):
    benchmark(lambda: _versioned_program(get("Sieve").source()))

    print()
    print("E8c — dynamic checks removed and code growth: versioning vs ABCD")
    print(
        f"{'benchmark':<18}{'ver %':>8}{'abcd %':>8}{'ver growth':>12}{'abcd growth':>12}"
    )
    versioning_wins = abcd_wins = 0
    for program_def in CORPUS:
        plain = compile_source(program_def.source())
        base_run = run(plain, "main", fuel=100_000_000)
        base_checks = base_run.stats.total_checks
        plain_size = _program_size(plain)

        versioned, _ = _versioned_program(program_def.source())
        versioned_run = run(versioned, "main", fuel=100_000_000)
        assert versioned_run.value == base_run.value, program_def.name
        versioned_removed = 1 - versioned_run.stats.total_checks / base_checks
        versioned_growth = _program_size(versioned) / plain_size - 1

        optimized = compile_source(program_def.source())
        optimize_program(optimized, ABCDConfig())
        optimized_run = run(optimized, "main", fuel=100_000_000)
        assert optimized_run.value == base_run.value, program_def.name
        abcd_removed = 1 - optimized_run.stats.total_checks / base_checks
        abcd_growth = _program_size(optimized) / plain_size - 1

        if versioned_removed > abcd_removed + 0.01:
            versioning_wins += 1
        elif abcd_removed > versioned_removed + 0.01:
            abcd_wins += 1
        print(
            f"{program_def.name:<18}{versioned_removed:>8.1%}{abcd_removed:>8.1%}"
            f"{versioned_growth:>+12.1%}{abcd_growth:>+12.1%}"
        )
        # The structural claim: versioning grows code, ABCD shrinks it.
        assert abcd_growth <= 0.0
    print(f"coverage wins: abcd={abcd_wins} versioning={versioning_wins}")
    assert abcd_wins >= versioning_wins
