"""E8 — ablations of ABCD's design choices (DESIGN.md Section 5).

Variants measured over the corpus (static upper-check elimination rate):

* **full**      — the default configuration (π constraints, allocation
                  facts, GVN consultation, PRE off for comparability);
* **no-π**      — C4/C5 predicate edges dropped (e-SSA degraded to SSA
                  value flow): the paper's central representation choice;
* **no-alloc**  — allocation length facts off (pure Table 1);
* **gvn-aug**   — GVN congruence edges added (Section 7.1, general form);
* **exhaustive**— the batch fixpoint solver instead of the demand-driven
                  one: same eliminations, different work profile.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.bench.corpus import CORPUS, get
from repro.core.abcd import ABCDConfig, optimize_program
from repro.core.constraints import build_graphs
from repro.core.exhaustive import compute_distances
from repro.core.graph import const_node, len_node, var_node
from repro.ir.instructions import CheckLower, CheckUpper, Var
from repro.pipeline import compile_source


def _upper_elimination_rate(config: ABCDConfig, inline: bool = False) -> float:
    eliminated = analyzed = 0
    for program_def in CORPUS:
        import dataclasses

        program = compile_source(program_def.source(), inline=inline)
        report = optimize_program(program, dataclasses.replace(config))
        eliminated += report.eliminated_count("upper")
        analyzed += report.analyzed_count("upper")
    return eliminated / analyzed


def test_design_choice_ablations(benchmark):
    benchmark(
        lambda: optimize_program(
            compile_source(get("Sieve").source()), ABCDConfig()
        )
    )

    variants: Dict[str, ABCDConfig] = {
        "full": ABCDConfig(),
        "no-pi": ABCDConfig(pi_constraints=False),
        "no-alloc": ABCDConfig(allocation_facts=False),
        "gvn-off": ABCDConfig(gvn_mode="off"),
        "gvn-augment": ABCDConfig(gvn_mode="augment"),
    }
    rates = {name: _upper_elimination_rate(cfg) for name, cfg in variants.items()}
    rates["inlining"] = _upper_elimination_rate(ABCDConfig(), inline=True)

    print()
    print("E8 — static upper-check elimination rate per design variant")
    for name, rate in rates.items():
        print(f"  {name:<12} {rate:>7.1%}")

    # π constraints (the e-SSA contribution) carry most of the power.
    assert rates["no-pi"] < rates["full"] * 0.5
    # Allocation facts matter for MiniJ (Java's arraylength loads supply
    # the equivalent via C1), but less than π.
    assert rates["no-alloc"] <= rates["full"]
    assert rates["no-pi"] < rates["no-alloc"]
    # The GVN augmentation only adds power.
    assert rates["gvn-augment"] >= rates["full"]
    # Inlining (the paper's missing interprocedural dimension): the
    # *static rate* can dip slightly because inlining duplicates a
    # callee's unprovable checks into every call site (more analyzed
    # checks), even while making previously opaque ones provable — jess
    # jumps from ~50% to ~100% dynamic removal with inlining.  The rate
    # must stay in the same band.
    assert rates["inlining"] >= rates["full"] - 0.05


def test_exhaustive_solver_agrees_on_eliminations(benchmark):
    """The batch fixpoint prover reaches the same verdicts as the demand
    solver on the corpus' provable checks (demand's Reduced inductive
    reasoning can only exceed it on cyclic proofs), at the cost of
    touching the whole graph per array."""

    program = compile_source(get("Array").source())

    def batch_analyze():
        agreements = disagreements = demand_only = 0
        for fn in program.functions.values():
            bundle = build_graphs(fn)
            distance_cache = {}
            for label in fn.reachable_blocks():
                for instr in fn.blocks[label].body:
                    if isinstance(instr, CheckUpper) and isinstance(instr.index, Var):
                        graph = bundle.upper
                        source = len_node(instr.array)
                        target = var_node(instr.index.name)
                        budget = -1
                    elif isinstance(instr, CheckLower) and isinstance(instr.index, Var):
                        graph = bundle.lower
                        source = const_node(0)
                        target = var_node(instr.index.name)
                        budget = 0
                    else:
                        continue
                    from repro.core.solver import demand_prove

                    demand = demand_prove(graph, source, target, budget).proven
                    key = (id(graph), source)
                    if key not in distance_cache:
                        distance_cache[key] = compute_distances(graph, source)
                    batch = (
                        distance_cache[key].get(target, math.inf) <= budget
                    )
                    if demand == batch:
                        agreements += 1
                    elif demand and not batch:
                        demand_only += 1  # inductive cycle proof
                    else:
                        disagreements += 1
        return agreements, demand_only, disagreements

    agreements, demand_only, disagreements = benchmark(batch_analyze)
    print()
    print(
        f"E8 — demand vs exhaustive verdicts: {agreements} agree, "
        f"{demand_only} demand-only (cyclic Reduced proofs), "
        f"{disagreements} batch-only"
    )
    assert disagreements == 0
