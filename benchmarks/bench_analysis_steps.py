"""E2 — analysis steps per check.

Paper: "The average number of analysis steps (i.e., invocations of the
recursive procedure prove) was less than 10 per analyzed check.  This low
number confirms the benefit of the sparse approach."

We count exactly the same unit (``prove()`` invocations, memo hits
included) and report per-benchmark averages plus the corpus-wide mean.
"""

from __future__ import annotations

from repro.core.abcd import ABCDConfig, optimize_program
from repro.bench.corpus import get
from repro.pipeline import compile_source


def test_steps_per_check(corpus_results, benchmark):
    def analyze_sieve():
        program = compile_source(get("Sieve").source())
        return optimize_program(program, ABCDConfig())

    report = benchmark(analyze_sieve)
    assert report.mean_steps < 20

    print()
    print("E2 — prove() invocations per analyzed check (paper: < 10 average)")
    print(f"{'benchmark':<18}{'checks':>8}{'steps':>9}{'steps/chk':>11}")
    total_steps = 0
    total_checks = 0
    for name, result in corpus_results.items():
        analyzed = result.report.analyzed
        steps = result.report.total_steps
        total_steps += steps
        total_checks += analyzed
        print(f"{name:<18}{analyzed:>8}{steps:>9}{steps / analyzed:>11.1f}")
    mean = total_steps / total_checks
    print(f"{'MEAN':<18}{total_checks:>8}{total_steps:>9}{mean:>11.1f}")
    # The sparse representation keeps the per-check work small.  Our π
    # chains are a little longer than Jalapeño's IR, so allow modest slack
    # over the paper's 10.
    assert mean < 16


def test_step_distribution_is_bounded(corpus_results, benchmark):
    """Per-kind step distribution: both queries stay cheap and bounded
    (the non-negative-length axiom short-circuits many upper queries, so
    the two means end up comparable)."""
    benchmark(lambda: None)
    upper_steps = []
    lower_steps = []
    for result in corpus_results.values():
        for analysis in result.report.analyses:
            (upper_steps if analysis.kind == "upper" else lower_steps).append(
                analysis.steps
            )
    mean_upper = sum(upper_steps) / len(upper_steps)
    mean_lower = sum(lower_steps) / len(lower_steps)
    print()
    print(f"mean steps: upper={mean_upper:.1f} lower={mean_lower:.1f} "
          f"max: upper={max(upper_steps)} lower={max(lower_steps)}")
    assert 0 < mean_upper < 30 and 0 < mean_lower < 30
    assert max(upper_steps + lower_steps) < 250
