"""E5 — run-time improvement from check removal.

Paper: "We measured run-time speedup on the Symantec benchmarks.  We
observed about 10% improvement," noted as a lower bound because the
surrounding compiler lacked optimizations that profit from check removal.

Our substrate is the VM's cycle cost model (a full bounds check = one
length load + two compares, per Section 1), so the reproduced figure is
the cycle-count improvement of the optimized programs on the Symantec
subset.
"""

from __future__ import annotations

from repro.bench.corpus import get
from repro.pipeline import compile_source, run


def test_symantec_cycle_improvement(symantec_results, benchmark):
    program = compile_source(get("Array").source())
    benchmark(lambda: run(program, "main", fuel=100_000_000))

    print()
    print("E5 — cycle-model improvement on Symantec (paper: ~10% wall clock)")
    print(f"{'benchmark':<18}{'base cyc':>12}{'opt cyc':>12}{'gain':>8}")
    gains = []
    for name, result in symantec_results.items():
        gain = result.cycle_improvement
        gains.append(gain)
        print(
            f"{name:<18}{result.base_stats.cycles:>12}"
            f"{result.opt_stats.cycles:>12}{gain:>8.1%}"
        )
    mean = sum(gains) / len(gains)
    print(f"{'MEAN':<18}{'':>12}{'':>12}{mean:>8.1%}")
    # Same order of magnitude as the paper's ~10%.
    assert 0.05 < mean < 0.35


def test_improvement_tracks_check_density(symantec_results, benchmark):
    """Programs whose cycles are dominated by checks gain more — a
    sanity-check on the cost model."""
    benchmark(lambda: None)
    for name, result in symantec_results.items():
        base = result.base_stats
        check_cycle_share = (
            base.lower_checks * 1 + base.upper_checks * 2
        ) / base.cycles
        assert result.cycle_improvement <= check_cycle_share + 0.02, name
