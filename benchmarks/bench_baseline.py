"""E8b — ABCD vs the value-range analysis baseline.

Paper, Section 1: "Some simpler algorithms (e.g., those based upon
value-range analysis) cannot eliminate partially redundant checks" — and,
being purely numeric, they also miss every loop bounded by a symbolic
array length.  This benchmark quantifies the gap on the corpus.
"""

from __future__ import annotations

import dataclasses

from repro.baselines.range_analysis import eliminate_program_with_ranges
from repro.bench.corpus import CORPUS, get
from repro.core.abcd import ABCDConfig, optimize_program
from repro.pipeline import compile_source


def test_abcd_vs_range_analysis(benchmark):
    benchmark(
        lambda: eliminate_program_with_ranges(
            compile_source(get("Sieve").source(), standard_opts=False)
        )
    )

    print()
    print("E8b — static upper-check elimination: range analysis vs ABCD")
    print(f"{'benchmark':<18}{'checks':>8}{'range':>8}{'abcd':>8}")
    range_total = abcd_total = analyzed_total = 0
    for program_def in CORPUS:
        range_program = compile_source(program_def.source())
        range_report = eliminate_program_with_ranges(range_program)

        abcd_program = compile_source(program_def.source())
        abcd_report = optimize_program(abcd_program, ABCDConfig())

        analyzed = abcd_report.analyzed_count("upper")
        range_hits = range_report.eliminated_upper
        abcd_hits = abcd_report.eliminated_count("upper")
        analyzed_total += analyzed
        range_total += range_hits
        abcd_total += abcd_hits
        print(
            f"{program_def.name:<18}{analyzed:>8}"
            f"{range_hits / max(analyzed, 1):>8.1%}"
            f"{abcd_hits / max(analyzed, 1):>8.1%}"
        )
    print(
        f"{'TOTAL':<18}{analyzed_total:>8}"
        f"{range_total / analyzed_total:>8.1%}"
        f"{abcd_total / analyzed_total:>8.1%}"
    )
    assert abcd_total > range_total
