"""E6 — the running example (Figures 1, 3, 4).

Paper claim: "ABCD can eliminate all four bound checks in this example.
(To the best of our knowledge, no other existing Java compiler can fully
eliminate all the bounds checks in this example.)"

The corpus program ``biDirBubbleSort`` is the full Figure-1 code (both
scan loops).  This benchmark regenerates the claim and measures the
compile-time cost of the whole ABCD pass on it.
"""

from __future__ import annotations

from repro.bench.corpus import get
from repro.core.abcd import ABCDConfig, optimize_program
from repro.ir.instructions import CheckLower, CheckUpper
from repro.pipeline import compile_source


def test_all_checks_of_the_sort_eliminated(corpus_results, benchmark):
    def optimize():
        program = compile_source(get("biDirBubbleSort").source())
        return program, optimize_program(program, ABCDConfig())

    program, report = benchmark(optimize)

    sort_fn = program.function("sort")
    residual = [
        instr
        for instr in sort_fn.all_instructions()
        if isinstance(instr, (CheckLower, CheckUpper))
    ]
    print()
    print("E6 — running example (paper: all four checks eliminated)")
    sort_analyses = [a for a in report.analyses if a.function == "sort"]
    print(
        f"sort(): {len(sort_analyses)} checks analyzed, "
        f"{sum(a.eliminated for a in sort_analyses)} eliminated, "
        f"{len(residual)} residual instructions"
    )
    assert residual == []
    assert all(a.eliminated for a in sort_analyses)

    result = corpus_results["biDirBubbleSort"]
    print(
        f"dynamic: {result.base_stats.total_checks} checks -> "
        f"{result.opt_stats.total_checks + result.opt_stats.speculative_checks}"
    )
    assert result.dynamic_total_removed_fraction > 0.95
