"""E9 — the demand/closure solver crossover (DESIGN.md §16).

The hybrid scheduler in ``repro.core.backend`` needs one number: the
per-function check count at which the DBM closure tier's up-front row
closure amortizes below the demand engine's per-query traversals.  This
file *measures* that number instead of guessing it, on two inputs:

* a **nested-guard chain family** — ``k`` checks at guard depths
  ``1..k`` against one array, so check ``d``'s upper proof must walk a
  length-``d`` inequality chain.  This family separates the two regimes
  cleanly: in plain mode the demand engine's shared dual-direction memo
  answers every chain suffix once (linear in ``k``), while in certify
  mode each check runs a fresh demand session (witness independence)
  and the total re-traversal cost grows quadratically.  The closure
  matrix is shared in both modes, so its cost stays linear — the
  certify-mode curves cross, and where they cross is the scheduler's
  threshold;
* the **bench corpus** under certification — the realistic check
  densities, confirming the synthetic crossover's sign on real
  programs.

Cost units: the demand engine reports ``solver.steps.*`` (vertices
entered); the closure tier reports ``solver.dbm_cells_relaxed`` (cell
evaluations + in-edge relaxations).  Both count one constant-work graph
visit, so the curves are directly comparable.

The derived crossover is pinned three ways — the scheduler constant
(:data:`~repro.core.backend.HYBRID_CROSSOVER_CHECKS`), the budget file
(``perf_budget.json:hybrid_crossover_checks``), and this benchmark —
and ``check_perf_budget.py`` fails CI when they drift apart.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Tuple

from repro.bench.corpus import CORPUS
from repro.core.abcd import ABCDConfig
from repro.core.backend import HYBRID_CROSSOVER_CHECKS
from repro.passes.session import CompilationSession

BUDGET_PATH = pathlib.Path(__file__).resolve().parent / "perf_budget.json"

#: Chain depths swept for the synthetic family (2 checks per depth).
CHAIN_DEPTHS = (1, 2, 3, 4, 6, 8, 12, 16)


def chain_program(k: int) -> str:
    """``k`` checks at guard depths 1..k against one array."""
    lines = [
        "fn deep(a: int[], i0: int): int {",
        "  let s: int = 0;",
        "  if (i0 >= 0) { if (i0 < len(a)) {",
    ]
    indent = "    "
    for d in range(1, k + 1):
        lines.append(f"{indent}let i{d}: int = i{d - 1} - 1;")
        lines.append(f"{indent}if (i{d} >= 0) {{")
        lines.append(f"{indent}  s = s + a[i{d}];")
        indent += "  "
    lines.append(indent + "s = s + 0;")
    for _ in range(k):
        indent = indent[:-2]
        lines.append(indent + "}")
    lines.append("  } }")
    lines.append("  return s;")
    lines.append("}")
    lines.append(
        "fn main(): int { let a: int[] = new int[64]; return deep(a, 10); }"
    )
    return "\n".join(lines)


def solver_cost(source: str, backend: str, certify: bool) -> Tuple[int, int]:
    """(analyzed checks, solver work units) for one static analysis."""
    session = CompilationSession(
        config=ABCDConfig(solver_backend=backend, certify=certify)
    )
    program = session.compile(source)
    report = session.optimize(program)
    counters = session.stats.to_json()["counters"]
    if backend == "demand":
        cost = counters.get("solver.steps.upper", 0) + counters.get(
            "solver.steps.lower", 0
        )
    else:
        cost = counters.get("solver.dbm_cells_relaxed", 0)
    assert not report.certificates_rejected
    return report.analyzed, cost


def sweep_chain(certify: bool) -> List[Dict[str, int]]:
    rows = []
    for depth in CHAIN_DEPTHS:
        source = chain_program(depth)
        checks, demand = solver_cost(source, "demand", certify)
        _, closure = solver_cost(source, "closure", certify)
        rows.append(
            {"depth": depth, "checks": checks, "demand": demand, "closure": closure}
        )
    return rows


def derive_crossover(rows: List[Dict[str, int]]) -> int:
    """Smallest measured check count from which the closure tier stays
    at or below the demand cost for every denser point in the sweep."""
    crossover = None
    for row in reversed(rows):
        if row["closure"] <= row["demand"]:
            crossover = row["checks"]
        else:
            break
    assert crossover is not None, "closure tier never amortized in the sweep"
    return crossover


def test_certify_crossover_matches_scheduler_constant():
    plain = sweep_chain(certify=False)
    certified = sweep_chain(certify=True)

    print()
    print("E9 — solver work per backend, nested-guard chain family")
    print(f"{'checks':>7} {'demand':>8} {'closure':>8}   (plain mode)")
    for row in plain:
        print(f"{row['checks']:>7} {row['demand']:>8} {row['closure']:>8}")
    print(f"{'checks':>7} {'demand':>8} {'closure':>8}   (certify mode)")
    for row in certified:
        print(f"{row['checks']:>7} {row['demand']:>8} {row['closure']:>8}")

    # Plain mode: the shared demand memo must stay the cheaper tier at
    # every measured density — this is why the hybrid scheduler only
    # switches under certification.
    for row in plain:
        assert row["demand"] <= row["closure"], row

    crossover = derive_crossover(certified)
    print(f"measured certify-mode crossover: {crossover} checks/function")
    assert crossover == HYBRID_CROSSOVER_CHECKS, (
        f"measured crossover {crossover} drifted from the scheduler "
        f"constant {HYBRID_CROSSOVER_CHECKS}; re-measure and update "
        f"backend.HYBRID_CROSSOVER_CHECKS + perf_budget.json together"
    )
    budget = json.loads(BUDGET_PATH.read_text())
    assert budget.get("hybrid_crossover_checks") == crossover, (
        "perf_budget.json:hybrid_crossover_checks disagrees with the "
        f"measured crossover {crossover}"
    )


def test_corpus_certify_costs_favor_the_scheduler_choice():
    """On real corpus programs the hybrid scheduler's certify-mode choice
    must not be worse than always-demand by more than the closure tier's
    constant factor on sparse functions."""
    print()
    print("E9 — certify-mode solver work per corpus program")
    print(f"{'program':>18} {'checks':>7} {'demand':>8} {'closure':>8}")
    total_demand = total_closure = 0
    for program_def in CORPUS:
        source = program_def.source()
        checks, demand = solver_cost(source, "demand", certify=True)
        _, closure = solver_cost(source, "closure", certify=True)
        total_demand += demand
        total_closure += closure
        print(f"{program_def.name:>18} {checks:>7} {demand:>8} {closure:>8}")
    print(f"{'TOTAL':>18} {'':>7} {total_demand:>8} {total_closure:>8}")
