"""The independent certificate checker.

``check_witness`` replays a witness against an inequality graph using
nothing but **edge lookups and integer telescoping** — it shares no
traversal, memoization, or lattice code with the Figure-5 solver, so a
solver bug and a checker bug would have to coincide for an unsound
elimination to slip through.

The replay walks the witness tree top-down, carrying the budget it
computes itself from the root query (never trusting budgets the producer
might claim), and enforces at every node:

* **edge existence** — a claimed edge ``source -> vertex`` of weight
  ``w`` must be backed by a graph edge of weight ``<= w`` (a real
  constraint at least as strong as the claim);
* **φ coverage** — a ``PhiWitness`` must discharge *every* in-edge of
  the vertex in the graph the checker rebuilt, and may not invent
  branches the graph does not have;
* **harmless cycles** — a ``CycleWitness`` may only close on a vertex
  that is active on the checker's own path, with a telescoped budget no
  smaller than the active one (i.e. the cycle's weight is non-positive),
  and the cycle must pass through a φ vertex (the Section-4 consistency
  invariant: a φ-free "harmless" cycle proves nothing);
* **axioms** — leaf facts are re-derived from the vertex kinds and the
  telescoped budget;
* **assumptions** — a PRE ``AssumeWitness`` must point at a real
  compensating :class:`~repro.ir.instructions.SpeculativeCheck` in the
  claimed predecessor block, for the right array and guard group, whose
  offset implies the telescoped obligation.

Acceptance means: the constraints named by the witness — all present in
the graph — telescope to ``target - source <= budget``.  For an upper
check that is ``index - len(A) <= -1``; for a lower check (negated
space) ``-index - 0 <= 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.graph import InequalityGraph, Node
from repro.ir.instructions import BinOp, Const, SpeculativeCheck, Var
from repro.certify.witness import (
    AssumeWitness,
    AxiomWitness,
    CycleWitness,
    EdgeWitness,
    PhiWitness,
    Witness,
)


class CertificateRejected(Exception):
    """The witness does not establish the claimed bound."""


@dataclass
class AssumeContext:
    """What an ``AssumeWitness`` is allowed to assume: the compensating
    checks of one PRE guard group in one function."""

    fn: object  # repro.ir.function.Function (duck-typed: no IR dependency)
    kind: str  # "upper" | "lower"
    array: Optional[str]
    guard_group: Optional[int]


class _Replay:
    """One top-down replay of a witness tree."""

    def __init__(
        self,
        graph: InequalityGraph,
        source: Node,
        assume: Optional[AssumeContext] = None,
    ) -> None:
        self._graph = graph
        self._source = source
        self._assume = assume
        #: vertex -> (telescoped budget, φ count on the path when pushed).
        self._active: Dict[Node, Tuple[int, int]] = {}
        self._phi_count = 0
        #: Cycle closures validated but not yet resolved by their closing
        #: frame's exit (see :meth:`check`).
        self._cycle_log: list = []

    # ------------------------------------------------------------------

    def _reject(self, message: str) -> None:
        raise CertificateRejected(message)

    def check(self, vertex: Node, budget: int, witness: Witness) -> None:
        """Replay the witness tree with an explicit work stack.

        The replay is iterative for the same reason the solver is: a
        deep-chain certificate is as deep as the program's π/copy chain,
        and must verify under a pinned interpreter recursion limit.  The
        stack holds ``("check", vertex, budget, witness)`` obligations
        and ``("exit", ...)`` markers that undo the active-set/φ-counter
        bookkeeping once a subtree is discharged — exactly the scopes the
        recursive formulation kept in ``try/finally`` blocks.

        The solver memoizes, so a witness is a DAG: both branches of a φ
        routinely share their tail sub-witness.  Walking it as a tree is
        exponential in φ depth, so the replay keeps a cache of
        *self-contained* subtrees it has already verified: a subtree
        whose cycle leaves all close within itself replays identically
        under any root budget at least as large as the verified one (all
        leaf conditions are monotone in the budget — the same fact that
        makes the solver's memo subsumption certifiable).  Containment is
        computed by the replay itself from the cycle leaves it validated
        (``self._cycle_log``), never trusted from the producer's witness
        objects.
        """
        stack: list = [("check", vertex, budget, witness)]
        #: id(witness) -> smallest budget this self-contained subtree
        #: verified at.  Keyed by identity: the cache exists precisely
        #: because the producer aliases subtrees.
        verified: Dict[int, int] = {}
        self._cycle_log: list = []
        while stack:
            action = stack.pop()
            if action[0] == "exit":
                _, exit_vertex, pushed, was_phi, sub, sub_budget, base = action
                if was_phi:
                    self._phi_count -= 1
                if pushed:
                    del self._active[exit_vertex]
                escaped = self._cycle_log[base:]
                if escaped:
                    if pushed:
                        # Cycles closing on this vertex resolve here; a
                        # repeated descent (pushed=False) validated them
                        # against an *outer* entry, so they keep escaping.
                        escaped = [u for u in escaped if u != exit_vertex]
                    del self._cycle_log[base:]
                    self._cycle_log.extend(escaped)
                if not escaped:
                    prior = verified.get(id(sub))
                    if prior is None or sub_budget < prior:
                        verified[id(sub)] = sub_budget
                continue
            _, vertex, budget, witness = action
            prior = verified.get(id(witness))
            if prior is not None and budget >= prior:
                continue
            if witness.vertex != vertex:
                self._reject(
                    f"witness proves {witness.vertex}, obligation is {vertex}"
                )
            if isinstance(witness, AxiomWitness):
                self._axiom(vertex, budget, witness)
            elif isinstance(witness, CycleWitness):
                self._cycle(vertex, budget)
                self._cycle_log.append(vertex)
            elif isinstance(witness, AssumeWitness):
                self._assumption(vertex, budget, witness)
            elif isinstance(witness, EdgeWitness):
                self._edge(vertex, budget, witness, stack)
            elif isinstance(witness, PhiWitness):
                self._phi(vertex, budget, witness, stack)
            else:
                self._reject(f"unknown witness node {type(witness).__name__}")

    # ------------------------------------------------------------------
    # Leaves.
    # ------------------------------------------------------------------

    def _axiom(self, vertex: Node, budget: int, witness: AxiomWitness) -> None:
        source = self._source
        if witness.rule == "source":
            if vertex != source or budget < 0:
                self._reject(
                    f"source axiom fails: {vertex} vs {source} at {budget}"
                )
        elif witness.rule == "const-const":
            if vertex.kind != "const" or source.kind != "const":
                self._reject("const-const axiom on non-constant vertices")
            gap = self._graph.const_value(vertex) - self._graph.const_value(source)
            if gap > budget:
                self._reject(
                    f"const-const axiom fails: gap {gap} > budget {budget}"
                )
        elif witness.rule == "len-nonneg":
            if (
                vertex.kind != "const"
                or source.kind != "len"
                or self._graph.direction != "upper"
                or vertex.value > budget
            ):
                self._reject(
                    f"len-nonneg axiom fails for {vertex} at {budget}"
                )
        else:
            self._reject(f"unknown axiom rule {witness.rule!r}")

    def _cycle(self, vertex: Node, budget: int) -> None:
        entry = self._active.get(vertex)
        if entry is None:
            self._reject(f"cycle closes on {vertex}, which is not active")
        active_budget, active_phi = entry
        if budget < active_budget:
            self._reject(
                f"amplifying cycle at {vertex}: telescoped budget {budget} "
                f"< active budget {active_budget}"
            )
        if not self._graph.is_phi(vertex) and self._phi_count <= active_phi:
            self._reject(f"cycle at {vertex} passes through no φ vertex")

    def _assumption(self, vertex: Node, budget: int, witness: AssumeWitness) -> None:
        ctx = self._assume
        if ctx is None:
            self._reject("assumption in a certificate with no PRE context")
        check = self._find_speculative(ctx, witness)
        if check is None:
            self._reject(
                f"no compensating check for {vertex} on edge "
                f"{witness.pred} -> {witness.phi_block}"
            )
        offset = self._checked_offset(ctx, check, vertex, witness)
        # The compensating check on ``V + d`` establishes, when it passes,
        # ``V - len(A) <= -1 - d`` (upper) or ``-V <= d`` (lower, negated
        # space); either must imply the telescoped obligation ``<= budget``.
        implied = (-1 - offset) if ctx.kind == "upper" else offset
        if implied > budget:
            self._reject(
                f"compensating check offset {offset} establishes "
                f"{implied}, weaker than required budget {budget}"
            )

    def _find_speculative(
        self, ctx: AssumeContext, witness: AssumeWitness
    ) -> Optional[SpeculativeCheck]:
        block = ctx.fn.blocks.get(witness.pred)
        if block is None:
            return None
        for instr in block.body:
            if (
                isinstance(instr, SpeculativeCheck)
                and instr.kind == ctx.kind
                and instr.guard_group == ctx.guard_group
                and (ctx.kind != "upper" or instr.array == ctx.array)
            ):
                return instr
        return None

    def _checked_offset(
        self,
        ctx: AssumeContext,
        check: SpeculativeCheck,
        vertex: Node,
        witness: AssumeWitness,
    ) -> int:
        """Resolve the compensating check's index to ``vertex + offset``
        (rejecting when it guards anything else)."""
        index = check.index
        if isinstance(index, Const):
            if vertex.kind != "const":
                self._reject(
                    f"compensating check guards constant {index.value}, "
                    f"assumption is on {vertex}"
                )
            return index.value - vertex.value
        assert isinstance(index, Var)
        if vertex.kind == "var" and index.name == vertex.name:
            return 0
        # A materialized ``temp := vertex + offset`` in the same block.
        block = ctx.fn.blocks[witness.pred]
        for instr in block.body:
            if (
                isinstance(instr, BinOp)
                and instr.dest == index.name
                and instr.op == "add"
                and isinstance(instr.lhs, Var)
                and vertex.kind == "var"
                and instr.lhs.name == vertex.name
                and isinstance(instr.rhs, Const)
            ):
                return instr.rhs.value
        self._reject(
            f"compensating check guards {index.name}, which does not "
            f"resolve to {vertex} + offset"
        )
        raise AssertionError("unreachable")

    # ------------------------------------------------------------------
    # Interior nodes.
    # ------------------------------------------------------------------

    def _edge(
        self, vertex: Node, budget: int, witness: EdgeWitness, stack: list
    ) -> None:
        if self._graph.is_phi(vertex):
            self._reject(
                f"single-edge witness at φ vertex {vertex} (all in-edges "
                f"must be discharged)"
            )
        if not self._edge_backed(vertex, witness.source, witness.weight):
            self._reject(
                f"no graph edge {witness.source} -> {vertex} of weight "
                f"<= {witness.weight}"
            )
        pushed = self._push(vertex, budget)
        stack.append(
            ("exit", vertex, pushed, False, witness, budget, len(self._cycle_log))
        )
        stack.append(
            ("check", witness.source, budget - witness.weight, witness.sub)
        )

    def _phi(
        self, vertex: Node, budget: int, witness: PhiWitness, stack: list
    ) -> None:
        if not self._graph.is_phi(vertex):
            self._reject(f"φ witness at non-φ vertex {vertex}")
        claimed = {
            (source, weight): sub for source, weight, sub in witness.branches
        }
        if len(claimed) != len(witness.branches):
            self._reject(f"duplicate branches in φ witness at {vertex}")
        real = {(edge.source, edge.weight) for edge in self._graph.in_edges(vertex)}
        for key in claimed:
            # Every claim must be backed (weight at least as strong in
            # the graph); stray claims are forged edges.
            source, weight = key
            if not any(rs == source and rw <= weight for rs, rw in real):
                self._reject(
                    f"φ branch {source} -> {vertex} / {weight} has no "
                    f"backing graph edge"
                )
        for source, weight in real:
            # Every real in-edge must be discharged by a branch at least
            # as weak as it (claimed weight >= real weight).
            if not any(
                cs == source and cw >= weight for cs, cw in claimed
            ):
                self._reject(
                    f"φ in-edge {source} -> {vertex} / {weight} is not "
                    f"discharged by the witness"
                )
        pushed = self._push(vertex, budget)
        self._phi_count += 1
        stack.append(
            ("exit", vertex, pushed, True, witness, budget, len(self._cycle_log))
        )
        for source, weight, sub in reversed(witness.branches):
            stack.append(("check", source, budget - weight, sub))

    # ------------------------------------------------------------------
    # Plumbing.
    # ------------------------------------------------------------------

    def _edge_backed(self, vertex: Node, source: Node, weight: int) -> bool:
        return any(
            edge.source == source and edge.weight <= weight
            for edge in self._graph.in_edges(vertex)
        )

    def _push(self, vertex: Node, budget: int) -> bool:
        if vertex in self._active:
            # A repeated non-cycle descent through an active vertex is a
            # finite unrolling; keep the outer entry so cycle leaves
            # validate against the entry the cycle actually closes on.
            return False
        self._active[vertex] = (budget, self._phi_count)
        return True


def check_witness(
    graph: InequalityGraph,
    source: Node,
    target: Node,
    budget: int,
    witness: Optional[Witness],
    assume: Optional[AssumeContext] = None,
) -> None:
    """Raise :class:`CertificateRejected` unless ``witness`` establishes
    ``target - source <= budget`` over ``graph``."""
    if witness is None:
        raise CertificateRejected("no witness emitted for this elimination")
    _Replay(graph, source, assume).check(target, budget, witness)
