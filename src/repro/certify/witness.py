"""The proof-witness grammar.

A witness is the derivation skeleton of one ``demandProve`` proof of
``target - source <= budget``: which inequality-graph edges the proof
crossed, how φ obligations were discharged, and where harmless cycles
closed.  Crucially it carries **structure only** — the checker recomputes
every budget itself by integer telescoping from the root query, so a
witness cannot smuggle in arithmetic the graph does not justify.

Grammar (each node proves a bound on one ``vertex``):

* ``AxiomWitness(rule)`` — a leaf fact needing no traversal:
  ``"source"`` (the empty path: vertex *is* the proof source and the
  budget is non-negative), ``"const-const"`` (two constants relate
  arithmetically), ``"len-nonneg"`` (a constant against an array-length
  source in the upper graph: lengths are non-negative);
* ``EdgeWitness(vertex, source, weight, sub)`` — a min vertex discharged
  through its one chosen in-edge;
* ``PhiWitness(vertex, branches)`` — a φ/max vertex: one
  ``(source, weight, sub)`` branch per in-edge of the rebuilt graph (the
  checker enforces the coverage);
* ``CycleWitness(vertex)`` — a harmless-cycle closure: the traversal
  revisited ``vertex`` while it was still active, with a budget no
  smaller than the active one (the cycle telescopes to non-positive
  weight; the cycle itself is the tree path from the active occurrence
  down to this leaf, and the rest of the tree is the entry derivation);
* ``AssumeWitness(vertex, phi_block, pred, offset)`` — a PRE assumption:
  the bound on ``vertex`` is established not by the graph but by a
  compensating :class:`~repro.ir.instructions.SpeculativeCheck` inserted
  on the CFG edge ``pred -> phi_block`` (Section 6.1); the checker
  verifies the instruction really exists and that its offset implies the
  telescoped obligation.

Every node carries ``open`` — the cycle targets referenced below it that
are **not** closed within its own subtree.  A witness with an empty
``open`` set is *context-free*: it replays under any root budget at least
as large as the one it was recorded at (all leaf conditions are monotone
in the budget).  The solver's memo only ever stores context-free
witnesses, which is what makes budget-subsumption reuse replayable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from repro.core.graph import Node

_EMPTY: frozenset = frozenset()


@dataclass(frozen=True)
class AxiomWitness:
    """Leaf fact: ``rule`` is ``"source"``, ``"const-const"``, or
    ``"len-nonneg"``."""

    vertex: Node
    rule: str
    open: frozenset = field(default=_EMPTY, compare=False, repr=False)


@dataclass(frozen=True)
class CycleWitness:
    """Harmless-cycle closure at the revisited active ``vertex``."""

    vertex: Node
    open: frozenset = field(default=_EMPTY, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "open", frozenset((self.vertex,)))


@dataclass(frozen=True)
class AssumeWitness:
    """PRE assumption: a compensating check on ``pred -> phi_block``
    guards ``vertex + offset``."""

    vertex: Node
    phi_block: str
    pred: str
    offset: int
    open: frozenset = field(default=_EMPTY, compare=False, repr=False)


@dataclass(frozen=True)
class EdgeWitness:
    """Min vertex: ``vertex <= source + weight`` then prove ``source``."""

    vertex: Node
    source: Node
    weight: int
    sub: "Witness"
    open: frozenset = field(default=_EMPTY, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "open", self.sub.open - {self.vertex})


@dataclass(frozen=True)
class PhiWitness:
    """φ/max vertex: one ``(source, weight, sub)`` branch per in-edge."""

    vertex: Node
    branches: Tuple[Tuple[Node, int, "Witness"], ...]
    open: frozenset = field(default=_EMPTY, compare=False, repr=False)

    def __post_init__(self) -> None:
        merged: frozenset = _EMPTY
        for _, _, sub in self.branches:
            merged = merged | sub.open
        object.__setattr__(self, "open", merged - {self.vertex})


Witness = Union[AxiomWitness, CycleWitness, AssumeWitness, EdgeWitness, PhiWitness]


def is_closed(witness: Witness) -> bool:
    """True when the witness is context-free (no open cycle targets)."""
    return not witness.open


# ----------------------------------------------------------------------
# Serialization (deterministic: key order is fixed by construction and
# every collection is emitted in witness order, which the stabilized
# inequality-graph iteration makes reproducible across runs).
# ----------------------------------------------------------------------


def _node_json(node: Node) -> Dict[str, object]:
    if node.kind == "const":
        return {"kind": "const", "value": node.value}
    return {"kind": node.kind, "name": node.name}


def witness_to_json(witness: Optional[Witness]) -> Optional[Dict[str, object]]:
    """JSON form of a witness (``None`` passes through).

    Iterative: a deep-chain certificate nests as deep as the program's
    π/copy chain, and serialization must not depend on the interpreter
    recursion limit any more than the solver or the checker do.  The
    work stack carries ``(witness, container, key)`` triples; each
    converted node is written into its parent's slot, with sub-witnesses
    scheduled for later passes.
    """
    if witness is None:
        return None
    holder: Dict[str, object] = {"root": None}
    stack = [(witness, holder, "root")]
    while stack:
        w, container, key = stack.pop()
        if isinstance(w, AxiomWitness):
            converted: Dict[str, object] = {
                "node": "axiom",
                "vertex": _node_json(w.vertex),
                "rule": w.rule,
            }
        elif isinstance(w, CycleWitness):
            converted = {"node": "cycle", "vertex": _node_json(w.vertex)}
        elif isinstance(w, AssumeWitness):
            converted = {
                "node": "assume",
                "vertex": _node_json(w.vertex),
                "phi_block": w.phi_block,
                "pred": w.pred,
                "offset": w.offset,
            }
        elif isinstance(w, EdgeWitness):
            converted = {
                "node": "edge",
                "vertex": _node_json(w.vertex),
                "source": _node_json(w.source),
                "weight": w.weight,
                "sub": None,
            }
            stack.append((w.sub, converted, "sub"))
        else:
            assert isinstance(w, PhiWitness)
            branches: list = []
            converted = {
                "node": "phi",
                "vertex": _node_json(w.vertex),
                "branches": branches,
            }
            for source, weight, sub in w.branches:
                entry: Dict[str, object] = {
                    "source": _node_json(source),
                    "weight": weight,
                    "sub": None,
                }
                branches.append(entry)
                stack.append((sub, entry, "sub"))
        container[key] = converted
    return holder["root"]
