"""The proof-witness grammar.

A witness is the derivation skeleton of one ``demandProve`` proof of
``target - source <= budget``: which inequality-graph edges the proof
crossed, how φ obligations were discharged, and where harmless cycles
closed.  Crucially it carries **structure only** — the checker recomputes
every budget itself by integer telescoping from the root query, so a
witness cannot smuggle in arithmetic the graph does not justify.

Grammar (each node proves a bound on one ``vertex``):

* ``AxiomWitness(rule)`` — a leaf fact needing no traversal:
  ``"source"`` (the empty path: vertex *is* the proof source and the
  budget is non-negative), ``"const-const"`` (two constants relate
  arithmetically), ``"len-nonneg"`` (a constant against an array-length
  source in the upper graph: lengths are non-negative);
* ``EdgeWitness(vertex, source, weight, sub)`` — a min vertex discharged
  through its one chosen in-edge;
* ``PhiWitness(vertex, branches)`` — a φ/max vertex: one
  ``(source, weight, sub)`` branch per in-edge of the rebuilt graph (the
  checker enforces the coverage);
* ``CycleWitness(vertex)`` — a harmless-cycle closure: the traversal
  revisited ``vertex`` while it was still active, with a budget no
  smaller than the active one (the cycle telescopes to non-positive
  weight; the cycle itself is the tree path from the active occurrence
  down to this leaf, and the rest of the tree is the entry derivation);
* ``AssumeWitness(vertex, phi_block, pred, offset)`` — a PRE assumption:
  the bound on ``vertex`` is established not by the graph but by a
  compensating :class:`~repro.ir.instructions.SpeculativeCheck` inserted
  on the CFG edge ``pred -> phi_block`` (Section 6.1); the checker
  verifies the instruction really exists and that its offset implies the
  telescoped obligation.

Every node carries ``open`` — the cycle targets referenced below it that
are **not** closed within its own subtree.  A witness with an empty
``open`` set is *context-free*: it replays under any root budget at least
as large as the one it was recorded at (all leaf conditions are monotone
in the budget).  The solver's memo only ever stores context-free
witnesses, which is what makes budget-subsumption reuse replayable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.graph import Node, const_node

_EMPTY: frozenset = frozenset()


@dataclass(frozen=True)
class AxiomWitness:
    """Leaf fact: ``rule`` is ``"source"``, ``"const-const"``, or
    ``"len-nonneg"``."""

    vertex: Node
    rule: str
    open: frozenset = field(default=_EMPTY, compare=False, repr=False)


@dataclass(frozen=True)
class CycleWitness:
    """Harmless-cycle closure at the revisited active ``vertex``."""

    vertex: Node
    open: frozenset = field(default=_EMPTY, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "open", frozenset((self.vertex,)))


@dataclass(frozen=True)
class AssumeWitness:
    """PRE assumption: a compensating check on ``pred -> phi_block``
    guards ``vertex + offset``."""

    vertex: Node
    phi_block: str
    pred: str
    offset: int
    open: frozenset = field(default=_EMPTY, compare=False, repr=False)


@dataclass(frozen=True)
class EdgeWitness:
    """Min vertex: ``vertex <= source + weight`` then prove ``source``."""

    vertex: Node
    source: Node
    weight: int
    sub: "Witness"
    open: frozenset = field(default=_EMPTY, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "open", self.sub.open - {self.vertex})


@dataclass(frozen=True)
class PhiWitness:
    """φ/max vertex: one ``(source, weight, sub)`` branch per in-edge."""

    vertex: Node
    branches: Tuple[Tuple[Node, int, "Witness"], ...]
    open: frozenset = field(default=_EMPTY, compare=False, repr=False)

    def __post_init__(self) -> None:
        merged: frozenset = _EMPTY
        for _, _, sub in self.branches:
            merged = merged | sub.open
        object.__setattr__(self, "open", merged - {self.vertex})


Witness = Union[AxiomWitness, CycleWitness, AssumeWitness, EdgeWitness, PhiWitness]


def is_closed(witness: Witness) -> bool:
    """True when the witness is context-free (no open cycle targets)."""
    return not witness.open


# ----------------------------------------------------------------------
# Reconstruction from a closed solver matrix.
# ----------------------------------------------------------------------


class WitnessBuildError(RuntimeError):
    """The choice structure does not assemble into a witness.

    Raised when a per-vertex justification is missing or inconsistent —
    in practice only when the producing matrix was corrupted (the
    builder re-derives nothing itself, so an inconsistent choice cannot
    silently produce a plausible-but-wrong certificate; a *consistent*
    corruption still has to survive the independent checker replay).
    """


def witness_from_choices(
    target: Node,
    choose,
    max_nodes: int = 200_000,
) -> Witness:
    """Assemble a witness from per-vertex derivation choices.

    This is how the DBM closure tier (:mod:`repro.core.dbm`) certifies
    its eliminations: the closed matrix is a predecessor structure, and
    ``choose(vertex)`` reports how the closure justified its bound on
    ``vertex`` —

    * ``("axiom", rule)`` — a leaf fact (``"source"`` / ``"const-const"``
      / ``"len-nonneg"``);
    * ``("edge", edge)`` — a min vertex discharged through the in-edge
      attaining the minimum;
    * ``("phi", edges)`` — a φ vertex, one branch per real in-edge.

    The builder carries **no budgets**: the checker telescopes every
    budget itself from the root query, so the matrix's numeric cells
    never enter the certificate — exactly the zero-new-trust contract.
    Revisiting a vertex while it is still active on the build path emits
    a :class:`CycleWitness` (the closure analog of the demand solver's
    harmless-cycle leaf).  Closed sub-witnesses are memoized per vertex,
    so shared derivation tails alias into a DAG the same way the demand
    solver's memo produces them; open sub-witnesses are rebuilt per
    context, mirroring the solver's memo policy.

    Iterative, like every other witness walker in this package: a
    matrix-derived chain is as deep as the program's π/copy chain and
    must assemble under a pinned interpreter recursion limit.  The stack
    interleaves ``visit`` frames (resolve one vertex's choice, schedule
    children) with ``build`` frames (construct the parent once every
    child slot is filled).
    """
    holder: List[Optional[Witness]] = [None]
    stack: List[tuple] = [("visit", target, holder, 0)]
    active: set = set()
    memo: Dict[Node, Witness] = {}
    visited = 0
    while stack:
        op, obj, container, index = stack.pop()
        if op == "build":
            ctor, vertex, holders = obj
            built = ctor([h[0] for h in holders])
            active.discard(vertex)
            if is_closed(built):
                memo[vertex] = built
            container[index] = built
            continue
        vertex = obj
        cached = memo.get(vertex)
        if cached is not None:
            container[index] = cached
            continue
        if vertex in active:
            container[index] = CycleWitness(vertex)
            continue
        visited += 1
        if visited > max_nodes:
            raise WitnessBuildError(
                f"witness reconstruction exceeded {max_nodes} nodes"
            )
        kind, payload = choose(vertex)
        if kind == "axiom":
            container[index] = AxiomWitness(vertex, payload)
        elif kind == "edge":
            edge = payload
            sub_holder: List[Optional[Witness]] = [None]

            def _make_edge(children, vertex=vertex, edge=edge):
                return EdgeWitness(vertex, edge.source, edge.weight, children[0])

            active.add(vertex)
            stack.append(("build", (_make_edge, vertex, [sub_holder]), container, index))
            stack.append(("visit", edge.source, sub_holder, 0))
        elif kind == "phi":
            edges = tuple(payload)
            holders: List[List[Optional[Witness]]] = [[None] for _ in edges]

            def _make_phi(children, vertex=vertex, edges=edges):
                return PhiWitness(
                    vertex,
                    tuple(
                        (edge.source, edge.weight, sub)
                        for edge, sub in zip(edges, children)
                    ),
                )

            active.add(vertex)
            stack.append(("build", (_make_phi, vertex, holders), container, index))
            for edge, sub_holder in zip(reversed(edges), reversed(holders)):
                stack.append(("visit", edge.source, sub_holder, 0))
        else:
            raise WitnessBuildError(f"unknown choice kind {kind!r} at {vertex}")
    assert holder[0] is not None
    return holder[0]


# ----------------------------------------------------------------------
# Serialization (deterministic: key order is fixed by construction and
# every collection is emitted in witness order, which the stabilized
# inequality-graph iteration makes reproducible across runs).
# ----------------------------------------------------------------------


def _node_json(node: Node) -> Dict[str, object]:
    if node.kind == "const":
        return {"kind": "const", "value": node.value}
    return {"kind": node.kind, "name": node.name}


def witness_to_json(witness: Optional[Witness]) -> Optional[Dict[str, object]]:
    """JSON form of a witness (``None`` passes through).

    Iterative: a deep-chain certificate nests as deep as the program's
    π/copy chain, and serialization must not depend on the interpreter
    recursion limit any more than the solver or the checker do.  The
    work stack carries ``(witness, container, key)`` triples; each
    converted node is written into its parent's slot, with sub-witnesses
    scheduled for later passes.
    """
    if witness is None:
        return None
    holder: Dict[str, object] = {"root": None}
    stack = [(witness, holder, "root")]
    while stack:
        w, container, key = stack.pop()
        if isinstance(w, AxiomWitness):
            converted: Dict[str, object] = {
                "node": "axiom",
                "vertex": _node_json(w.vertex),
                "rule": w.rule,
            }
        elif isinstance(w, CycleWitness):
            converted = {"node": "cycle", "vertex": _node_json(w.vertex)}
        elif isinstance(w, AssumeWitness):
            converted = {
                "node": "assume",
                "vertex": _node_json(w.vertex),
                "phi_block": w.phi_block,
                "pred": w.pred,
                "offset": w.offset,
            }
        elif isinstance(w, EdgeWitness):
            converted = {
                "node": "edge",
                "vertex": _node_json(w.vertex),
                "source": _node_json(w.source),
                "weight": w.weight,
                "sub": None,
            }
            stack.append((w.sub, converted, "sub"))
        else:
            assert isinstance(w, PhiWitness)
            branches: list = []
            converted = {
                "node": "phi",
                "vertex": _node_json(w.vertex),
                "branches": branches,
            }
            for source, weight, sub in w.branches:
                entry: Dict[str, object] = {
                    "source": _node_json(source),
                    "weight": weight,
                    "sub": None,
                }
                branches.append(entry)
                stack.append((sub, entry, "sub"))
        container[key] = converted
    return holder["root"]


# ----------------------------------------------------------------------
# Deserialization (zero-trust: the input is durable bytes that may have
# been tampered with; every shape violation raises WitnessDecodeError
# rather than producing a half-formed witness).
# ----------------------------------------------------------------------


class WitnessDecodeError(ValueError):
    """The JSON does not encode a well-formed witness."""


def _node_from_json(data: object) -> Node:
    if not isinstance(data, dict):
        raise WitnessDecodeError("node is not an object")
    kind = data.get("kind")
    if kind == "const":
        value = data.get("value")
        if type(value) is not int:
            raise WitnessDecodeError("const node without integer value")
        return const_node(value)
    name = data.get("name")
    if not isinstance(kind, str) or not isinstance(name, str):
        raise WitnessDecodeError("node without string kind/name")
    return Node(kind, name=name)


def witness_from_json(data: Optional[Dict[str, object]]) -> Optional[Witness]:
    """Rebuild a witness from its :func:`witness_to_json` form.

    Iterative like the encoder (deep π/copy chains must not hit the
    recursion limit), but post-order: the frozen dataclasses compute
    their ``open`` sets from their children in ``__post_init__``, so a
    parent can only be constructed after its sub-witnesses exist.  The
    stack interleaves ``visit`` frames (decode one JSON node, schedule
    children) with ``build`` frames (construct the parent once every
    child slot below it is filled).
    """
    if data is None:
        return None
    holder: List[Optional[Witness]] = [None]
    stack: List[tuple] = [("visit", data, holder, 0)]
    while stack:
        op, obj, container, index = stack.pop()
        if op == "build":
            # obj is (constructor-closure, child holders).
            container[index] = obj[0]([h[0] for h in obj[1]])
            continue
        if not isinstance(obj, dict):
            raise WitnessDecodeError("witness is not an object")
        node = obj.get("node")
        vertex = _node_from_json(obj.get("vertex"))
        if node == "axiom":
            rule = obj.get("rule")
            if not isinstance(rule, str):
                raise WitnessDecodeError("axiom without string rule")
            container[index] = AxiomWitness(vertex, rule)
        elif node == "cycle":
            container[index] = CycleWitness(vertex)
        elif node == "assume":
            phi_block = obj.get("phi_block")
            pred = obj.get("pred")
            offset = obj.get("offset")
            if not isinstance(phi_block, str) or not isinstance(pred, str):
                raise WitnessDecodeError("assume without string blocks")
            if type(offset) is not int:
                raise WitnessDecodeError("assume without integer offset")
            container[index] = AssumeWitness(vertex, phi_block, pred, offset)
        elif node == "edge":
            source = _node_from_json(obj.get("source"))
            weight = obj.get("weight")
            if type(weight) is not int:
                raise WitnessDecodeError("edge without integer weight")
            sub_holder: List[Optional[Witness]] = [None]

            def _make_edge(children, vertex=vertex, source=source, weight=weight):
                return EdgeWitness(vertex, source, weight, children[0])

            stack.append(("build", (_make_edge, [sub_holder]), container, index))
            stack.append(("visit", obj.get("sub"), sub_holder, 0))
        elif node == "phi":
            raw_branches = obj.get("branches")
            if not isinstance(raw_branches, list):
                raise WitnessDecodeError("phi without branch list")
            sources: List[Node] = []
            weights: List[int] = []
            holders: List[List[Optional[Witness]]] = []
            for raw in raw_branches:
                if not isinstance(raw, dict):
                    raise WitnessDecodeError("phi branch is not an object")
                sources.append(_node_from_json(raw.get("source")))
                weight = raw.get("weight")
                if type(weight) is not int:
                    raise WitnessDecodeError("phi branch without integer weight")
                weights.append(weight)
                holders.append([None])

            def _make_phi(children, vertex=vertex, sources=sources, weights=weights):
                branches = tuple(
                    (src, wt, sub) for src, wt, sub in zip(sources, weights, children)
                )
                return PhiWitness(vertex, branches)

            stack.append(("build", (_make_phi, holders), container, index))
            for raw, sub_holder in zip(raw_branches, holders):
                stack.append(("visit", raw.get("sub"), sub_holder, 0))
        else:
            raise WitnessDecodeError(f"unknown witness node {node!r}")
    return holder[0]
