"""Per-function certification and the revocation ladder.

``certify_state`` runs between the ``pre`` and ``check-removal`` passes:
every elimination the analysis decided on is still undone cheaply at this
point (removals are pending in ``state.to_remove``; PRE only appended
instructions).  For each elimination the driver

1. rebuilds the inequality graphs **freshly** from the function as it
   stands (independent of the analysis-time bundle — a corrupted bundle
   cannot vouch for itself), recomputing GVN congruences from scratch for
   eliminations that rested on a Section-7.1 retry;
2. replays the recorded witness through the independent checker
   (:func:`repro.certify.checker.check_witness`);
3. on rejection, climbs the **revocation ladder**:

   * first rung — revoke exactly that elimination: the check stays in the
     program, its :class:`~repro.core.abcd.CheckAnalysis` is marked
     ``revoked`` (for PRE, the compensating checks are removed and the
     guarded check reverts to unconditional);
   * second rung — once ``config.certify_quarantine`` rejections accrue
     in one function, quarantine it: every elimination in the function is
     revoked and it compiles unoptimized;
   * ``--strict`` — escalate the first rejection to a
     :class:`~repro.errors.CertificateError` instead.

All compiler-side imports (graph construction, GVN) are function-local:
this module is imported by the solver via the package ``__init__`` and
must not complete the cycle at import time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.certify.checker import AssumeContext, CertificateRejected, check_witness
from repro.certify.witness import witness_to_json
from repro.core.graph import Node, const_node, len_node
from repro.errors import CertificateError


@dataclass
class CertVerdict:
    """The checker's verdict on one eliminated check."""

    check_id: int
    function: str
    kind: str
    status: str  # "accepted" | "rejected"
    reason: Optional[str] = None


def certify_state(fn, state, config, report=None) -> List[CertVerdict]:
    """Certify every elimination recorded in ``state`` (an
    :class:`~repro.core.abcd.AbcdState`), revoking the rejected ones.

    Mutates ``state`` (rejected sites leave ``to_remove``) and, for
    rejected PRE transformations, ``fn`` (compensating checks are removed
    and the guarded check reverts to unconditional).  Appends quarantined
    function names to ``report.quarantined_functions`` when a report is
    given.
    """
    verdicts: List[CertVerdict] = []
    bundle = _fresh_bundle(fn, config)
    records: Dict[int, object] = {a.check_id: a for a in state.analyses}
    gvn_cache: List[Optional[object]] = [None]
    rejections = 0

    surviving = []
    for site in state.to_remove:
        record = records.get(site.instr.check_id)
        reason = _check_one(fn, bundle, site, record, gvn_cache, assume=None)
        verdict = _verdict(fn, site, reason)
        verdicts.append(verdict)
        if reason is None:
            record.certificate = "accepted"
            surviving.append(site)
        else:
            rejections += 1
            _revoke(record, "rejected")
            _escalate(config, verdict)
    state.to_remove[:] = surviving

    # PRE-transformed checks: the guarded check stays in the IR, so the
    # certificate covers the compensating-check assumptions instead.
    for site, record in state.pre_candidates:
        if not getattr(record, "pre_applied", False) or not record.eliminated:
            continue
        assume = AssumeContext(
            fn, site.kind, site.array, site.instr.guard_group
        )
        reason = _check_one(fn, bundle, site, record, gvn_cache, assume)
        verdict = _verdict(fn, site, reason)
        verdicts.append(verdict)
        if reason is None:
            record.certificate = "accepted"
        else:
            rejections += 1
            _undo_pre(fn, site)
            _revoke(record, "rejected")
            _escalate(config, verdict)

    if rejections >= config.certify_quarantine > 0:
        _quarantine(fn, state, records)
        if report is not None:
            report.quarantined_functions.append(fn.name)
    return verdicts


# ----------------------------------------------------------------------
# One elimination.
# ----------------------------------------------------------------------


def _check_one(fn, bundle, site, record, gvn_cache, assume) -> Optional[str]:
    """Replay one elimination's certificate; ``None`` means accepted,
    otherwise the rejection reason."""
    graph, source, budget = _query(bundle, site)
    try:
        if record is None:
            raise CertificateRejected("no analysis record for this elimination")
        cert_source = record.cert_source or source
        if cert_source != source:
            _validate_congruent_source(fn, bundle, site, cert_source, gvn_cache)
            source = cert_source
        check_witness(graph, source, site.target, budget, record.witness, assume)
    except CertificateRejected as exc:
        return str(exc)
    return None


def _query(bundle, site):
    if site.kind == "upper":
        return bundle.upper, len_node(site.array), -1
    return bundle.lower, const_node(0), 0


def _validate_congruent_source(fn, bundle, site, cert_source: Node, gvn_cache) -> None:
    """A Section-7.1 elimination proves against a *congruent* array's
    length; re-derive the congruence with a fresh value numbering."""
    if cert_source.kind != "len" or site.kind != "upper":
        raise CertificateRejected(
            f"certificate source {cert_source} does not match the query"
        )
    if gvn_cache[0] is None:
        from repro.opt.gvn import value_number

        gvn_cache[0] = value_number(fn)
    other = cert_source.name
    if other not in gvn_cache[0].class_members(site.array):
        raise CertificateRejected(
            f"{other} is not value-congruent to {site.array}"
        )
    if other not in bundle.array_vars:
        raise CertificateRejected(f"{other} is not an array variable")


def _fresh_bundle(fn, config):
    """Rebuild the inequality graphs from the function as it stands,
    mirroring the analysis-time construction flags but sharing none of its
    objects."""
    from repro.core.constraints import build_graphs

    gvn = None
    domtree = None
    if config.gvn_mode == "augment":
        from repro.analysis.dominance import DominatorTree
        from repro.opt.gvn import value_number

        gvn = value_number(fn)
        domtree = DominatorTree.compute(fn)
    return build_graphs(
        fn,
        allocation_facts=config.allocation_facts,
        gvn=gvn,
        pi_constraints=config.pi_constraints,
        domtree=domtree,
    )


def _verdict(fn, site, reason: Optional[str]) -> CertVerdict:
    return CertVerdict(
        check_id=site.instr.check_id,
        function=fn.name,
        kind=site.kind,
        status="accepted" if reason is None else "rejected",
        reason=reason,
    )


# ----------------------------------------------------------------------
# Replay of stored eliminations (the persistent store's re-check hook).
# ----------------------------------------------------------------------


@dataclass
class _ReplaySite:
    """The site fields ``_check_one``/``_query`` consume, minus the IR
    instruction — a stored elimination carries them explicitly."""

    kind: str
    array: Optional[str]
    target: Node


@dataclass
class _ReplayRecord:
    cert_source: Optional[Node]
    witness: object


def fresh_bundle(fn, config):
    """Public wrapper over the checker-side graph rebuild: inequality
    graphs constructed from ``fn`` as it stands, sharing nothing with
    whatever produced the elimination being replayed."""
    return _fresh_bundle(fn, config)


def replay_elimination(
    fn,
    bundle,
    kind: str,
    array: Optional[str],
    target: Node,
    witness,
    cert_source: Optional[Node] = None,
    assume: Optional[AssumeContext] = None,
    gvn_cache: Optional[list] = None,
) -> Optional[str]:
    """Replay one *stored* elimination through the independent checker.

    Exactly the validation ``certify_state`` applies to an in-memory
    elimination, addressed by value instead of by live ``AbcdState``
    objects: the caller supplies the check's kind/array/proof target and
    the decoded witness, and gets back ``None`` (accepted) or the
    rejection reason.  ``gvn_cache`` is a one-slot list shared across
    calls on the same function so Section-7.1 congruence replays number
    values once.
    """
    site = _ReplaySite(kind=kind, array=array, target=target)
    record = _ReplayRecord(cert_source=cert_source, witness=witness)
    if gvn_cache is None:
        gvn_cache = [None]
    return _check_one(fn, bundle, site, record, gvn_cache, assume)


# ----------------------------------------------------------------------
# The revocation ladder.
# ----------------------------------------------------------------------


def _revoke(record, certificate: Optional[str]) -> None:
    if certificate is not None:
        record.certificate = certificate
    record.revoked = True
    record.eliminated = False
    record.scope = None


def _undo_pre(fn, site) -> None:
    """Revert one PRE transformation: drop its compensating checks and
    make the guarded check unconditional again (the materialized index
    temporaries are dead but harmless)."""
    from repro.ir.instructions import SpeculativeCheck

    group = site.instr.guard_group
    site.instr.guard_group = None
    if group is None:
        return
    # Locate the group's compensating checks through the def-use type
    # index and remove them with the chain-maintaining mutator.
    chains = fn.def_use()
    for instr in chains.instrs_of_type(SpeculativeCheck):
        if instr.guard_group == group:  # type: ignore[union-attr]
            fn.remove_instr(chains.block_of(instr), instr)


def _quarantine(fn, state, records) -> None:
    """Second rung: revoke every elimination in the function."""
    for site in state.to_remove:
        record = records.get(site.instr.check_id)
        if record is not None:
            _revoke(record, None)
    state.to_remove[:] = []
    for site, record in state.pre_candidates:
        if getattr(record, "pre_applied", False) and record.eliminated:
            _undo_pre(fn, site)
            _revoke(record, None)


def _escalate(config, verdict: CertVerdict) -> None:
    if config.strict:
        raise CertificateError(
            f"certificate rejected for check #{verdict.check_id} in "
            f"{verdict.function}: {verdict.reason}"
        )


# ----------------------------------------------------------------------
# Serialization.
# ----------------------------------------------------------------------


def certificates_to_json(report) -> Dict[str, object]:
    """Deterministic JSON form of a report's certificate outcomes (the
    payload behind ``repro certify --json``)."""
    analyses = sorted(report.analyses, key=lambda a: (a.function, a.check_id))
    return {
        "summary": {
            "analyzed": len(report.analyses),
            "eliminated": report.eliminated_count(),
            "emitted": report.certificates_emitted,
            "accepted": report.certificates_accepted,
            "rejected": report.certificates_rejected,
            "revoked": report.revoked_count,
            "quarantined": sorted(report.quarantined_functions),
        },
        "checks": [
            {
                "check_id": a.check_id,
                "function": a.function,
                "kind": a.kind,
                "eliminated": a.eliminated,
                "certificate": a.certificate,
                "revoked": a.revoked,
                "exhausted_budget": a.exhausted_budget,
                "witness": witness_to_json(a.witness),
            }
            for a in analyses
        ],
    }
