"""Proof-witness certificates: independently checkable elimination proofs.

Every check ABCD removes rests on a ``demandProve`` derivation over
difference constraints.  This package turns "the solver said so" into
per-check translation validation:

* :mod:`repro.certify.witness` — the witness grammar: the tree of
  inequality-graph edges a proof used, whose weights telescope to the
  claimed bound (the compact certificate form difference constraints
  admit, cf. the path witnesses of Difference-Bound Matrices);
* :mod:`repro.certify.checker` — an **independent** checker that replays
  a witness against a freshly rebuilt inequality graph using only edge
  lookups and integer telescoping, sharing no traversal code with the
  Figure-5 solver;
* :mod:`repro.certify.driver` — the per-function certification pass and
  the revocation ladder: a rejected certificate revokes exactly that
  elimination (the check stays in), repeated rejections quarantine the
  function to unoptimized compilation, and ``--strict`` escalates to a
  hard error.
"""

from repro.certify.checker import CertificateRejected, check_witness
from repro.certify.driver import (
    CertVerdict,
    certificates_to_json,
    certify_state,
)
from repro.certify.witness import (
    AssumeWitness,
    AxiomWitness,
    CycleWitness,
    EdgeWitness,
    PhiWitness,
    Witness,
    witness_to_json,
)

__all__ = [
    "AssumeWitness",
    "AxiomWitness",
    "CycleWitness",
    "EdgeWitness",
    "PhiWitness",
    "Witness",
    "witness_to_json",
    "CertificateRejected",
    "check_witness",
    "CertVerdict",
    "certificates_to_json",
    "certify_state",
]
