"""Constant folding on (e-)SSA.

Folds arithmetic and comparisons over literal operands into ``Copy dest,
Const`` instructions, and simplifies branches whose condition is a literal
into unconditional jumps (pruning the dead arm's φ-operands and any
now-unreachable blocks).

Division and modulo by a literal zero are *not* folded — they must raise
at run time, in program order.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Branch,
    Cmp,
    Const,
    Copy,
    Jump,
)
from repro.runtime.values import minij_div, minij_mod

_CMP_FUNCS = {
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
}


def fold_constants(fn: Function) -> int:
    """Fold literal computations; returns the number of changes."""
    # Legacy dense pass: replaces instructions behind the def-use index.
    fn.invalidate_def_use()
    changes = 0
    for block in fn.blocks.values():
        new_body = []
        for instr in block.body:
            folded = _fold_instr(instr)
            if folded is not None:
                new_body.append(folded)
                changes += 1
            else:
                new_body.append(instr)
        block.body = new_body

    changes += _fold_branches(fn)
    return changes


def _fold_instr(instr):
    if isinstance(instr, BinOp) and isinstance(instr.lhs, Const) and isinstance(instr.rhs, Const):
        lhs, rhs = instr.lhs.value, instr.rhs.value
        if instr.op == "add":
            return Copy(instr.dest, Const(lhs + rhs))
        if instr.op == "sub":
            return Copy(instr.dest, Const(lhs - rhs))
        if instr.op == "mul":
            return Copy(instr.dest, Const(lhs * rhs))
        if instr.op == "div" and rhs != 0:
            return Copy(instr.dest, Const(minij_div(lhs, rhs)))
        if instr.op == "mod" and rhs != 0:
            return Copy(instr.dest, Const(minij_mod(lhs, rhs)))
        return None
    if isinstance(instr, BinOp) and isinstance(instr.rhs, Const):
        # Algebraic identities keeping the C3 shape simple.
        if instr.rhs.value == 0 and instr.op in ("add", "sub"):
            return Copy(instr.dest, instr.lhs)
    if isinstance(instr, BinOp) and isinstance(instr.lhs, Const):
        if instr.lhs.value == 0 and instr.op == "add":
            return Copy(instr.dest, instr.rhs)
    if isinstance(instr, Cmp) and isinstance(instr.lhs, Const) and isinstance(instr.rhs, Const):
        result = _CMP_FUNCS[instr.op](instr.lhs.value, instr.rhs.value)
        return Copy(instr.dest, Const(1 if result else 0))
    return None


def _fold_branches(fn: Function) -> int:
    changes = 0
    for block in list(fn.blocks.values()):
        term = block.terminator
        if isinstance(term, Branch) and isinstance(term.cond, Const):
            taken = term.true_target if term.cond.value != 0 else term.false_target
            not_taken = term.false_target if term.cond.value != 0 else term.true_target
            block.terminator = Jump(taken)
            if not_taken != taken:
                for phi in fn.blocks[not_taken].phis:
                    phi.incomings.pop(block.label, None)
            changes += 1
    if changes:
        fn.remove_unreachable_blocks()
    return changes
