"""Standard optimizations run before ABCD (the Jalapeño pre-pass suite)."""

from repro.opt.constant_folding import fold_constants
from repro.opt.copy_propagation import propagate_copies
from repro.opt.dce import eliminate_dead_code
from repro.opt.gvn import ValueNumbering, array_congruence_classes, value_number
from repro.opt.worklist import WorklistResult, optimize_worklist
from repro.ir.function import Function


def run_standard_pipeline(fn: Function, max_rounds: int = 4) -> int:
    """Iterate copy propagation, constant folding, and DCE to a fixpoint
    (bounded) — the legacy dense driver, kept as the baseline the sparse
    :func:`optimize_worklist` is measured against.  Returns total change
    count."""
    total = 0
    for _ in range(max_rounds):
        changes = propagate_copies(fn)
        changes += fold_constants(fn)
        changes += eliminate_dead_code(fn)
        total += changes
        if changes == 0:
            break
    return total


__all__ = [
    "propagate_copies",
    "fold_constants",
    "eliminate_dead_code",
    "optimize_worklist",
    "WorklistResult",
    "value_number",
    "ValueNumbering",
    "array_congruence_classes",
    "run_standard_pipeline",
]
