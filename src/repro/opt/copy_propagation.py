"""Copy propagation on (e-)SSA.

Replaces every use of ``dest`` with ``src`` for plain ``dest := src``
copies, transitively, and leaves the now-dead copies to DCE.  π
assignments are **never** propagated through: although a π is a run-time
copy, its destination name carries the branch/check constraint, and
rewriting uses to the source would silently widen their constraint scope
(the whole point of e-SSA renaming).

Constants are propagated as well (``dest := 5`` turns uses of ``dest``
into the literal ``5``), which canonicalizes the C2/C3 patterns the
inequality-graph builder looks for.
"""

from __future__ import annotations

from typing import Dict

from repro.ir.function import Function
from repro.ir.instructions import Const, Copy, Operand, Phi, Var


def propagate_copies(fn: Function) -> int:
    """Rewrite uses through copy chains; returns how many instructions had
    operands rewritten."""
    if fn.ssa_form == "none":
        raise ValueError("copy propagation requires SSA form")
    # Legacy dense pass: rewrites operands behind the def-use index's back.
    fn.invalidate_def_use()

    # Resolve each copy destination to its ultimate non-copy source.
    direct: Dict[str, Operand] = {}
    for instr in fn.all_instructions():
        if isinstance(instr, Copy):
            direct[instr.dest] = instr.src

    def resolve(name: str) -> Operand:
        seen = set()
        operand: Operand = Var(name)
        while isinstance(operand, Var) and operand.name in direct:
            if operand.name in seen:  # defensive; SSA precludes copy cycles
                break
            seen.add(operand.name)
            operand = direct[operand.name]
        return operand

    resolved: Dict[str, Operand] = {name: resolve(name) for name in direct}
    var_mapping = {
        name: op.name
        for name, op in resolved.items()
        if isinstance(op, Var) and op.name != name
    }
    const_sources = {
        name: op for name, op in resolved.items() if isinstance(op, Const)
    }

    rewritten = 0
    for block in fn.blocks.values():
        for instr in block.instructions():
            if isinstance(instr, Copy) and instr.dest in resolved:
                # Shorten the chain itself so DCE sees a simple copy.
                new_src = resolved[instr.dest]
                if new_src != instr.src:
                    instr.src = new_src
                    rewritten += 1
                continue
            before = [str(u) for u in instr.uses()]
            instr.rename_uses(var_mapping)
            _rewrite_const_uses(instr, const_sources)
            if [str(u) for u in instr.uses()] != before:
                rewritten += 1
    return rewritten


def _rewrite_const_uses(instr, const_sources: Dict[str, Const]) -> None:
    """Replace variable operands whose source is a constant.

    Only operand-position uses can become constants; instructions that
    name variables structurally (array operands of loads/stores/checks, π
    sources) keep the variable — an array reference is never a constant,
    and a π of a constant-valued variable is left for constant folding.
    """
    from repro.ir.instructions import ArrayNew, ArrayStore, BinOp, Call, Cmp
    from repro.ir.instructions import CheckLower, CheckUpper, Return, Branch
    from repro.ir.instructions import ArrayLoad, SpeculativeCheck

    def sub(op: Operand) -> Operand:
        if isinstance(op, Var) and op.name in const_sources:
            return const_sources[op.name]
        return op

    if isinstance(instr, (BinOp, Cmp)):
        instr.lhs = sub(instr.lhs)
        instr.rhs = sub(instr.rhs)
    elif isinstance(instr, ArrayNew):
        instr.length = sub(instr.length)
    elif isinstance(instr, ArrayLoad):
        instr.index = sub(instr.index)
    elif isinstance(instr, ArrayStore):
        instr.index = sub(instr.index)
        instr.value = sub(instr.value)
    elif isinstance(instr, (CheckLower, CheckUpper, SpeculativeCheck)):
        instr.index = sub(instr.index)
    elif isinstance(instr, Call):
        instr.args = [sub(a) for a in instr.args]
    elif isinstance(instr, Return):
        if instr.value is not None:
            instr.value = sub(instr.value)
    elif isinstance(instr, Branch):
        instr.cond = sub(instr.cond)
    elif isinstance(instr, Phi):
        instr.incomings = {p: sub(op) for p, op in instr.incomings.items()}
