"""Dominator-based global value numbering (analysis only).

Assigns every SSA variable a value class such that variables in one class
provably hold the same run-time value.  Congruence sources:

* ``Copy dest, src`` and ``Pi dest, src`` — a π is a run-time copy, so its
  destination is value-congruent to its source (its *constraints* differ,
  which is why the transformation passes never merge πs, but for value
  identity they are equal);
* pure expressions (``BinOp``, ``Cmp``, ``ArrayLen``) with identical
  opcode and congruent operands, discovered in dominator-tree preorder so
  the representative always dominates later members;
* φs in the same block with pairwise congruent operands.

ABCD consumes the classes for the Section-7.1 extension: when
``x <= len(B) - 1`` is provable and ``B`` is congruent to the checked
array ``A``, the check on ``A[x]`` is redundant.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.dominance import DominatorTree
from repro.ir.function import Function
from repro.ir.instructions import (
    ArrayLen,
    BinOp,
    Cmp,
    Const,
    Copy,
    Operand,
    Phi,
    Pi,
    Var,
)


class ValueNumbering:
    """The result of value numbering one function."""

    def __init__(self, class_of: Dict[str, int], members: Dict[int, Set[str]]) -> None:
        self.class_of = class_of
        self._members = members

    def congruent(self, a: str, b: str) -> bool:
        return (
            a in self.class_of
            and b in self.class_of
            and self.class_of[a] == self.class_of[b]
        )

    def class_members(self, name: str) -> Set[str]:
        if name not in self.class_of:
            return {name}
        return set(self._members[self.class_of[name]])

    def as_classes(self) -> Dict[str, Set[str]]:
        """Map every variable to its congruence class (for ABCDConfig)."""
        return {name: self.class_members(name) for name in self.class_of}


def value_number(fn: Function, domtree=None) -> ValueNumbering:
    """Run dominator-order value numbering over an SSA function.

    Pass a precomputed ``domtree`` (e.g. from the session's
    AnalysisManager) to avoid recomputing dominance here.
    """
    if fn.ssa_form == "none":
        raise ValueError("value numbering requires SSA form")
    if domtree is None:
        domtree = DominatorTree.compute(fn)

    class_of: Dict[str, int] = {}
    next_class = [0]

    def fresh_class(name: str) -> int:
        number = next_class[0]
        next_class[0] += 1
        class_of[name] = number
        return number

    def operand_key(op: Operand):
        if isinstance(op, Const):
            return ("const", op.value)
        assert isinstance(op, Var)
        if op.name not in class_of:
            fresh_class(op.name)
        return ("class", class_of[op.name])

    for param in fn.params:
        fresh_class(param)

    expr_table: Dict[Tuple, int] = {}

    for label in domtree.preorder():
        block = fn.blocks[label]
        for phi in block.phis:
            key = ("phi", label) + tuple(
                sorted(
                    (pred, operand_key(op)) for pred, op in phi.incomings.items()
                )
            )
            known = expr_table.get(key)
            if known is not None:
                class_of[phi.dest] = known
            else:
                expr_table[key] = fresh_class(phi.dest)
        for instr in block.body:
            dest = instr.defs()
            if dest is None:
                continue
            # Value aliases inherit the class of their source directly:
            # a π or variable copy denotes the same run-time value.
            alias = _alias_source(instr)
            if alias is not None:
                if alias not in class_of:
                    fresh_class(alias)
                class_of[dest] = class_of[alias]
                continue
            key = _expr_key(instr, operand_key)
            if key is None:
                fresh_class(dest)
                continue
            known = expr_table.get(key)
            if known is not None:
                class_of[dest] = known
            else:
                expr_table[key] = fresh_class(dest)

    members: Dict[int, Set[str]] = {}
    for name, number in class_of.items():
        members.setdefault(number, set()).add(name)
    return ValueNumbering(class_of, members)


def _alias_source(instr) -> Optional[str]:
    """The variable this instruction is a pure value-copy of, if any."""
    if isinstance(instr, Copy) and isinstance(instr.src, Var):
        return instr.src.name
    if isinstance(instr, Pi):
        return instr.src
    return None


def _expr_key(instr, operand_key) -> Optional[Tuple]:
    if isinstance(instr, Copy):
        # Variable copies are handled as aliases; this covers constants.
        return ("value", operand_key(instr.src))
    if isinstance(instr, BinOp):
        lhs, rhs = operand_key(instr.lhs), operand_key(instr.rhs)
        if instr.op in ("add", "mul"):  # commutative
            lhs, rhs = sorted((lhs, rhs))
        return ("binop", instr.op, lhs, rhs)
    if isinstance(instr, Cmp):
        return ("cmp", instr.op, operand_key(instr.lhs), operand_key(instr.rhs))
    if isinstance(instr, ArrayLen):
        return ("arraylen", operand_key(Var(instr.array)))
    return None


def array_congruence_classes(fn: Function) -> Dict[str, Set[str]]:
    """Convenience for ABCD: congruence classes of every variable."""
    return value_number(fn).as_classes()
