"""Function inlining (the paper's missing interprocedural dimension).

Section 8: "We do not use any interprocedural summary information, as the
Jalapeño optimizing compiler assumes an open world ... these experimental
results should be considered a lower bound."  Inlining is the classic JIT
answer: once a callee's body sits inside the caller, its array parameters
resolve to the caller's allocations (exposing allocation length facts) and
its index parameters to the caller's constants — exactly what Hanoi's
``heights[p]`` accesses need.

The pass runs on **non-SSA** IR (between lowering and e-SSA construction):

* only non-recursive callees are inlined (call-graph cycles are skipped);
* callee size and total growth are bounded;
* copied variables get a fresh ``@inlN`` suffix, copied blocks fresh
  labels, and copied checks fresh program-unique ids;
* each ``return`` in the copy becomes a copy-to-result plus a jump to the
  continuation block.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.ir.function import BasicBlock, Function, Program
from repro.ir.instructions import (
    Call,
    CheckLower,
    CheckUpper,
    Copy,
    Instr,
    Jump,
    Return,
)


def _instruction_count(fn: Function) -> int:
    return fn.def_use().instruction_count()


def recursive_functions(program: Program) -> Set[str]:
    """Functions on a call-graph cycle (including self-recursion).

    The call edges come straight from each function's def-use type index —
    O(calls) per function instead of a full instruction scan.
    """
    callees: Dict[str, Set[str]] = {name: set() for name in program.functions}
    for name, fn in program.functions.items():
        for instr in fn.def_use().instrs_of_type(Call):
            assert isinstance(instr, Call)
            callees[name].add(instr.callee)

    recursive: Set[str] = set()
    for start in program.functions:
        seen: Set[str] = set()
        stack = list(callees[start])
        while stack:
            current = stack.pop()
            if current == start:
                recursive.add(start)
                break
            if current in seen or current not in callees:
                continue
            seen.add(current)
            stack.extend(callees[current])
    return recursive


class Inliner:
    """Bounded inlining over a whole program."""

    def __init__(
        self,
        program: Program,
        max_callee_size: int = 60,
        max_growth_factor: float = 8.0,
        max_rounds: int = 3,
    ) -> None:
        self._program = program
        self._max_callee_size = max_callee_size
        self._max_growth = max_growth_factor
        self._max_rounds = max_rounds
        self._next_copy = 0
        self.inlined_calls = 0

    def run(self) -> int:
        """Inline eligible calls; returns how many call sites were expanded."""
        recursive = recursive_functions(self._program)
        budgets = {
            name: max(
                int(_instruction_count(fn) * self._max_growth),
                _instruction_count(fn) + self._max_callee_size,
            )
            for name, fn in self._program.functions.items()
        }
        for _ in range(self._max_rounds):
            expanded = 0
            for fn in self._program.functions.values():
                if fn.ssa_form != "none":
                    raise ValueError("inlining must run before SSA construction")
                expanded += self._inline_in_function(fn, recursive, budgets[fn.name])
            if expanded == 0:
                break
        return self.inlined_calls

    # ------------------------------------------------------------------

    def _inline_in_function(
        self, fn: Function, recursive: Set[str], budget: int
    ) -> int:
        expanded = 0
        for label in list(fn.reachable_blocks()):
            block = fn.blocks.get(label)
            if block is None:
                continue
            call_index = self._find_inlinable_call(fn, block, recursive, budget)
            if call_index is None:
                continue
            call = block.body[call_index]
            assert isinstance(call, Call)
            self._expand(fn, block, call_index, call)
            self.inlined_calls += 1
            expanded += 1
        return expanded

    def _find_inlinable_call(
        self, fn: Function, block: BasicBlock, recursive: Set[str], budget: int
    ) -> Optional[int]:
        for index, instr in enumerate(block.body):
            if not isinstance(instr, Call):
                continue
            callee = self._program.functions.get(instr.callee)
            if callee is None or callee.name == fn.name:
                continue
            if callee.name in recursive:
                continue
            callee_size = _instruction_count(callee)
            if callee_size > self._max_callee_size:
                continue
            if _instruction_count(fn) + callee_size > budget:
                continue
            return index
        return None

    def _expand(self, fn: Function, block: BasicBlock, call_index: int, call: Call) -> None:
        # Expansion splices blocks and rewrites bodies directly; the caller's
        # def-use index is rebuilt lazily on the next query.
        fn.invalidate_def_use()
        callee = self._program.function(call.callee)
        suffix = f"@inl{self._next_copy}"
        self._next_copy += 1

        # Continuation block: everything after the call.
        continuation = fn.new_block("cont")
        continuation.body = block.body[call_index + 1 :]
        continuation.terminator = block.terminator

        # Copy the callee body with fresh variables, labels, and check ids.
        label_map = {
            old_label: fn.new_block("inl").label
            for old_label in callee.blocks
        }

        def rename_var(name: str) -> str:
            return name + suffix

        for old_label, old_block in callee.blocks.items():
            new_block = fn.blocks[label_map[old_label]]
            for instr in old_block.instructions():
                cloned = instr.clone()
                self._rewrite_instr(cloned, rename_var, label_map)
                if isinstance(cloned, Return):
                    if call.dest is not None and cloned.value is not None:
                        new_block.body.append(Copy(call.dest, cloned.value))
                    new_block.terminator = Jump(continuation.label)
                elif cloned.is_terminator:
                    new_block.terminator = cloned
                else:
                    new_block.body.append(cloned)

        # Rewrite the call site: argument copies, then jump into the copy.
        block.body = block.body[:call_index]
        for param, arg in zip(callee.params, call.args):
            block.body.append(Copy(rename_var(param), arg))
        block.terminator = Jump(label_map[callee.entry])

    def _rewrite_instr(self, instr: Instr, rename_var, label_map: Dict[str, str]) -> None:
        # Variables: both uses and the destination.
        all_names = {name: rename_var(name) for name in instr.used_vars()}
        instr.rename_uses(all_names)
        dest = instr.defs()
        if dest is not None:
            instr.dest = rename_var(dest)  # type: ignore[attr-defined]
        from repro.ir.instructions import ArrayStore

        if isinstance(instr, ArrayStore):
            pass  # array operand already renamed via rename_uses
        # Control flow targets.
        if isinstance(instr, Jump):
            instr.target = label_map[instr.target]
        from repro.ir.instructions import Branch

        if isinstance(instr, Branch):
            instr.true_target = label_map[instr.true_target]
            instr.false_target = label_map[instr.false_target]
        # Checks need fresh program-unique identities.
        if isinstance(instr, (CheckLower, CheckUpper)):
            instr.check_id = self._program.new_check_id()


def inline_program(
    program: Program,
    max_callee_size: int = 60,
    max_growth_factor: float = 8.0,
    max_rounds: int = 3,
) -> int:
    """Run bounded inlining over ``program``; returns expanded call count."""
    inliner = Inliner(program, max_callee_size, max_growth_factor, max_rounds)
    return inliner.run()
