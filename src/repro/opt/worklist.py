"""Combined copy-prop / const-fold / DCE as one sparse worklist pass.

The legacy pipeline ran :func:`~repro.opt.copy_propagation.propagate_copies`,
:func:`~repro.opt.constant_folding.fold_constants`, and
:func:`~repro.opt.dce.eliminate_dead_code` inside a ``FixpointGroup`` that
re-scanned the whole function until quiescence — O(n²) in the worst case,
and a dense sweep even when nothing changed.  This pass replaces the group
with a single worklist driven by the function's def-use chains
(:mod:`repro.ir.defuse`): every instruction is visited once from the seed,
and only *transitively affected* users/defs are revisited afterwards.

Equivalence contract: the transformations applied are exactly those of the
three legacy passes —

* **copy resolution** follows ``Copy`` def chains through the chains index
  (never through π-assignments; a π destination carries a branch/check
  constraint and must keep its name), renaming variable uses and
  substituting constants only into operand positions
  (:func:`~repro.opt.copy_propagation._rewrite_const_uses` semantics —
  array names and π sources keep the variable);
* **folding** reuses :func:`~repro.opt.constant_folding._fold_instr`
  verbatim (literal arithmetic/comparisons, ``x+0`` identities, no
  folding of division by literal zero) and the same branch-to-jump
  simplification with φ-operand pruning and unreachable-block removal;
* **DCE** removes the same ``_PURE`` instruction classes with zero uses
  (πs are never in that set and are always kept).

Sparseness is driven by two signals:

* rewriting or deleting an instruction enqueues it (and, for new copy
  definitions, the users of the defined name);
* the chains' ``on_use_removed`` hook enqueues the defining instruction
  of every value that just lost a use — the DCE cascade without a rescan.

The pass reports :class:`WorklistResult` with ``instructions_visited``
(worklist pops that did work) and ``worklist_revisits`` (pops of an
instruction already visited once), which the session telemetry surfaces
so the sparseness win is measurable rather than asserted.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Set

from repro.ir.defuse import DefUseChains
from repro.ir.function import Function
from repro.ir.instructions import (
    Branch,
    Const,
    Copy,
    Instr,
    Jump,
    Operand,
    Phi,
    Var,
)
from repro.opt.constant_folding import _fold_instr
from repro.opt.copy_propagation import _rewrite_const_uses
from repro.opt.dce import is_removable


@dataclass
class WorklistResult:
    """Outcome of one :func:`optimize_worklist` run."""

    changes: int
    instructions_visited: int
    worklist_revisits: int

    @property
    def converged_in_one_pass(self) -> bool:
        """Always true by construction — the worklist reaches quiescence in
        a single invocation; kept as an explicit, testable statement."""
        return True


def optimize_worklist(fn: Function) -> WorklistResult:
    """Run the combined sparse optimization to quiescence; returns stats."""
    if fn.ssa_form == "none":
        raise ValueError("worklist optimization requires SSA form")
    return _Worklist(fn).run()


class _Worklist:
    def __init__(self, fn: Function) -> None:
        self.fn = fn
        self.chains: DefUseChains = fn.def_use()
        self.queue: Deque[Instr] = deque()
        self.queued: Set[int] = set()
        self.visited_once: Set[int] = set()
        self.visited = 0
        self.revisits = 0
        self.changes = 0

    # ------------------------------------------------------------------
    # Worklist plumbing.
    # ------------------------------------------------------------------

    def enqueue(self, instr: Instr) -> None:
        key = id(instr)
        if key not in self.queued:
            self.queued.add(key)
            self.queue.append(instr)

    def _on_use_removed(self, name: str) -> None:
        # A value just lost a use occurrence: its definition may now be
        # dead.  This hook is the entire DCE cascade.
        info = self.chains.info(name)
        if info is not None:
            for def_instr in info.defs:
                self.enqueue(def_instr)

    def run(self) -> WorklistResult:
        chains = self.chains
        previous_hook = chains.on_use_removed
        chains.on_use_removed = self._on_use_removed
        try:
            # Seed: every instruction exactly once, in block order (the
            # legacy passes scanned all blocks, reachable or not).
            for block in self.fn.blocks.values():
                for instr in block.instructions():
                    self.enqueue(instr)
            while self.queue:
                instr = self.queue.popleft()
                self.queued.discard(id(instr))
                if not chains.contains(instr):
                    continue  # deleted (or block removed) since queued
                self.visited += 1
                if id(instr) in self.visited_once:
                    self.revisits += 1
                else:
                    self.visited_once.add(id(instr))
                self._process(instr)
        finally:
            chains.on_use_removed = previous_hook
        return WorklistResult(self.changes, self.visited, self.revisits)

    # ------------------------------------------------------------------
    # Per-instruction transformations (the three legacy passes fused).
    # ------------------------------------------------------------------

    def _process(self, instr: Instr) -> None:
        label = self.chains.block_of(instr)

        self._resolve_operands(instr)

        if isinstance(instr, Branch):
            if isinstance(instr.cond, Const):
                self._fold_branch(label, instr)
            return

        folded = _fold_instr(instr)
        if folded is not None:
            self.fn.replace_instr(label, instr, folded)
            self.changes += 1
            self.enqueue(folded)
            dest = folded.defs()
            if dest is not None:
                # A fresh Copy definition: users resolved this name while
                # it was still a computation, so they must look again.
                for user in self.chains.users_of(dest):
                    self.enqueue(user)
            return

        dest = instr.defs()
        if (
            is_removable(instr)
            and dest is not None
            and self.chains.use_count(dest) == 0
        ):
            if isinstance(instr, Phi):
                self.fn.remove_phi(label, instr)
            else:
                self.fn.remove_instr(label, instr)
            self.changes += 1

    def _resolve(self, name: str) -> Operand:
        """Follow ``Copy`` definitions to the ultimate source operand.

        Resolution stops at any non-copy definition — in particular at
        π-assignments, whose destinations must keep their constraint-
        carrying names — and at parameters / φs.
        """
        seen: Set[str] = set()
        operand: Operand = Var(name)
        while isinstance(operand, Var) and operand.name not in seen:
            seen.add(operand.name)
            definition = self.chains.def_of(operand.name)
            if not isinstance(definition, Copy):
                break
            operand = definition.src
        return operand

    def _resolve_operands(self, instr: Instr) -> None:
        """Rewrite ``instr``'s operands through copy chains (use side)."""
        if isinstance(instr, Copy):
            if isinstance(instr.src, Var):
                resolved = self._resolve(instr.src.name)
                if resolved != instr.src:
                    # Shorten the chain itself so DCE sees a simple copy.
                    def shorten() -> None:
                        instr.src = resolved

                    self.chains.update_uses(instr, shorten)
                    self.changes += 1
            return

        var_mapping: Dict[str, str] = {}
        const_sources: Dict[str, Const] = {}
        for name in set(instr.used_vars()):
            resolved = self._resolve(name)
            if isinstance(resolved, Var):
                if resolved.name != name:
                    var_mapping[name] = resolved.name
            elif isinstance(resolved, Const):
                const_sources[name] = resolved
        if not var_mapping and not const_sources:
            return

        def rewrite() -> None:
            if var_mapping:
                instr.rename_uses(var_mapping)
            if const_sources:
                _rewrite_const_uses(instr, const_sources)

        if self.chains.update_uses(instr, rewrite):
            self.changes += 1

    def _fold_branch(self, label: str, term: Branch) -> None:
        assert isinstance(term.cond, Const)
        taken = term.true_target if term.cond.value != 0 else term.false_target
        not_taken = term.false_target if term.cond.value != 0 else term.true_target
        self.fn.set_terminator(label, Jump(taken))
        self.changes += 1
        if not_taken != taken:
            for phi in list(self.fn.blocks[not_taken].phis):

                def prune(phi: Phi = phi) -> None:
                    phi.incomings.pop(label, None)

                self.chains.update_uses(phi, prune)
        self.fn.remove_unreachable_blocks()
