"""Dead code elimination on (e-)SSA.

Iteratively removes pure instructions whose results are unused.  Side-
effecting instructions are always kept: checks (they may raise), stores,
calls (callee may raise or loop), allocations (``new int[n]`` raises on
negative ``n``), terminators.  Unused φs are pure and removable.

π-assignments are kept even when their destination is unused: a π is the
carrier of a branch/check constraint, and the GVN-augmented inequality
graph can route proofs of *other* variables through a π'd name via
congruence edges.  (A production JIT would run a final DCE after
bounds-check optimization; the harness measures check counts, which dead
πs do not affect.)
"""

from __future__ import annotations

from typing import Dict, Set

from repro.ir.function import Function
from repro.ir.instructions import (
    ArrayLen,
    ArrayLoad,
    BinOp,
    Cmp,
    Const,
    Copy,
    Instr,
    Phi,
    Pi,
)

_PURE = (Copy, BinOp, Cmp, ArrayLen, ArrayLoad, Phi)


def is_removable(instr: Instr) -> bool:
    """True when deleting an unused ``instr`` cannot change behavior.

    Division and modulo trap on a zero divisor, so a dead ``div``/``mod``
    is only removable when its divisor is a *constant* nonzero — anything
    else must stay, or the optimized program silently skips a mandatory
    :class:`~repro.errors.DivisionByZeroError` (found by differential
    fuzzing; see ``tests/fuzz_corpus/``).
    """
    if not isinstance(instr, _PURE):
        return False
    if isinstance(instr, BinOp) and instr.op in ("div", "mod"):
        return isinstance(instr.rhs, Const) and instr.rhs.value != 0
    return True


def eliminate_dead_code(fn: Function) -> int:
    """Remove dead pure instructions; returns how many were removed."""
    # Legacy dense pass: drops instructions behind the def-use index.
    fn.invalidate_def_use()
    removed_total = 0
    while True:
        use_counts = _count_uses(fn)
        removed = 0
        for block in fn.blocks.values():
            keep_phis = []
            for phi in block.phis:
                if use_counts.get(phi.dest, 0) == 0:
                    removed += 1
                else:
                    keep_phis.append(phi)
            block.phis = keep_phis
            keep_body = []
            for instr in block.body:
                dest = instr.defs()
                if (
                    is_removable(instr)
                    and dest is not None
                    and use_counts.get(dest, 0) == 0
                ):
                    removed += 1
                else:
                    keep_body.append(instr)
            block.body = keep_body
        removed_total += removed
        if removed == 0:
            return removed_total


def _count_uses(fn: Function) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for instr in fn.all_instructions():
        for name in instr.used_vars():
            counts[name] = counts.get(name, 0) + 1
    return counts


def unused_variables(fn: Function) -> Set[str]:
    """Variables defined but never used (diagnostic helper)."""
    counts = _count_uses(fn)
    unused = set()
    for instr in fn.all_instructions():
        dest = instr.defs()
        if dest is not None and counts.get(dest, 0) == 0:
            unused.add(dest)
    return unused
