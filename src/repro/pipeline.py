"""The public pipeline facade: source → e-SSA IR → ABCD → execution.

Typical use::

    from repro import pipeline

    program = pipeline.compile_source(source)
    profile = pipeline.profile(program, "main")
    report = pipeline.abcd(program, pre=True, profile=profile)
    result = pipeline.run(program, "main")

``compile_source`` produces a :class:`~repro.ir.function.Program` whose
functions are in e-SSA form with the standard pre-pass suite applied —
the state in which a dynamic compiler would hand code to ABCD.
"""

from __future__ import annotations

import copy
from typing import Optional, Sequence

from repro.core.abcd import ABCDConfig, ABCDReport, optimize_program
from repro.frontend.parser import parse_source
from repro.frontend.semantic import check_program
from repro.ir.function import Program
from repro.ir.lowering import lower_program
from repro.ir.verifier import verify_program
from repro.opt import run_standard_pipeline
from repro.runtime.interpreter import ExecutionResult, run_program
from repro.runtime.profiler import Profile, collect_profile
from repro.ssa.essa import construct_essa


def compile_source(
    source: str,
    standard_opts: bool = True,
    verify: bool = True,
    inline: bool = False,
) -> Program:
    """Compile MiniJ source to an e-SSA program ready for ABCD.

    ``inline=True`` runs bounded function inlining before e-SSA
    construction — the interprocedural extension the paper lists as
    future infrastructure work (callee array parameters then resolve to
    caller allocations, exposing their length facts to ABCD).
    """
    ast = parse_source(source)
    info = check_program(ast)
    program = lower_program(ast, info)
    if inline:
        from repro.opt.inline import inline_program

        inline_program(program)
    for fn in program.functions.values():
        construct_essa(fn)
        if standard_opts:
            run_standard_pipeline(fn)
    if verify:
        verify_program(program)
    return program


def clone_program(program: Program) -> Program:
    """A deep copy, for unoptimized/optimized differential comparisons."""
    return copy.deepcopy(program)


def profile(
    program: Program,
    function_name: str = "main",
    args: Sequence = (),
    fuel: int = 50_000_000,
) -> Profile:
    """Collect a training-run profile (block/edge/check frequencies)."""
    return collect_profile(program, function_name, args, fuel)


def abcd(
    program: Program,
    config: Optional[ABCDConfig] = None,
    profile: Optional[Profile] = None,
    pre: bool = False,
    verify: bool = True,
) -> ABCDReport:
    """Run the ABCD optimizer over every function of ``program``.

    ``pre=True`` is a convenience that flips the config flag (a profile
    must then be supplied).
    """
    if config is None:
        config = ABCDConfig()
    if pre:
        config.pre = True
    if config.pre and profile is None:
        raise ValueError("PRE requires a profile (pass profile=...)")
    report = optimize_program(program, config, profile)
    if verify:
        verify_program(program)
    return report


def run(
    program: Program,
    function_name: str = "main",
    args: Sequence = (),
    fuel: int = 50_000_000,
) -> ExecutionResult:
    """Execute a compiled (possibly optimized) program."""
    return run_program(program, function_name, args, fuel=fuel)
