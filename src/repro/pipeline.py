"""The public pipeline facade: source → e-SSA IR → ABCD → execution.

Typical use::

    from repro import pipeline

    program = pipeline.compile_source(source)
    profile = pipeline.profile(program, "main")
    report = pipeline.abcd(program, pre=True, profile=profile)
    result = pipeline.run(program, "main")

``compile_source`` produces a :class:`~repro.ir.function.Program` whose
functions are in e-SSA form with the standard pre-pass suite applied —
the state in which a dynamic compiler would hand code to ABCD.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.abcd import ABCDConfig, ABCDReport
from repro.ir.function import Program
from repro.ir.verifier import verify_program
from repro.runtime.interpreter import ExecutionResult, run_program
from repro.runtime.profiler import Profile, collect_profile


def compile_source(
    source: str,
    standard_opts: bool = True,
    verify: bool = True,
    inline: bool = False,
    guard: Optional["PassGuard"] = None,
    strict: bool = False,
    session: Optional["CompilationSession"] = None,
) -> Program:
    """Compile MiniJ source to an e-SSA program ready for ABCD.

    ``inline=True`` runs bounded function inlining before e-SSA
    construction — the interprocedural extension the paper lists as
    future infrastructure work (callee array parameters then resolve to
    caller allocations, exposing their length facts to ABCD).

    Compilation runs through a :class:`~repro.passes.session.
    CompilationSession`: every transforming pass is registered in
    :mod:`repro.passes.registry` and driven by the pass manager under the
    uniform guard protocol — a pass that raises or emits malformed IR is
    rolled back and compilation continues with the unoptimized-but-correct
    function.  Pass a :class:`PassGuard` to collect the failure telemetry,
    ``strict=True`` to turn rollbacks into hard errors, or an explicit
    ``session`` to share its analysis cache and stats with a later
    ``session.optimize`` call.
    """
    from repro.passes.session import CompilationSession

    if session is None:
        session = CompilationSession(guard=guard, strict=strict)
    return session.compile(
        source, standard_opts=standard_opts, verify=verify, inline=inline
    )


def clone_program(program: Program) -> Program:
    """A structural copy, for unoptimized/optimized differential
    comparisons and guard snapshots (see :meth:`Program.clone`)."""
    return program.clone()


def profile(
    program: Program,
    function_name: str = "main",
    args: Sequence = (),
    fuel: int = 50_000_000,
) -> Profile:
    """Collect a training-run profile (block/edge/check frequencies)."""
    return collect_profile(program, function_name, args, fuel)


def abcd(
    program: Program,
    config: Optional[ABCDConfig] = None,
    profile: Optional[Profile] = None,
    pre: bool = False,
    verify: bool = True,
    strict: bool = False,
) -> ABCDReport:
    """Run the ABCD optimizer over every function of ``program``.

    ``pre=True`` is a convenience that flips the config flag (a profile
    must then be supplied).

    Each function is optimized inside a pass guard: if ABCD raises or
    produces IR that fails verification, that function rolls back to its
    unoptimized (checked, correct) form and the failure is recorded in
    ``report.pass_failures`` — the pipeline itself never crashes.  With
    ``strict=True`` (or ``config.strict``) such rollbacks raise
    :class:`~repro.errors.PassGuardError` instead.
    """
    from repro.robustness.guard import guarded_optimize_program

    if config is None:
        config = ABCDConfig()
    if pre:
        config.pre = True
    if strict:
        config.strict = True
    if config.pre and profile is None:
        raise ValueError("PRE requires a profile (pass profile=...)")
    report = guarded_optimize_program(program, config, profile)
    if verify:
        verify_program(program)
    return report


def run(
    program: Program,
    function_name: str = "main",
    args: Sequence = (),
    fuel: int = 50_000_000,
) -> ExecutionResult:
    """Execute a compiled (possibly optimized) program."""
    return run_program(program, function_name, args, fuel=fuel)
