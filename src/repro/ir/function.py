"""Basic blocks, functions, and programs.

A :class:`Function` is a control-flow graph of :class:`BasicBlock`\\ s.
Each block keeps its φ-instructions separately from its straight-line body
(standard for SSA-era IRs) and always ends in exactly one terminator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

from repro.frontend.types import Type
from repro.ir.instructions import Branch, Instr, Jump, Phi, Return

if TYPE_CHECKING:
    from repro.ir.defuse import DefUseChains


class BasicBlock:
    """A labelled basic block: ``phis`` then ``body`` then ``terminator``."""

    def __init__(self, label: str) -> None:
        self.label = label
        self.phis: List[Phi] = []
        self.body: List[Instr] = []
        self.terminator: Optional[Instr] = None

    def successors(self) -> List[str]:
        """Labels of CFG successors, in terminator order."""
        term = self.terminator
        if isinstance(term, Jump):
            return [term.target]
        if isinstance(term, Branch):
            return [term.true_target, term.false_target]
        return []

    def instructions(self) -> Iterator[Instr]:
        """All instructions in execution order (φs, body, terminator)."""
        yield from self.phis
        yield from self.body
        if self.terminator is not None:
            yield self.terminator

    def replace_successor(self, old: str, new: str) -> None:
        """Retarget this block's terminator from ``old`` to ``new``."""
        term = self.terminator
        if isinstance(term, Jump):
            if term.target == old:
                term.target = new
        elif isinstance(term, Branch):
            if term.true_target == old:
                term.true_target = new
            if term.false_target == old:
                term.false_target = new

    def clone(self) -> "BasicBlock":
        """Structural copy: fresh instruction objects, shared operands."""
        block = BasicBlock(self.label)
        block.phis = [phi.clone() for phi in self.phis]
        block.body = [instr.clone() for instr in self.body]
        if self.terminator is not None:
            block.terminator = self.terminator.clone()
        return block

    def __repr__(self) -> str:
        return f"BasicBlock({self.label!r}, {len(self.body)} instrs)"


class Function:
    """A MiniJ function lowered to a CFG.

    ``param_types`` and ``return_type`` carry frontend types through the IR
    so the interpreter can validate call sites.  ``ssa_form`` records which
    representation the function currently uses (``"none"``, ``"ssa"``, or
    ``"essa"``) so passes can assert their preconditions.
    """

    def __init__(
        self,
        name: str,
        params: List[str],
        param_types: List[Type],
        return_type: Type,
    ) -> None:
        self.name = name
        self.params = params
        self.param_types = param_types
        self.return_type = return_type
        self.blocks: Dict[str, BasicBlock] = {}
        self.entry: str = ""
        self.ssa_form: str = "none"
        self._next_label = 0
        self._next_temp = 0
        #: Lazily built def-use index (see :mod:`repro.ir.defuse`).
        self._defuse: Optional["DefUseChains"] = None

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------

    def new_block(self, hint: str = "bb") -> BasicBlock:
        """Create a fresh, uniquely labelled block and register it."""
        label = f"{hint}{self._next_label}"
        self._next_label += 1
        block = BasicBlock(label)
        self.blocks[label] = block
        return block

    def add_block(self, block: BasicBlock) -> BasicBlock:
        """Register an externally created block (label must be unique)."""
        if block.label in self.blocks:
            raise ValueError(f"duplicate block label {block.label!r}")
        self.blocks[block.label] = block
        return block

    def new_temp(self, hint: str = "t") -> str:
        """Return a fresh temporary variable name."""
        name = f"%{hint}{self._next_temp}"
        self._next_temp += 1
        return name

    # ------------------------------------------------------------------
    # Def-use chains.
    # ------------------------------------------------------------------

    def def_use(self) -> "DefUseChains":
        """The function's def-use index, built lazily and kept current by
        the mutator methods below.  Passes that mutate the IR without
        going through those mutators must call :meth:`invalidate_def_use`
        first (debug mode verifies this after every pass)."""
        if self._defuse is None:
            from repro.ir.defuse import DefUseChains

            self._defuse = DefUseChains.build(self)
        return self._defuse

    def has_def_use(self) -> bool:
        """Whether a def-use index is currently materialized."""
        return self._defuse is not None

    def invalidate_def_use(self) -> None:
        """Drop the def-use index (the next :meth:`def_use` rebuilds)."""
        self._defuse = None

    def rebuild_def_use(self) -> "DefUseChains":
        """Force a fresh build of the def-use index and return it."""
        self._defuse = None
        return self.def_use()

    # ------------------------------------------------------------------
    # Chain-maintaining mutators.
    #
    # Each of these performs the structural edit *and* keeps the def-use
    # index in sync when one is materialized.  They are the only supported
    # way to edit an indexed function in place.
    # ------------------------------------------------------------------

    def insert_instr(self, label: str, index: int, instr: Instr) -> None:
        """Insert ``instr`` into the body of ``label`` at ``index``."""
        self.blocks[label].body.insert(index, instr)
        if self._defuse is not None:
            self._defuse.register(instr, label)

    def append_instr(self, label: str, instr: Instr) -> None:
        """Append ``instr`` to the body of ``label``."""
        self.blocks[label].body.append(instr)
        if self._defuse is not None:
            self._defuse.register(instr, label)

    def remove_instr(self, label: str, instr: Instr) -> None:
        """Remove ``instr`` (identity match) from the body of ``label``."""
        body = self.blocks[label].body
        for position in range(len(body)):
            if body[position] is instr:
                del body[position]
                break
        else:
            raise ValueError(f"{self.name}/{label}: {instr} not in body")
        if self._defuse is not None:
            self._defuse.unregister(instr)

    def replace_instr(self, label: str, old: Instr, new: Instr) -> None:
        """Swap ``old`` for ``new`` at the same body position."""
        body = self.blocks[label].body
        for position in range(len(body)):
            if body[position] is old:
                body[position] = new
                break
        else:
            raise ValueError(f"{self.name}/{label}: {old} not in body")
        if self._defuse is not None:
            self._defuse.unregister(old)
            self._defuse.register(new, label)

    def add_phi(self, label: str, phi: Phi) -> None:
        """Append a φ to the head of ``label``."""
        self.blocks[label].phis.append(phi)
        if self._defuse is not None:
            self._defuse.register(phi, label)

    def remove_phi(self, label: str, phi: Phi) -> None:
        """Remove a φ (identity match) from the head of ``label``."""
        phis = self.blocks[label].phis
        for position in range(len(phis)):
            if phis[position] is phi:
                del phis[position]
                break
        else:
            raise ValueError(f"{self.name}/{label}: {phi} not in phis")
        if self._defuse is not None:
            self._defuse.unregister(phi)

    def set_terminator(self, label: str, instr: Instr) -> None:
        """Replace the terminator of ``label`` (``instr`` may be None)."""
        block = self.blocks[label]
        if self._defuse is not None and block.terminator is not None:
            self._defuse.unregister(block.terminator)
        block.terminator = instr
        if self._defuse is not None and instr is not None:
            self._defuse.register(instr, label)

    # ------------------------------------------------------------------
    # CFG queries.
    # ------------------------------------------------------------------

    def block(self, label: str) -> BasicBlock:
        return self.blocks[label]

    def entry_block(self) -> BasicBlock:
        return self.blocks[self.entry]

    def predecessors(self) -> Dict[str, List[str]]:
        """Map each block label to the labels of its CFG predecessors."""
        preds: Dict[str, List[str]] = {label: [] for label in self.blocks}
        for label, block in self.blocks.items():
            for succ in block.successors():
                preds[succ].append(label)
        return preds

    def reachable_blocks(self) -> List[str]:
        """Labels reachable from the entry, in reverse postorder."""
        visited = set()
        order: List[str] = []

        def visit(label: str) -> None:
            if label in visited:
                return
            visited.add(label)
            for succ in self.blocks[label].successors():
                visit(succ)
            order.append(label)

        # Iterative version to avoid deep recursion on long CFG chains.
        visited.clear()
        order.clear()
        stack: List[tuple] = [(self.entry, iter(self.blocks[self.entry].successors()))]
        visited.add(self.entry)
        while stack:
            label, succ_iter = stack[-1]
            advanced = False
            for succ in succ_iter:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(self.blocks[succ].successors())))
                    advanced = True
                    break
            if not advanced:
                order.append(label)
                stack.pop()
        order.reverse()
        return order

    def remove_unreachable_blocks(self) -> List[str]:
        """Drop blocks not reachable from the entry; returns removed labels.

        φ-operands flowing from removed predecessors are pruned as well.
        """
        reachable = set(self.reachable_blocks())
        removed = [label for label in self.blocks if label not in reachable]
        for label in removed:
            block = self.blocks.pop(label)
            if self._defuse is not None:
                for instr in block.instructions():
                    self._defuse.unregister(instr)
        if removed:
            gone = set(removed)
            for block in self.blocks.values():
                for phi in block.phis:
                    if not gone & set(phi.incomings):
                        continue

                    def prune(phi=phi):
                        phi.incomings = {
                            pred: op
                            for pred, op in phi.incomings.items()
                            if pred not in gone
                        }

                    if self._defuse is not None:
                        self._defuse.update_uses(phi, prune)
                    else:
                        prune()
        return removed

    def all_instructions(self) -> Iterator[Instr]:
        """Iterate over every instruction of every block."""
        for block in self.blocks.values():
            yield from block.instructions()

    def variables(self) -> List[str]:
        """All variable names defined or used anywhere in the function."""
        names = set(self.params)
        for instr in self.all_instructions():
            names.update(instr.used_vars())
            dest = instr.defs()
            if dest is not None:
                names.add(dest)
        return sorted(names)

    def checks(self) -> List[Instr]:
        """All bounds-check instructions, in block order."""
        from repro.ir.instructions import CheckLower, CheckUpper

        found = []
        for label in self.reachable_blocks():
            for instr in self.blocks[label].instructions():
                if isinstance(instr, (CheckLower, CheckUpper)):
                    found.append(instr)
        return found

    def clone(self) -> "Function":
        """Structural copy of the whole CFG.

        Replaces ``copy.deepcopy`` for guard snapshots and program
        cloning: instruction objects are duplicated, immutable pieces
        (types, operand objects, label strings) are shared.
        """
        fn = Function(self.name, list(self.params), list(self.param_types), self.return_type)
        fn.entry = self.entry
        fn.ssa_form = self.ssa_form
        fn._next_label = self._next_label
        fn._next_temp = self._next_temp
        fn.blocks = {label: block.clone() for label, block in self.blocks.items()}
        return fn

    def __repr__(self) -> str:
        return f"Function({self.name!r}, {len(self.blocks)} blocks)"


class Program:
    """A compiled MiniJ program: a set of functions plus global counters."""

    def __init__(self) -> None:
        self.functions: Dict[str, Function] = {}
        self._next_check_id = 0
        self._next_guard_group = 0

    def add_function(self, fn: Function) -> None:
        if fn.name in self.functions:
            raise ValueError(f"duplicate function {fn.name!r}")
        self.functions[fn.name] = fn

    def function(self, name: str) -> Function:
        return self.functions[name]

    def new_check_id(self) -> int:
        check_id = self._next_check_id
        self._next_check_id += 1
        return check_id

    def new_guard_group(self) -> int:
        group = self._next_guard_group
        self._next_guard_group += 1
        return group

    def all_checks(self) -> List[Instr]:
        """Every bounds check in the program, grouped by function order."""
        found = []
        for fn in self.functions.values():
            found.extend(fn.checks())
        return found

    def clone(self) -> "Program":
        """Structural copy of every function plus the global counters."""
        program = Program()
        program.functions = {name: fn.clone() for name, fn in self.functions.items()}
        program._next_check_id = self._next_check_id
        program._next_guard_group = self._next_guard_group
        return program

    def __repr__(self) -> str:
        return f"Program({sorted(self.functions)})"
