"""Graphviz (dot) export for CFGs and, later, inequality graphs.

Useful for inspecting the running example: ``examples/bubblesort_walkthrough``
writes both the CFG and the inequality graph of the paper's Figure 4.
"""

from __future__ import annotations

from typing import List

from repro.ir.function import Function


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def cfg_to_dot(fn: Function) -> str:
    """Render the function's CFG as a dot digraph with instruction bodies."""
    lines: List[str] = [f'digraph "{_escape(fn.name)}" {{', "  node [shape=box, fontname=monospace];"]
    for label in fn.reachable_blocks():
        block = fn.blocks[label]
        body = "\\l".join(_escape(str(instr)) for instr in block.instructions())
        lines.append(f'  "{label}" [label="{label}:\\l{body}\\l"];')
        term = block.terminator
        successors = block.successors()
        if len(successors) == 2:
            lines.append(f'  "{label}" -> "{successors[0]}" [label="T"];')
            lines.append(f'  "{label}" -> "{successors[1]}" [label="F"];')
        else:
            for succ in successors:
                lines.append(f'  "{label}" -> "{succ}";')
        del term
    lines.append("}")
    return "\n".join(lines)
