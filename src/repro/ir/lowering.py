"""Lowering from MiniJ ASTs to the three-address CFG IR.

The lowering makes every array access's bounds checks explicit: an access
``a[i]`` becomes::

    checklower #k  i          ; raises unless i >= 0
    checkupper #k' a[i]       ; raises unless i < len(a)
    t := load a[i]            ; (or store)

These check instructions carry program-unique ids and are exactly what the
ABCD optimizer later removes.  Other notable lowering decisions:

* ``for`` loops desugar to ``while`` loops (``continue`` jumps to the step);
* short-circuit ``&&``/``||`` lower to control flow, and when they appear in
  branch position they lower *directly* into the CFG so that comparisons
  feed branches — the shape the π-insertion (e-SSA) pass needs for
  constraint class C4;
* constant array indices are materialized into temporaries so every check's
  index is a variable, giving the inequality graph a vertex to work with;
* booleans are 0/1 integers in the IR.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import LoweringError, NestingLimitError
from repro.frontend import ast
from repro.frontend.semantic import SemanticInfo
from repro.frontend.types import VOID
from repro.ir.function import BasicBlock, Function, Program
from repro.ir.instructions import (
    ArrayLen,
    ArrayLoad,
    ArrayNew,
    ArrayStore,
    BinOp,
    Branch,
    Call,
    CheckLower,
    CheckUpper,
    Cmp,
    Const,
    Copy,
    Instr,
    Jump,
    Operand,
    Return,
    Var,
)

_BINOP_OPCODES = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod"}
_CMP_OPCODES = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge", "==": "eq", "!=": "ne"}


class _FunctionLowerer:
    """Lowers one function declaration into a :class:`Function`."""

    def __init__(self, decl: ast.FunctionDecl, info: SemanticInfo, program: Program) -> None:
        self._decl = decl
        self._info = info
        self._program = program
        self.fn = Function(
            decl.name,
            [p.name for p in decl.params],
            [p.type for p in decl.params],
            decl.return_type,
        )
        self._current: Optional[BasicBlock] = None
        # Stack of (continue_target, break_target) for enclosing loops.
        self._loop_targets: List[Tuple[str, str]] = []

    # ------------------------------------------------------------------
    # Emission helpers.
    # ------------------------------------------------------------------

    def _emit(self, instr: Instr) -> None:
        assert self._current is not None, "emitting with no open block"
        assert self._current.terminator is None, "emitting into terminated block"
        self._current.body.append(instr)

    def _terminate(self, instr: Instr) -> None:
        assert self._current is not None
        assert self._current.terminator is None
        self._current.terminator = instr

    def _start_block(self, block: BasicBlock) -> None:
        self._current = block

    def _open(self) -> bool:
        """Is the current block still accepting instructions?"""
        return self._current is not None and self._current.terminator is None

    def _as_var(self, operand: Operand, hint: str = "t") -> str:
        """Force an operand into a variable, copying a constant if needed."""
        if isinstance(operand, Var):
            return operand.name
        temp = self.fn.new_temp(hint)
        self._emit(Copy(temp, operand))
        return temp

    # ------------------------------------------------------------------
    # Function body.
    # ------------------------------------------------------------------

    def lower(self) -> Function:
        entry = self.fn.new_block("entry")
        self.fn.entry = entry.label
        self._start_block(entry)
        self._lower_block(self._decl.body)
        if self._open():
            if self._decl.return_type is VOID:
                self._terminate(Return(None))
            else:
                # The type checker guarantees this block is unreachable on
                # any real execution; give it a terminator anyway so the IR
                # stays well-formed.
                self._terminate(Return(Const(0)))
        self.fn.remove_unreachable_blocks()
        # Build the def-use index once, here at the IR's birth; from now
        # on it is maintained incrementally by the Function mutator API
        # (and rebuilt by the few passes that rename wholesale).
        self.fn.rebuild_def_use()
        return self.fn

    def _lower_block(self, statements: List[ast.Stmt]) -> None:
        for stmt in statements:
            if not self._open():
                # Code after return/break/continue is unreachable; lower it
                # into a detached block that the cleanup pass removes.
                dead = self.fn.new_block("dead")
                self._start_block(dead)
            self._lower_statement(stmt)

    # ------------------------------------------------------------------
    # Statements.
    # ------------------------------------------------------------------

    def _lower_statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.LetStmt):
            value = self._lower_expr(stmt.value)
            self._emit(Copy(stmt.name, value))
        elif isinstance(stmt, ast.AssignStmt):
            value = self._lower_expr(stmt.value)
            self._emit(Copy(stmt.name, value))
        elif isinstance(stmt, ast.ArrayStoreStmt):
            array = self._as_var(self._lower_expr(stmt.array), "arr")
            index = self._lower_index(stmt.index)
            value = self._lower_expr(stmt.value)
            self._emit_checks(array, index)
            self._emit(ArrayStore(array, index, value))
        elif isinstance(stmt, ast.IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            value = None if stmt.value is None else self._lower_expr(stmt.value)
            self._terminate(Return(value))
        elif isinstance(stmt, ast.BreakStmt):
            if not self._loop_targets:
                raise LoweringError("'break' outside loop", stmt.location)
            self._terminate(Jump(self._loop_targets[-1][1]))
        elif isinstance(stmt, ast.ContinueStmt):
            if not self._loop_targets:
                raise LoweringError("'continue' outside loop", stmt.location)
            self._terminate(Jump(self._loop_targets[-1][0]))
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expr(stmt.expr, result_used=False)
        else:  # pragma: no cover - exhaustive over AST statements
            raise LoweringError(f"cannot lower {type(stmt).__name__}", stmt.location)

    def _lower_if(self, stmt: ast.IfStmt) -> None:
        then_block = self.fn.new_block("then")
        join_block = self.fn.new_block("join")
        else_block = self.fn.new_block("else") if stmt.else_body else join_block

        self._lower_condition(stmt.condition, then_block.label, else_block.label)

        self._start_block(then_block)
        self._lower_block(stmt.then_body)
        if self._open():
            self._terminate(Jump(join_block.label))

        if stmt.else_body:
            self._start_block(else_block)
            self._lower_block(stmt.else_body)
            if self._open():
                self._terminate(Jump(join_block.label))

        self._start_block(join_block)

    def _lower_while(self, stmt: ast.WhileStmt) -> None:
        header = self.fn.new_block("while")
        body = self.fn.new_block("body")
        exit_block = self.fn.new_block("exit")

        self._terminate(Jump(header.label))
        self._start_block(header)
        self._lower_condition(stmt.condition, body.label, exit_block.label)

        self._loop_targets.append((header.label, exit_block.label))
        self._start_block(body)
        self._lower_block(stmt.body)
        if self._open():
            self._terminate(Jump(header.label))
        self._loop_targets.pop()

        self._start_block(exit_block)

    def _lower_for(self, stmt: ast.ForStmt) -> None:
        if stmt.init is not None:
            self._lower_statement(stmt.init)

        header = self.fn.new_block("for")
        body = self.fn.new_block("body")
        step = self.fn.new_block("step")
        exit_block = self.fn.new_block("exit")

        self._terminate(Jump(header.label))
        self._start_block(header)
        if stmt.condition is not None:
            self._lower_condition(stmt.condition, body.label, exit_block.label)
        else:
            self._terminate(Jump(body.label))

        self._loop_targets.append((step.label, exit_block.label))
        self._start_block(body)
        self._lower_block(stmt.body)
        if self._open():
            self._terminate(Jump(step.label))
        self._loop_targets.pop()

        self._start_block(step)
        if stmt.step is not None:
            self._lower_statement(stmt.step)
        if self._open():
            self._terminate(Jump(header.label))

        self._start_block(exit_block)

    # ------------------------------------------------------------------
    # Conditions (branch position).
    # ------------------------------------------------------------------

    def _lower_condition(self, expr: ast.Expr, true_label: str, false_label: str) -> None:
        """Lower a boolean expression directly into control flow.

        Comparisons become ``Cmp`` + ``Branch`` pairs, which is the pattern
        the e-SSA pass recognizes for C4 π-insertion.
        """
        if isinstance(expr, ast.BoolLiteral):
            self._terminate(Jump(true_label if expr.value else false_label))
            return
        if isinstance(expr, ast.UnaryOp) and expr.op == "!":
            self._lower_condition(expr.operand, false_label, true_label)
            return
        if isinstance(expr, ast.BinaryOp) and expr.op == "&&":
            mid = self.fn.new_block("and")
            self._lower_condition(expr.lhs, mid.label, false_label)
            self._start_block(mid)
            self._lower_condition(expr.rhs, true_label, false_label)
            return
        if isinstance(expr, ast.BinaryOp) and expr.op == "||":
            mid = self.fn.new_block("or")
            self._lower_condition(expr.lhs, true_label, mid.label)
            self._start_block(mid)
            self._lower_condition(expr.rhs, true_label, false_label)
            return
        if isinstance(expr, ast.BinaryOp) and expr.op in _CMP_OPCODES:
            lhs = self._lower_expr(expr.lhs)
            rhs = self._lower_expr(expr.rhs)
            temp = self.fn.new_temp("c")
            self._emit(Cmp(temp, _CMP_OPCODES[expr.op], lhs, rhs))
            self._terminate(Branch(Var(temp), true_label, false_label))
            return
        # Generic boolean value (variable, call, ...): branch on it directly.
        cond = self._lower_expr(expr)
        self._terminate(Branch(cond, true_label, false_label))

    # ------------------------------------------------------------------
    # Expressions (value position).
    # ------------------------------------------------------------------

    def _lower_expr(self, expr: ast.Expr, result_used: bool = True) -> Operand:
        if isinstance(expr, ast.IntLiteral):
            return Const(expr.value)
        if isinstance(expr, ast.BoolLiteral):
            return Const(1 if expr.value else 0)
        if isinstance(expr, ast.VarRef):
            return Var(expr.name)
        if isinstance(expr, ast.UnaryOp):
            return self._lower_unary(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._lower_binary(expr)
        if isinstance(expr, ast.ArrayIndex):
            array = self._as_var(self._lower_expr(expr.array), "arr")
            index = self._lower_index(expr.index)
            self._emit_checks(array, index)
            dest = self.fn.new_temp("v")
            self._emit(ArrayLoad(dest, array, index))
            return Var(dest)
        if isinstance(expr, ast.ArrayLength):
            array = self._as_var(self._lower_expr(expr.array), "arr")
            dest = self.fn.new_temp("n")
            self._emit(ArrayLen(dest, array))
            return Var(dest)
        if isinstance(expr, ast.NewArray):
            length = self._lower_expr(expr.length)
            dest = self.fn.new_temp("a")
            self._emit(ArrayNew(dest, length))
            return Var(dest)
        if isinstance(expr, ast.Call):
            args = [self._lower_expr(arg) for arg in expr.args]
            signature = self._info.signatures[expr.callee]
            if signature.return_type is VOID:
                self._emit(Call(None, expr.callee, args))
                return Const(0)
            dest = self.fn.new_temp("r") if result_used else None
            self._emit(Call(dest, expr.callee, args))
            return Var(dest) if dest is not None else Const(0)
        raise LoweringError(  # pragma: no cover - exhaustive over AST
            f"cannot lower {type(expr).__name__}", expr.location
        )

    def _lower_unary(self, expr: ast.UnaryOp) -> Operand:
        operand = self._lower_expr(expr.operand)
        dest = self.fn.new_temp("u")
        if expr.op == "-":
            # Fold negation of literals so ``-1`` is a plain constant.
            if isinstance(operand, Const):
                return Const(-operand.value)
            self._emit(BinOp(dest, "sub", Const(0), operand))
        elif expr.op == "!":
            self._emit(Cmp(dest, "eq", operand, Const(0)))
        else:  # pragma: no cover - parser restricts unary ops
            raise LoweringError(f"unknown unary {expr.op!r}", expr.location)
        return Var(dest)

    def _lower_binary(self, expr: ast.BinaryOp) -> Operand:
        if expr.op in ("&&", "||"):
            return self._lower_short_circuit(expr)
        lhs = self._lower_expr(expr.lhs)
        rhs = self._lower_expr(expr.rhs)
        dest = self.fn.new_temp("t")
        if expr.op in _BINOP_OPCODES:
            self._emit(BinOp(dest, _BINOP_OPCODES[expr.op], lhs, rhs))
        elif expr.op in _CMP_OPCODES:
            self._emit(Cmp(dest, _CMP_OPCODES[expr.op], lhs, rhs))
        else:  # pragma: no cover - parser restricts binary ops
            raise LoweringError(f"unknown operator {expr.op!r}", expr.location)
        return Var(dest)

    def _lower_short_circuit(self, expr: ast.BinaryOp) -> Operand:
        """Lower ``&&`` / ``||`` in value position via control flow into a
        temporary (merged by SSA construction later)."""
        result = self.fn.new_temp("b")
        rhs_block = self.fn.new_block("sc")
        join_block = self.fn.new_block("scjoin")

        if expr.op == "&&":
            self._emit(Copy(result, Const(0)))
            self._lower_condition(expr.lhs, rhs_block.label, join_block.label)
        else:
            self._emit(Copy(result, Const(1)))
            self._lower_condition(expr.lhs, join_block.label, rhs_block.label)

        self._start_block(rhs_block)
        rhs_value = self._lower_expr(expr.rhs)
        self._emit(Copy(result, rhs_value))
        self._terminate(Jump(join_block.label))

        self._start_block(join_block)
        return Var(result)

    # ------------------------------------------------------------------
    # Array access checks.
    # ------------------------------------------------------------------

    def _lower_index(self, expr: ast.Expr) -> Operand:
        """Lower an index expression, materializing constants into temps so
        the checks always guard a *variable* (a vertex in the inequality
        graph)."""
        operand = self._lower_expr(expr)
        if isinstance(operand, Const):
            temp = self.fn.new_temp("i")
            self._emit(Copy(temp, operand))
            return Var(temp)
        return operand

    def _emit_checks(self, array: str, index: Operand) -> None:
        self._emit(CheckLower(index, self._program.new_check_id()))
        self._emit(CheckUpper(array, index, self._program.new_check_id()))


def lower_program(program_ast: ast.ProgramAST, info: SemanticInfo) -> Program:
    """Lower a type-checked AST into an IR :class:`Program`.

    The expression walk recurses per nesting level; exhausting the host
    stack is reported as :class:`~repro.errors.NestingLimitError` rather
    than leaking a raw :class:`RecursionError` past the compile boundary.
    """
    program = Program()
    try:
        for decl in program_ast.functions:
            lowerer = _FunctionLowerer(decl, info, program)
            program.add_function(lowerer.lower())
    except RecursionError:
        raise NestingLimitError(
            "program nesting exceeds the lowering walk's recursion budget"
        ) from None
    return program
