"""IR well-formedness and SSA-invariant verifier.

Run after construction and after every transformation in tests; it enforces:

* structural invariants — every block has exactly one terminator, all jump
  targets exist, the entry block exists and has no φs;
* φ invariants — in SSA form, each φ has one incoming operand per CFG
  predecessor, and φs only appear at block heads;
* SSA invariants — each variable has at most one definition, and every use
  is dominated by its definition (φ uses are checked at the end of the
  corresponding predecessor);
* e-SSA invariants — every π's predicate mentions only visible values.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.errors import IRVerificationError
from repro.ir.function import Function, Program
from repro.ir.instructions import Phi, Pi, Var


def verify_function(fn: Function) -> None:
    """Raise :class:`IRVerificationError` on the first violated invariant."""
    _verify_structure(fn)
    if fn.ssa_form in ("ssa", "essa"):
        _verify_ssa(fn)


def verify_program(program: Program) -> None:
    for fn in program.functions.values():
        verify_function(fn)


def verify_def_use(fn: Function, context: str = "") -> None:
    """Check the materialized def-use index against the actual IR.

    Enforces (debug mode, after every pass):

    * no dangling uses — every indexed instruction is still in the
      function, in the block the index says;
    * no stale entries — every instruction in the function is indexed,
      and each name's def list / use-occurrence list matches a fresh
      rebuild;
    * def dominates use — for (e-)SSA functions, every recorded use of a
      name is dominated by its recorded definition (φ uses checked at the
      end of the corresponding predecessor, as in :func:`verify_function`).

    A function without a materialized index passes trivially (nothing to
    be out of sync).  Raises the
    :class:`~repro.errors.DefUseIntegrityError` member of the
    ``AnalysisInvalidationError`` family.
    """
    if not fn.has_def_use():
        return
    chains = fn.def_use()
    chains.assert_consistent(context)
    if fn.ssa_form in ("ssa", "essa"):
        _verify_chain_dominance(fn, chains, context)


def _verify_chain_dominance(fn: Function, chains, context: str) -> None:
    from repro.analysis.dominance import DominatorTree
    from repro.errors import DefUseIntegrityError

    where = f" after {context}" if context else ""
    domtree = DominatorTree.compute(fn)
    reachable = set(fn.reachable_blocks())
    positions: Dict[int, int] = {}
    for label in reachable:
        for position, instr in enumerate(fn.blocks[label].instructions()):
            positions[id(instr)] = position
    for name, info in chains.values.items():
        def_instr = info.def_instr
        if def_instr is None:
            continue
        def_label = chains.block_of(def_instr)
        if def_label not in reachable:
            continue
        for user in info.uses:
            use_label = chains.block_of(user)
            if use_label not in reachable:
                continue
            if isinstance(user, Phi):
                # A φ use is live at the end of the predecessor block(s)
                # that route this name in.
                for pred, operand in user.incomings.items():
                    if not (isinstance(operand, Var) and operand.name == name):
                        continue
                    if pred not in reachable:
                        continue
                    if def_label != pred and not domtree.dominates(def_label, pred):
                        raise DefUseIntegrityError(
                            f"{fn.name}: φ use of {name!r} from {pred!r} not "
                            f"dominated by its definition in {def_label!r}"
                            f"{where}"
                        )
                continue
            if use_label == def_label:
                if positions[id(def_instr)] >= positions[id(user)]:
                    raise DefUseIntegrityError(
                        f"{fn.name}/{use_label}: {name!r} used before its "
                        f"definition{where}"
                    )
            elif not domtree.dominates(def_label, use_label):
                raise DefUseIntegrityError(
                    f"{fn.name}/{use_label}: use of {name!r} not dominated "
                    f"by its definition in {def_label!r}{where}"
                )


# ----------------------------------------------------------------------
# Structure.
# ----------------------------------------------------------------------


def _verify_structure(fn: Function) -> None:
    if fn.entry not in fn.blocks:
        raise IRVerificationError(f"{fn.name}: entry block {fn.entry!r} missing")
    # Successor targets must exist before any predecessor/reachability
    # computation can be trusted.
    for label, block in fn.blocks.items():
        for succ in block.successors():
            if succ not in fn.blocks:
                raise IRVerificationError(
                    f"{fn.name}/{label}: jump to unknown block {succ!r}"
                )
    preds = fn.predecessors()
    for label, block in fn.blocks.items():
        if block.label != label:
            raise IRVerificationError(
                f"{fn.name}: block registered as {label!r} is labelled "
                f"{block.label!r}"
            )
        if block.terminator is None:
            raise IRVerificationError(f"{fn.name}/{label}: missing terminator")
        if not block.terminator.is_terminator:
            raise IRVerificationError(
                f"{fn.name}/{label}: terminator slot holds non-terminator "
                f"{block.terminator}"
            )
        for instr in block.body:
            if instr.is_terminator:
                raise IRVerificationError(
                    f"{fn.name}/{label}: terminator {instr} in block body"
                )
            if isinstance(instr, Phi):
                raise IRVerificationError(
                    f"{fn.name}/{label}: φ {instr} outside the block head"
                )
        for succ in block.successors():
            if succ not in fn.blocks:
                raise IRVerificationError(
                    f"{fn.name}/{label}: jump to unknown block {succ!r}"
                )
        for phi in block.phis:
            incoming = set(phi.incomings)
            expected = set(preds[label])
            if fn.ssa_form in ("ssa", "essa") and incoming != expected:
                raise IRVerificationError(
                    f"{fn.name}/{label}: φ {phi.dest} has incoming "
                    f"{sorted(incoming)} but predecessors are {sorted(expected)}"
                )
    entry_block = fn.blocks[fn.entry]
    if entry_block.phis:
        raise IRVerificationError(f"{fn.name}: entry block has φ instructions")
    if preds[fn.entry]:
        raise IRVerificationError(
            f"{fn.name}: entry block has predecessors {preds[fn.entry]}"
        )


# ----------------------------------------------------------------------
# SSA.
# ----------------------------------------------------------------------


def _verify_ssa(fn: Function) -> None:
    from repro.analysis.dominance import DominatorTree

    definitions: Dict[str, str] = {}  # var -> defining block label
    for param in fn.params:
        definitions[param] = fn.entry
    for label in fn.reachable_blocks():
        for instr in fn.blocks[label].instructions():
            dest = instr.defs()
            if dest is None:
                continue
            if dest in definitions:
                raise IRVerificationError(
                    f"{fn.name}: variable {dest!r} defined more than once"
                )
            definitions[dest] = label

    domtree = DominatorTree.compute(fn)

    # Position of each definition within its block for intra-block ordering.
    def_positions: Dict[str, int] = {}
    for label in fn.reachable_blocks():
        for position, instr in enumerate(fn.blocks[label].instructions()):
            dest = instr.defs()
            if dest is not None:
                def_positions[dest] = position
    for param in fn.params:
        def_positions[param] = -1

    for label in fn.reachable_blocks():
        block = fn.blocks[label]
        for position, instr in enumerate(block.instructions()):
            if isinstance(instr, Phi):
                for pred_label, operand in instr.incomings.items():
                    if isinstance(operand, Var):
                        _check_reaches_block_end(
                            fn, domtree, definitions, operand.name, pred_label
                        )
                continue
            for name in instr.used_vars():
                def_label = definitions.get(name)
                if def_label is None:
                    raise IRVerificationError(
                        f"{fn.name}/{label}: use of undefined variable {name!r} "
                        f"in {instr}"
                    )
                if def_label == label:
                    if def_positions[name] >= position:
                        raise IRVerificationError(
                            f"{fn.name}/{label}: {name!r} used before its "
                            f"definition in {instr}"
                        )
                elif not domtree.dominates(def_label, label):
                    raise IRVerificationError(
                        f"{fn.name}/{label}: use of {name!r} not dominated by "
                        f"its definition in {def_label!r}"
                    )

    if fn.ssa_form == "essa":
        _verify_pis(fn, definitions)


def _check_reaches_block_end(
    fn: Function,
    domtree,
    definitions: Dict[str, str],
    name: str,
    pred_label: str,
) -> None:
    def_label = definitions.get(name)
    if def_label is None:
        raise IRVerificationError(
            f"{fn.name}: φ operand {name!r} (from {pred_label!r}) is undefined"
        )
    if def_label != pred_label and not domtree.dominates(def_label, pred_label):
        raise IRVerificationError(
            f"{fn.name}: φ operand {name!r} from {pred_label!r} not dominated "
            f"by its definition in {def_label!r}"
        )


def _verify_pis(fn: Function, definitions: Dict[str, str]) -> None:
    seen: Set[str] = set()
    for label in fn.reachable_blocks():
        for instr in fn.blocks[label].instructions():
            if isinstance(instr, Pi):
                if instr.src not in definitions:
                    raise IRVerificationError(
                        f"{fn.name}/{label}: π source {instr.src!r} undefined"
                    )
                if instr.dest in seen:
                    raise IRVerificationError(
                        f"{fn.name}: duplicate π destination {instr.dest!r}"
                    )
                seen.add(instr.dest)
