"""Textual pretty-printer for the IR.

The output format is stable and used in tests, examples, and docs::

    fn bubble(a) {
    entry0:
        limit := arraylen a
        ...
        jump while1
    while1:
        st.1 := phi(entry0: st.0, body2: st.2)
        ...
    }
"""

from __future__ import annotations

from typing import List

from repro.ir.function import Function, Program


def format_function(fn: Function) -> str:
    """Render ``fn`` as readable text, blocks in reverse postorder."""
    lines: List[str] = []
    params = ", ".join(fn.params)
    lines.append(f"fn {fn.name}({params}) {{")
    for label in fn.reachable_blocks():
        block = fn.blocks[label]
        lines.append(f"{label}:")
        for instr in block.instructions():
            lines.append(f"    {instr}")
    lines.append("}")
    return "\n".join(lines)


def format_program(program: Program) -> str:
    """Render every function of ``program``."""
    return "\n\n".join(format_function(fn) for fn in program.functions.values())


def print_function(fn: Function) -> None:
    print(format_function(fn))


def print_program(program: Program) -> None:
    print(format_program(program))
