"""Three-address IR instructions.

The IR models the level at which a JIT such as Jalapeño runs ABCD:

* scalar arithmetic over (unbounded) integers, with booleans as 0/1;
* explicit array instructions (``new``, ``len``, ``load``, ``store``);
* **explicit bounds-check instructions** ``checklower`` / ``checkupper``
  emitted by the lowering in front of every array access — these are the
  objects ABCD removes;
* SSA-era instructions: ``phi`` (control-flow merge) and ``pi``
  (e-SSA renaming at branch exits and after checks, Section 3 of the paper).

Operands are either :class:`Var` (a named virtual register) or
:class:`Const` (an integer literal).  Keeping constants in operand position
makes the paper's constraint classes C2 (``x := c``) and C3 (``x := y + c``)
directly recognizable in the IR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


# ----------------------------------------------------------------------
# Operands.
# ----------------------------------------------------------------------


class Operand:
    """Base class for instruction operands."""

    __slots__ = ()


@dataclass(frozen=True)
class Var(Operand):
    """A virtual register, identified by name.

    After SSA renaming, names carry a version suffix (``i.2``); before SSA
    they are the raw frontend names or lowering temporaries (``%t3``).
    """

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Operand):
    """An integer constant operand (booleans are 0/1)."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


# ----------------------------------------------------------------------
# Instruction base.
# ----------------------------------------------------------------------


class Instr:
    """Base class of all IR instructions.

    Subclasses implement :meth:`uses` / :meth:`defs` so that generic passes
    (SSA renaming, liveness, copy propagation, DCE) need no per-instruction
    knowledge beyond this protocol.
    """

    __slots__ = ()

    def uses(self) -> List[Operand]:
        """All operands read by this instruction (constants included)."""
        raise NotImplementedError

    def used_vars(self) -> List[str]:
        """Names of all variables read by this instruction."""
        return [op.name for op in self.uses() if isinstance(op, Var)]

    def defs(self) -> Optional[str]:
        """The variable defined by this instruction, if any."""
        return None

    def rename_uses(self, mapping: Dict[str, str]) -> None:
        """Rename used variables in place according to ``mapping``.

        Names missing from ``mapping`` are left untouched.
        """
        raise NotImplementedError

    @property
    def is_terminator(self) -> bool:
        return False

    def clone(self) -> "Instr":
        """Structural copy of this instruction.

        Operands (:class:`Var`/:class:`Const`) are frozen and shared;
        mutable containers (φ incomings, call argument lists, π
        predicates) are copied so the clone can be rewritten without
        aliasing the original.  Much cheaper than ``copy.deepcopy``.
        """
        raise NotImplementedError


def _rename_operand(op: Operand, mapping: Dict[str, str]) -> Operand:
    if isinstance(op, Var) and op.name in mapping:
        return Var(mapping[op.name])
    return op


# ----------------------------------------------------------------------
# Scalar instructions.
# ----------------------------------------------------------------------

#: Binary arithmetic opcodes.
ARITH_OPS = ("add", "sub", "mul", "div", "mod")

#: Comparison opcodes (produce 0/1).
CMP_OPS = ("lt", "le", "gt", "ge", "eq", "ne")


@dataclass
class Copy(Instr):
    """``dest := src`` — also the encoding of constant assignment (C2)."""

    dest: str
    src: Operand

    def uses(self) -> List[Operand]:
        return [self.src]

    def defs(self) -> Optional[str]:
        return self.dest

    def rename_uses(self, mapping: Dict[str, str]) -> None:
        self.src = _rename_operand(self.src, mapping)

    def clone(self) -> "Copy":
        return Copy(self.dest, self.src)

    def __str__(self) -> str:
        return f"{self.dest} := {self.src}"


@dataclass
class BinOp(Instr):
    """``dest := lhs op rhs`` for ``op`` in :data:`ARITH_OPS`.

    ``x := y + c`` / ``x := y - c`` are the paper's constraint class C3.
    """

    dest: str
    op: str
    lhs: Operand
    rhs: Operand

    def uses(self) -> List[Operand]:
        return [self.lhs, self.rhs]

    def defs(self) -> Optional[str]:
        return self.dest

    def rename_uses(self, mapping: Dict[str, str]) -> None:
        self.lhs = _rename_operand(self.lhs, mapping)
        self.rhs = _rename_operand(self.rhs, mapping)

    def clone(self) -> "BinOp":
        return BinOp(self.dest, self.op, self.lhs, self.rhs)

    def __str__(self) -> str:
        return f"{self.dest} := {self.op} {self.lhs}, {self.rhs}"


@dataclass
class Cmp(Instr):
    """``dest := lhs op rhs`` for ``op`` in :data:`CMP_OPS`; result is 0/1.

    When a :class:`Branch` tests a ``Cmp`` result, the comparison is the
    source of the paper's C4 constraints.
    """

    dest: str
    op: str
    lhs: Operand
    rhs: Operand

    def uses(self) -> List[Operand]:
        return [self.lhs, self.rhs]

    def defs(self) -> Optional[str]:
        return self.dest

    def rename_uses(self, mapping: Dict[str, str]) -> None:
        self.lhs = _rename_operand(self.lhs, mapping)
        self.rhs = _rename_operand(self.rhs, mapping)

    def clone(self) -> "Cmp":
        return Cmp(self.dest, self.op, self.lhs, self.rhs)

    def __str__(self) -> str:
        return f"{self.dest} := cmp.{self.op} {self.lhs}, {self.rhs}"


# ----------------------------------------------------------------------
# Array instructions.
# ----------------------------------------------------------------------


@dataclass
class ArrayNew(Instr):
    """``dest := new int[length]``."""

    dest: str
    length: Operand

    def uses(self) -> List[Operand]:
        return [self.length]

    def defs(self) -> Optional[str]:
        return self.dest

    def rename_uses(self, mapping: Dict[str, str]) -> None:
        self.length = _rename_operand(self.length, mapping)

    def clone(self) -> "ArrayNew":
        return ArrayNew(self.dest, self.length)

    def __str__(self) -> str:
        return f"{self.dest} := newarray {self.length}"


@dataclass
class ArrayLen(Instr):
    """``dest := len(array)`` — the paper's constraint class C1."""

    dest: str
    array: str

    def uses(self) -> List[Operand]:
        return [Var(self.array)]

    def defs(self) -> Optional[str]:
        return self.dest

    def rename_uses(self, mapping: Dict[str, str]) -> None:
        self.array = mapping.get(self.array, self.array)

    def clone(self) -> "ArrayLen":
        return ArrayLen(self.dest, self.array)

    def __str__(self) -> str:
        return f"{self.dest} := arraylen {self.array}"


@dataclass
class ArrayLoad(Instr):
    """``dest := array[index]`` (checks are separate instructions)."""

    dest: str
    array: str
    index: Operand

    def uses(self) -> List[Operand]:
        return [Var(self.array), self.index]

    def defs(self) -> Optional[str]:
        return self.dest

    def rename_uses(self, mapping: Dict[str, str]) -> None:
        self.array = mapping.get(self.array, self.array)
        self.index = _rename_operand(self.index, mapping)

    def clone(self) -> "ArrayLoad":
        return ArrayLoad(self.dest, self.array, self.index)

    def __str__(self) -> str:
        return f"{self.dest} := load {self.array}[{self.index}]"


@dataclass
class ArrayStore(Instr):
    """``array[index] := value`` (checks are separate instructions)."""

    array: str
    index: Operand
    value: Operand

    def uses(self) -> List[Operand]:
        return [Var(self.array), self.index, self.value]

    def rename_uses(self, mapping: Dict[str, str]) -> None:
        self.array = mapping.get(self.array, self.array)
        self.index = _rename_operand(self.index, mapping)
        self.value = _rename_operand(self.value, mapping)

    def clone(self) -> "ArrayStore":
        return ArrayStore(self.array, self.index, self.value)

    def __str__(self) -> str:
        return f"store {self.array}[{self.index}] := {self.value}"


# ----------------------------------------------------------------------
# Bounds checks.
# ----------------------------------------------------------------------


@dataclass
class CheckLower(Instr):
    """``checklower index`` — raises unless ``index >= 0``.

    ``check_id`` is a program-unique identifier used for dynamic counting
    and for the demand-driven (hot check) interface.  ``guard_group`` is
    set by the PRE transformation: when not ``None``, the check only
    executes if the named speculation guard flag has been raised (see
    Section 6.2 of the paper and ``repro.core.pre``).
    """

    index: Operand
    check_id: int
    guard_group: Optional[int] = None

    def uses(self) -> List[Operand]:
        return [self.index]

    def rename_uses(self, mapping: Dict[str, str]) -> None:
        self.index = _rename_operand(self.index, mapping)

    def clone(self) -> "CheckLower":
        return CheckLower(self.index, self.check_id, self.guard_group)

    def __str__(self) -> str:
        guard = f" guard={self.guard_group}" if self.guard_group is not None else ""
        return f"checklower #{self.check_id} {self.index}{guard}"


@dataclass
class CheckUpper(Instr):
    """``checkupper array, index`` — raises unless ``index < len(array)``."""

    array: str
    index: Operand
    check_id: int
    guard_group: Optional[int] = None

    def uses(self) -> List[Operand]:
        return [Var(self.array), self.index]

    def rename_uses(self, mapping: Dict[str, str]) -> None:
        self.array = mapping.get(self.array, self.array)
        self.index = _rename_operand(self.index, mapping)

    def clone(self) -> "CheckUpper":
        return CheckUpper(self.array, self.index, self.check_id, self.guard_group)

    def __str__(self) -> str:
        guard = f" guard={self.guard_group}" if self.guard_group is not None else ""
        return f"checkupper #{self.check_id} {self.array}[{self.index}]{guard}"


@dataclass
class CheckUnsigned(Instr):
    """A merged lower+upper check (paper, Section 7.2).

    "The merged check is performed as an unsigned comparison, thanks to
    which a negative value of the array index is transformed into a large
    positive value ... the upper-bound check on the unsigned value is
    equivalent to performing a (lower-bound) check for a negative value as
    well as the upper-bound check on the signed value."

    ``lower_id``/``upper_id`` keep the original check identities so a
    failure raises with the same check id as the unmerged program would.
    Costs one length load plus one compare in the VM's cycle model (vs.
    three for the split pair).
    """

    array: str
    index: Operand
    lower_id: int
    upper_id: int
    guard_group: Optional[int] = None

    def uses(self) -> List[Operand]:
        return [Var(self.array), self.index]

    def rename_uses(self, mapping: Dict[str, str]) -> None:
        self.array = mapping.get(self.array, self.array)
        self.index = _rename_operand(self.index, mapping)

    def clone(self) -> "CheckUnsigned":
        return CheckUnsigned(
            self.array, self.index, self.lower_id, self.upper_id, self.guard_group
        )

    def __str__(self) -> str:
        guard = f" guard={self.guard_group}" if self.guard_group is not None else ""
        return (
            f"checkunsigned #{self.lower_id}+#{self.upper_id} "
            f"{self.array}[{self.index}]{guard}"
        )


@dataclass
class SpeculativeCheck(Instr):
    """A PRE compensating check inserted by ABCD (Section 6).

    Semantics: evaluate the same predicate as the original check, but on
    failure *set the guard flag* ``guard_group`` instead of trapping.  The
    original (partially redundant) check is rewritten to a guarded check
    that only runs when the flag is set, reproducing the paper's
    "fall back to the unoptimized loop" recovery protocol at instruction
    granularity.

    ``kind`` is ``"upper"`` or ``"lower"``; for upper checks ``array`` names
    the array whose length bounds the index.
    """

    kind: str
    index: Operand
    guard_group: int
    check_id: int
    array: Optional[str] = None

    def uses(self) -> List[Operand]:
        ops: List[Operand] = [self.index]
        if self.array is not None:
            ops.append(Var(self.array))
        return ops

    def rename_uses(self, mapping: Dict[str, str]) -> None:
        self.index = _rename_operand(self.index, mapping)
        if self.array is not None:
            self.array = mapping.get(self.array, self.array)

    def clone(self) -> "SpeculativeCheck":
        return SpeculativeCheck(
            self.kind, self.index, self.guard_group, self.check_id, self.array
        )

    def __str__(self) -> str:
        target = f"{self.array}[{self.index}]" if self.array else f"[{self.index}]"
        return (
            f"speculate.{self.kind} #{self.check_id} {target} "
            f"-> guard {self.guard_group}"
        )


# ----------------------------------------------------------------------
# Calls and control flow.
# ----------------------------------------------------------------------


@dataclass
class Call(Instr):
    """``dest := call callee(args)``; ``dest`` is ``None`` for void calls."""

    dest: Optional[str]
    callee: str
    args: List[Operand]

    def uses(self) -> List[Operand]:
        return list(self.args)

    def defs(self) -> Optional[str]:
        return self.dest

    def rename_uses(self, mapping: Dict[str, str]) -> None:
        self.args = [_rename_operand(arg, mapping) for arg in self.args]

    def clone(self) -> "Call":
        return Call(self.dest, self.callee, list(self.args))

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        prefix = f"{self.dest} := " if self.dest is not None else ""
        return f"{prefix}call {self.callee}({args})"


@dataclass
class Jump(Instr):
    """Unconditional jump to ``target``."""

    target: str

    def uses(self) -> List[Operand]:
        return []

    def rename_uses(self, mapping: Dict[str, str]) -> None:
        pass

    @property
    def is_terminator(self) -> bool:
        return True

    def clone(self) -> "Jump":
        return Jump(self.target)

    def __str__(self) -> str:
        return f"jump {self.target}"


@dataclass
class Branch(Instr):
    """Conditional branch: if ``cond`` is non-zero go to ``true_target``,
    else ``false_target``."""

    cond: Operand
    true_target: str
    false_target: str

    def uses(self) -> List[Operand]:
        return [self.cond]

    def rename_uses(self, mapping: Dict[str, str]) -> None:
        self.cond = _rename_operand(self.cond, mapping)

    @property
    def is_terminator(self) -> bool:
        return True

    def clone(self) -> "Branch":
        return Branch(self.cond, self.true_target, self.false_target)

    def __str__(self) -> str:
        return f"branch {self.cond} ? {self.true_target} : {self.false_target}"


@dataclass
class Return(Instr):
    """Return from the function, optionally with a value."""

    value: Optional[Operand] = None

    def uses(self) -> List[Operand]:
        return [] if self.value is None else [self.value]

    def rename_uses(self, mapping: Dict[str, str]) -> None:
        if self.value is not None:
            self.value = _rename_operand(self.value, mapping)

    @property
    def is_terminator(self) -> bool:
        return True

    def clone(self) -> "Return":
        return Return(self.value)

    def __str__(self) -> str:
        return f"return {self.value}" if self.value is not None else "return"


# ----------------------------------------------------------------------
# SSA instructions.
# ----------------------------------------------------------------------


@dataclass
class Phi(Instr):
    """``dest := phi(label1: v1, label2: v2, ...)``.

    φ-defined variables are the *max* vertices of the inequality graph
    (set ``V_φ`` in the paper): across control-flow paths a variable is
    bounded by the **weakest** incoming constraint.
    """

    dest: str
    incomings: Dict[str, Operand] = field(default_factory=dict)

    def uses(self) -> List[Operand]:
        return list(self.incomings.values())

    def defs(self) -> Optional[str]:
        return self.dest

    def rename_uses(self, mapping: Dict[str, str]) -> None:
        self.incomings = {
            label: _rename_operand(op, mapping)
            for label, op in self.incomings.items()
        }

    def clone(self) -> "Phi":
        return Phi(self.dest, dict(self.incomings))

    def __str__(self) -> str:
        inc = ", ".join(f"{label}: {op}" for label, op in sorted(self.incomings.items()))
        return f"{self.dest} := phi({inc})"


@dataclass
class PiPredicate:
    """The invariant attached to a π-assignment.

    The π's destination ``d`` satisfies ``d REL bound`` where the bound is
    one of:

    * a variable or constant operand (``other``), from a conditional
      branch — constraint class C4;
    * the length of the array named by ``arraylen_of``, from a successful
      upper-bounds check — constraint class C5 (``d < len(A)``).

    ``rel`` is one of ``lt, le, gt, ge, eq``.
    """

    rel: str
    other: Optional[Operand] = None
    arraylen_of: Optional[str] = None

    def rename(self, mapping: Dict[str, str]) -> None:
        if self.other is not None:
            self.other = _rename_operand(self.other, mapping)
        if self.arraylen_of is not None:
            self.arraylen_of = mapping.get(self.arraylen_of, self.arraylen_of)

    def clone(self) -> "PiPredicate":
        return PiPredicate(self.rel, self.other, self.arraylen_of)

    def __str__(self) -> str:
        if self.arraylen_of is not None:
            return f"{self.rel} len({self.arraylen_of})"
        return f"{self.rel} {self.other}"


@dataclass
class Pi(Instr):
    """``dest := pi(src) [predicate]`` — an e-SSA renaming assignment.

    At run time a π is a plain copy; its value is the attached
    :class:`PiPredicate`, which gives the constraint system a fresh name
    valid exactly where the predicate holds (paper, Section 3).
    """

    dest: str
    src: str
    predicate: PiPredicate

    def uses(self) -> List[Operand]:
        ops: List[Operand] = [Var(self.src)]
        if self.predicate.other is not None:
            ops.append(self.predicate.other)
        if self.predicate.arraylen_of is not None:
            ops.append(Var(self.predicate.arraylen_of))
        return ops

    def defs(self) -> Optional[str]:
        return self.dest

    def rename_uses(self, mapping: Dict[str, str]) -> None:
        self.src = mapping.get(self.src, self.src)
        self.predicate.rename(mapping)

    def clone(self) -> "Pi":
        return Pi(self.dest, self.src, self.predicate.clone())

    def __str__(self) -> str:
        return f"{self.dest} := pi({self.src}) [{self.predicate}]"


#: Instructions that define a value.
DEFINING_INSTRS = (Copy, BinOp, Cmp, ArrayNew, ArrayLen, ArrayLoad, Call, Phi, Pi)


def all_instr_vars(instr: Instr) -> Iterable[str]:
    """All variable names mentioned by ``instr`` (defs and uses)."""
    for name in instr.used_vars():
        yield name
    dest = instr.defs()
    if dest is not None:
        yield dest
