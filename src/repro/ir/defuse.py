"""Explicit def-use chains over the IR (the sparse backbone).

ABCD's selling point is *sparseness*: a demand-driven traversal of a
program-point-independent constraint system instead of a dense sweep.  The
host IR used to be the opposite — values were bare strings and every
optimization pass rediscovered uses by rescanning the whole function.
This module gives each value name a :class:`ValueInfo` — its defining
instruction(s) and an ordered use list — maintained incrementally by
:class:`~repro.ir.function.Function`'s mutator API, so passes can ask
"who uses ``x``?" in O(users) instead of O(function).

Design points:

* **Occurrence-level use lists.**  An instruction that reads ``x`` twice
  (``x + x``) appears twice in ``uses``; replacing one occurrence keeps
  the bookkeeping exact.  ``users_of`` deduplicates for callers that
  iterate instructions.
* **Pre-SSA tolerance.**  Before SSA renaming a name may have several
  defining instructions; ``defs`` is a list.  In (e-)SSA form it has at
  most one element (parameters have none), which :meth:`ValueInfo.
  def_instr` exposes directly.
* **Type index.**  ``instrs_of_type`` answers "all calls" / "all πs" /
  "all checks" without a function scan — consumed by inlining, e-SSA
  helpers, and the sparse array-variable closure.
* **Change notification.**  The worklist optimizer registers an
  ``on_use_removed`` hook; whenever a use occurrence disappears (operand
  rewritten, instruction deleted, block unreachable) the owning pass
  learns which value may have just become dead — the DCE cascade without
  any rescanning.

Consistency with the actual IR is checked by :meth:`assert_consistent`
(rebuild from scratch, compare), which the pass manager runs after every
pass in debug mode and the property-based tests run over random pass
pipelines.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Iterable, List, Optional, Type

from repro.ir.instructions import Instr


class ValueInfo:
    """Def/use record of one value name."""

    __slots__ = ("name", "defs", "uses")

    def __init__(self, name: str) -> None:
        self.name = name
        #: Defining instructions (SSA: at most one; parameters: none).
        self.defs: List[Instr] = []
        #: Using instructions, one entry per use *occurrence*.
        self.uses: List[Instr] = []

    @property
    def def_instr(self) -> Optional[Instr]:
        """The unique defining instruction (SSA), or ``None``."""
        return self.defs[0] if len(self.defs) == 1 else None

    @property
    def use_count(self) -> int:
        return len(self.uses)

    def __repr__(self) -> str:
        return (
            f"ValueInfo({self.name!r}, defs={len(self.defs)}, "
            f"uses={len(self.uses)})"
        )


class DefUseChains:
    """Sparse def-use index of one :class:`~repro.ir.function.Function`.

    Built once (at lowering / after SSA renaming) and maintained
    incrementally through the function's mutator API.  Passes that mutate
    the IR behind its back must call ``fn.invalidate_def_use()`` — the
    next ``fn.def_use()`` rebuilds lazily, and debug mode catches
    violations via :meth:`assert_consistent`.
    """

    def __init__(self, fn) -> None:
        self.fn = fn
        self.values: Dict[str, ValueInfo] = {}
        self._block_of: Dict[int, str] = {}
        self._alive: Dict[int, Instr] = {}
        self._by_type: Dict[Type[Instr], Dict[int, Instr]] = {}
        #: Optional hook fired with a value name each time one of its use
        #: occurrences disappears (see module docstring).
        self.on_use_removed: Optional[Callable[[str], None]] = None

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, fn) -> "DefUseChains":
        """Scan ``fn`` once and index every instruction."""
        chains = cls(fn)
        for name in fn.params:
            chains._ensure(name)
        for label, block in fn.blocks.items():
            for instr in block.instructions():
                chains.register(instr, label)
        return chains

    def _ensure(self, name: str) -> ValueInfo:
        info = self.values.get(name)
        if info is None:
            info = self.values[name] = ValueInfo(name)
        return info

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    def info(self, name: str) -> Optional[ValueInfo]:
        return self.values.get(name)

    def def_of(self, name: str) -> Optional[Instr]:
        info = self.values.get(name)
        return info.def_instr if info is not None else None

    def defs_of(self, name: str) -> List[Instr]:
        info = self.values.get(name)
        return list(info.defs) if info is not None else []

    def def_block_of(self, name: str) -> Optional[str]:
        """Label of the unique def's block; parameters live in the entry."""
        instr = self.def_of(name)
        if instr is not None:
            return self._block_of.get(id(instr))
        if name in self.fn.params:
            return self.fn.entry
        return None

    def uses_of(self, name: str) -> List[Instr]:
        info = self.values.get(name)
        return list(info.uses) if info is not None else []

    def users_of(self, name: str) -> List[Instr]:
        """Distinct using instructions, in first-use order."""
        info = self.values.get(name)
        if info is None:
            return []
        seen: Dict[int, Instr] = {}
        for instr in info.uses:
            seen.setdefault(id(instr), instr)
        return list(seen.values())

    def use_count(self, name: str) -> int:
        info = self.values.get(name)
        return len(info.uses) if info is not None else 0

    def contains(self, instr: Instr) -> bool:
        return id(instr) in self._alive

    def block_of(self, instr: Instr) -> str:
        return self._block_of[id(instr)]

    def instrs_of_type(self, instr_type: Type[Instr]) -> List[Instr]:
        """All live instructions of exactly ``instr_type``, in registration
        order (block order right after a build)."""
        return list(self._by_type.get(instr_type, {}).values())

    def instruction_count(self) -> int:
        return len(self._alive)

    # ------------------------------------------------------------------
    # Incremental maintenance.
    # ------------------------------------------------------------------

    def register(self, instr: Instr, block_label: str) -> None:
        """Index one instruction placed in ``block_label``."""
        key = id(instr)
        if key in self._alive:
            raise ValueError(f"instruction already registered: {instr}")
        self._alive[key] = instr
        self._block_of[key] = block_label
        self._by_type.setdefault(type(instr), {})[key] = instr
        dest = instr.defs()
        if dest is not None:
            self._ensure(dest).defs.append(instr)
        for name in instr.used_vars():
            self._ensure(name).uses.append(instr)

    def unregister(self, instr: Instr) -> None:
        """Drop one instruction from the index (it left the function)."""
        key = id(instr)
        if key not in self._alive:
            raise ValueError(f"instruction not registered: {instr}")
        del self._alive[key]
        del self._block_of[key]
        self._by_type[type(instr)].pop(key, None)
        dest = instr.defs()
        if dest is not None:
            info = self._ensure(dest)
            info.defs = [d for d in info.defs if d is not instr]
        for name in set(instr.used_vars()):
            info = self._ensure(name)
            before = len(info.uses)
            info.uses = [u for u in info.uses if u is not instr]
            removed = before - len(info.uses)
            if removed and self.on_use_removed is not None:
                self.on_use_removed(name)

    def update_uses(self, instr: Instr, mutate: Callable[[], None]) -> bool:
        """Apply ``mutate()`` (which rewrites ``instr``'s operands) and
        reconcile the use lists by occurrence diff.  Returns whether the
        use multiset actually changed."""
        before = Counter(instr.used_vars())
        mutate()
        after = Counter(instr.used_vars())
        if before == after:
            return False
        for name, count in (before - after).items():
            info = self._ensure(name)
            for _ in range(count):
                for position in range(len(info.uses) - 1, -1, -1):
                    if info.uses[position] is instr:
                        del info.uses[position]
                        break
            if self.on_use_removed is not None:
                self.on_use_removed(name)
        for name, count in (after - before).items():
            info = self._ensure(name)
            for _ in range(count):
                info.uses.append(instr)
        return True

    def rename_def(self, instr: Instr, old_name: str, new_name: str) -> None:
        """Move ``instr`` from ``old_name``'s def list to ``new_name``'s
        (the caller has already rewritten the destination field)."""
        info = self._ensure(old_name)
        info.defs = [d for d in info.defs if d is not instr]
        self._ensure(new_name).defs.append(instr)

    # ------------------------------------------------------------------
    # Integrity.
    # ------------------------------------------------------------------

    def assert_consistent(self, context: str = "") -> None:
        """Rebuild from scratch and compare against the live index.

        Raises :class:`~repro.errors.DefUseIntegrityError` on any dangling
        use (an indexed instruction no longer in the function), stale
        entry, or missing registration.
        """
        from repro.errors import DefUseIntegrityError

        where = f" after {context}" if context else ""
        fn = self.fn
        actual: Dict[int, str] = {}
        for label, block in fn.blocks.items():
            for instr in block.instructions():
                actual[id(instr)] = label
        for key, instr in self._alive.items():
            if key not in actual:
                raise DefUseIntegrityError(
                    f"{fn.name}: stale index entry{where}: {instr} is no "
                    "longer in the function"
                )
            if self._block_of[key] != actual[key]:
                raise DefUseIntegrityError(
                    f"{fn.name}: {instr} indexed in block "
                    f"{self._block_of[key]!r} but lives in {actual[key]!r}"
                    f"{where}"
                )
        for key in actual:
            if key not in self._alive:
                raise DefUseIntegrityError(
                    f"{fn.name}: unregistered instruction{where} in block "
                    f"{actual[key]!r}"
                )
        fresh = DefUseChains.build(fn)
        names = set(self.values) | set(fresh.values)
        for name in names:
            live = self.values.get(name)
            want = fresh.values.get(name)
            live_defs = Counter(id(d) for d in live.defs) if live else Counter()
            want_defs = Counter(id(d) for d in want.defs) if want else Counter()
            if live_defs != want_defs:
                raise DefUseIntegrityError(
                    f"{fn.name}: def list of {name!r} out of sync{where} "
                    f"(have {len(live_defs)} defs, expected {len(want_defs)})"
                )
            live_uses = Counter(id(u) for u in live.uses) if live else Counter()
            want_uses = Counter(id(u) for u in want.uses) if want else Counter()
            if live_uses != want_uses:
                raise DefUseIntegrityError(
                    f"{fn.name}: use list of {name!r} out of sync{where} "
                    f"(have {sum(live_uses.values())} occurrences, expected "
                    f"{sum(want_uses.values())})"
                )

    def __repr__(self) -> str:
        return (
            f"DefUseChains({self.fn.name!r}, {len(self.values)} values, "
            f"{len(self._alive)} instrs)"
        )


def iter_chain_defs(chains: DefUseChains) -> Iterable[Instr]:
    """Every defining instruction known to the chains (helper for
    consumers that only care about value-producing instructions)."""
    for info in chains.values.values():
        yield from info.defs
