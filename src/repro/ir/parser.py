"""Textual IR parser: the inverse of ``repro.ir.printer``.

Round-trips the printer's stable format, which makes IR-level test
fixtures and golden files possible and gives the CLI's ``ir`` output a
machine-readable meaning::

    fn sum(a.0, n.0) {
    entry0:
        s.0 := 0
        jump loop1
    loop1:
        s.1 := phi(entry0: s.0, body2: s.2)
        i.1 := phi(entry0: 0, body2: i.2)
        %c0.0 := cmp.lt i.1, n.0
        branch %c0.0 ? body2 : exit3
    ...
    }

The textual form is untyped (parameters default to ``int``); the SSA level
is inferred: a function containing π-assignments parses as e-SSA, one with
only φs as SSA, otherwise as plain form.  Check ids are taken from the
text and the owning program's counter is advanced past them.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import ParseError
from repro.frontend.types import INT
from repro.ir.function import BasicBlock, Function, Program
from repro.ir.instructions import (
    ArrayLen,
    ArrayLoad,
    ArrayNew,
    ArrayStore,
    BinOp,
    Branch,
    Call,
    CheckLower,
    CheckUnsigned,
    CheckUpper,
    Cmp,
    Const,
    Copy,
    Instr,
    Jump,
    Operand,
    Phi,
    Pi,
    PiPredicate,
    Return,
    SpeculativeCheck,
    Var,
)

_HEADER_RE = re.compile(r"^fn\s+(\w+)\((.*)\)\s*\{$")
_LABEL_RE = re.compile(r"^([\w.$@%]+):$")
_ARITH_RE = re.compile(r"^(add|sub|mul|div|mod)\s+(.+?),\s*(.+)$")
_CMP_RE = re.compile(r"^cmp\.(lt|le|gt|ge|eq|ne)\s+(.+?),\s*(.+)$")
_LOAD_RE = re.compile(r"^load\s+([^\[\s]+)\[(.+)\]$")
_CALL_RE = re.compile(r"^call\s+(\w+)\((.*)\)$")
_PHI_RE = re.compile(r"^phi\((.*)\)$")
_PI_RE = re.compile(r"^pi\(([^)]+)\)\s*\[(.+)\]$")
_CHECKL_RE = re.compile(r"^checklower\s+#(\d+)\s+(\S+)(?:\s+guard=(\d+))?$")
_CHECKU_RE = re.compile(r"^checkupper\s+#(\d+)\s+([^\[\s]+)\[([^\]]+)\](?:\s+guard=(\d+))?$")
_CHECKUN_RE = re.compile(
    r"^checkunsigned\s+#(\d+)\+#(\d+)\s+([^\[\s]+)\[([^\]]+)\](?:\s+guard=(\d+))?$"
)
_SPEC_RE = re.compile(
    r"^speculate\.(upper|lower)\s+#(\d+)\s+(?:([^\[\s]+))?\[([^\]]+)\]\s+->\s+guard\s+(\d+)$"
)
_STORE_RE = re.compile(r"^store\s+([^\[\s]+)\[([^\]]+)\]\s*:=\s*(.+)$")
_BRANCH_RE = re.compile(r"^branch\s+(\S+)\s*\?\s*(\S+)\s*:\s*(\S+)$")
_PRED_LEN_RE = re.compile(r"^(lt|le|gt|ge|eq)\s+len\(([^)]+)\)$")
_PRED_RE = re.compile(r"^(lt|le|gt|ge|eq)\s+(\S+)$")
_INT_RE = re.compile(r"^-?\d+$")


def _operand(text: str) -> Operand:
    text = text.strip()
    if _INT_RE.match(text):
        return Const(int(text))
    return Var(text)


def _parse_rhs(rhs: str) -> Instr:
    """Parse the right-hand side of ``dest := <rhs>`` (dest filled later)."""
    rhs = rhs.strip()
    match = _ARITH_RE.match(rhs)
    if match:
        return BinOp("", match.group(1), _operand(match.group(2)), _operand(match.group(3)))
    match = _CMP_RE.match(rhs)
    if match:
        return Cmp("", match.group(1), _operand(match.group(2)), _operand(match.group(3)))
    if rhs.startswith("newarray "):
        return ArrayNew("", _operand(rhs[len("newarray "):]))
    if rhs.startswith("arraylen "):
        return ArrayLen("", rhs[len("arraylen "):].strip())
    match = _LOAD_RE.match(rhs)
    if match:
        return ArrayLoad("", match.group(1), _operand(match.group(2)))
    match = _CALL_RE.match(rhs)
    if match:
        args = [
            _operand(a) for a in match.group(2).split(",") if a.strip()
        ]
        return Call("", match.group(1), args)
    match = _PHI_RE.match(rhs)
    if match:
        incomings: Dict[str, Operand] = {}
        body = match.group(1).strip()
        if body:
            for part in body.split(","):
                label, _, value = part.partition(":")
                incomings[label.strip()] = _operand(value)
        return Phi("", incomings)
    match = _PI_RE.match(rhs)
    if match:
        return Pi("", match.group(1).strip(), _parse_predicate(match.group(2)))
    # Fallback: plain copy of an operand.
    return Copy("", _operand(rhs))


def _parse_predicate(text: str) -> PiPredicate:
    text = text.strip()
    match = _PRED_LEN_RE.match(text)
    if match:
        return PiPredicate(match.group(1), arraylen_of=match.group(2))
    match = _PRED_RE.match(text)
    if match:
        return PiPredicate(match.group(1), other=_operand(match.group(2)))
    raise ParseError(f"bad π predicate: {text!r}")


def _set_dest(instr: Instr, dest: str) -> Instr:
    instr.dest = dest  # type: ignore[attr-defined]
    return instr


def _parse_statement(line: str) -> Tuple[Optional[Instr], Optional[Instr]]:
    """Parse one instruction line; returns (body instr, terminator)."""
    if line.startswith("jump "):
        return None, Jump(line[len("jump "):].strip())
    match = _BRANCH_RE.match(line)
    if match:
        return None, Branch(_operand(match.group(1)), match.group(2), match.group(3))
    if line == "return":
        return None, Return(None)
    if line.startswith("return "):
        return None, Return(_operand(line[len("return "):]))

    match = _CHECKL_RE.match(line)
    if match:
        guard = int(match.group(3)) if match.group(3) else None
        return CheckLower(_operand(match.group(2)), int(match.group(1)), guard), None
    match = _CHECKU_RE.match(line)
    if match:
        guard = int(match.group(4)) if match.group(4) else None
        return (
            CheckUpper(match.group(2), _operand(match.group(3)), int(match.group(1)), guard),
            None,
        )
    match = _CHECKUN_RE.match(line)
    if match:
        guard = int(match.group(5)) if match.group(5) else None
        return (
            CheckUnsigned(
                match.group(3),
                _operand(match.group(4)),
                int(match.group(1)),
                int(match.group(2)),
                guard,
            ),
            None,
        )
    match = _SPEC_RE.match(line)
    if match:
        return (
            SpeculativeCheck(
                kind=match.group(1),
                index=_operand(match.group(4)),
                guard_group=int(match.group(5)),
                check_id=int(match.group(2)),
                array=match.group(3),
            ),
            None,
        )
    match = _STORE_RE.match(line)
    if match:
        return (
            ArrayStore(match.group(1), _operand(match.group(2)), _operand(match.group(3))),
            None,
        )
    if line.startswith("call "):
        match = _CALL_RE.match(line)
        if match:
            args = [_operand(a) for a in match.group(2).split(",") if a.strip()]
            return Call(None, match.group(1), args), None

    dest, sep, rhs = line.partition(" := ")
    if sep:
        return _set_dest(_parse_rhs(rhs), dest.strip()), None
    raise ParseError(f"cannot parse IR line: {line!r}")


def parse_function(text: str) -> Function:
    """Parse one printed function back into a :class:`Function`."""
    lines = [line.rstrip() for line in text.strip().splitlines()]
    if not lines:
        raise ParseError("empty IR text")
    header = _HEADER_RE.match(lines[0].strip())
    if header is None:
        raise ParseError(f"bad function header: {lines[0]!r}")
    name = header.group(1)
    params = [p.strip() for p in header.group(2).split(",") if p.strip()]
    fn = Function(name, params, [INT] * len(params), INT)

    current: Optional[BasicBlock] = None
    has_phi = has_pi = False
    for raw in lines[1:]:
        line = raw.strip()
        if not line or line == "}":
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            current = fn.add_block(BasicBlock(label_match.group(1)))
            if fn.entry == "":
                fn.entry = current.label
            continue
        if current is None:
            raise ParseError(f"instruction before any label: {line!r}")
        instr, terminator = _parse_statement(line)
        if terminator is not None:
            current.terminator = terminator
        elif isinstance(instr, Phi):
            has_phi = True
            current.phis.append(instr)
        else:
            assert instr is not None
            if isinstance(instr, Pi):
                has_pi = True
            current.body.append(instr)

    fn.ssa_form = "essa" if has_pi else ("ssa" if has_phi else "none")
    return fn


def parse_ir_program(text: str) -> Program:
    """Parse a whole printed program (functions separated by blank lines)."""
    program = Program()
    chunks = re.split(r"\n\s*\n(?=fn\s)", text.strip())
    max_check_id = -1
    for chunk in chunks:
        if not chunk.strip():
            continue
        fn = parse_function(chunk)
        program.add_function(fn)
        for instr in fn.all_instructions():
            for attribute in ("check_id", "lower_id", "upper_id"):
                value = getattr(instr, attribute, None)
                if isinstance(value, int):
                    max_check_id = max(max_check_id, value)
    # Advance the counter so later transformations mint fresh ids.
    while program._next_check_id <= max_check_id:
        program.new_check_id()
    return program
