"""Capture of a compilation's storable result, from inside the pipeline.

The ``store-capture`` pass hands each function to a :class:`StoreCapture`
at the only moment the store can use it: after ``certify`` (every
surviving elimination carries an accepted certificate) and before
``check-removal`` (the checks are still in the IR, so the inequality
graphs rebuilt at load time still contain the edges the certificates
traverse).

A capture is *all-or-nothing* per compilation unit: any function whose
eliminations cannot be certified-and-serialized (certification disabled,
a missing witness, a pass failure upstream) marks the whole capture
uncacheable — a partial entry would make the warm path diverge from the
cold path, which is exactly what the store must never do.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.store.entry import Elimination, StoreEntry


class StoreCapture:
    """Accumulates per-function pre-removal IR + certified eliminations
    during one ``CompilationSession.optimize`` run."""

    def __init__(self) -> None:
        self.ir_by_function: Dict[str, str] = {}
        self.eliminations: Dict[str, List[Elimination]] = {}
        self.cacheable = True
        self.reason: Optional[str] = None

    def mark_uncacheable(self, reason: str) -> None:
        if self.cacheable:
            self.cacheable = False
            self.reason = reason

    # ------------------------------------------------------------------
    # Called by the store-capture pass.
    # ------------------------------------------------------------------

    def add_function(self, fn, state) -> None:
        """Snapshot one function's pre-removal IR and its eliminations
        (``state`` is the post-certify :class:`~repro.core.abcd.AbcdState`)."""
        from repro.ir.printer import format_function

        records = {a.check_id: a for a in state.analyses}
        elims: List[Elimination] = []
        for site in state.to_remove:
            record = records.get(site.instr.check_id)
            if not self._certified(record):
                self.mark_uncacheable(
                    f"{fn.name}: elimination #{site.instr.check_id} "
                    "lacks an accepted certificate"
                )
                return
            elims.append(self._elimination(site, record, pre=False))
        for site, record in state.pre_candidates:
            if not getattr(record, "pre_applied", False) or not record.eliminated:
                continue
            if not self._certified(record) or site.instr.guard_group is None:
                self.mark_uncacheable(
                    f"{fn.name}: PRE elimination #{site.instr.check_id} "
                    "lacks an accepted certificate"
                )
                return
            elims.append(self._elimination(site, record, pre=True))
        self.ir_by_function[fn.name] = format_function(fn)
        self.eliminations[fn.name] = elims

    @staticmethod
    def _certified(record) -> bool:
        return (
            record is not None
            and record.witness is not None
            and record.certificate == "accepted"
        )

    @staticmethod
    def _elimination(site, record, pre: bool) -> Elimination:
        from repro.certify.witness import _node_json, witness_to_json

        return Elimination(
            check_id=site.instr.check_id,
            kind=site.kind,
            array=site.array,
            target=_node_json(site.target),
            witness=witness_to_json(record.witness),
            cert_source=(
                _node_json(record.cert_source)
                if record.cert_source is not None
                else None
            ),
            pre=pre,
        )

    # ------------------------------------------------------------------
    # Assembly.
    # ------------------------------------------------------------------

    def build_entry(self, fingerprint: str, program) -> Optional[StoreEntry]:
        """Assemble the durable entry, or ``None`` when not cacheable.

        ``program`` fixes the function order and completeness: a function
        the capture never saw (analysis failed, e-SSA rolled back) makes
        the capture uncacheable rather than producing an entry that hides
        the function.
        """
        if not self.cacheable:
            return None
        missing = [
            name for name in program.functions if name not in self.ir_by_function
        ]
        if missing:
            self.mark_uncacheable(f"functions never captured: {missing}")
            return None
        ir = "\n\n".join(
            self.ir_by_function[name] for name in program.functions
        )
        eliminated = sum(len(v) for v in self.eliminations.values())
        return StoreEntry(
            fingerprint=fingerprint,
            ir=ir,
            eliminations={k: list(v) for k, v in self.eliminations.items()},
            meta={"eliminated": eliminated, "functions": len(self.ir_by_function)},
        )
