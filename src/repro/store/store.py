"""The content-addressed, crash-safe certificate store.

Layout under one cache root::

    objects/<2-hex-shard>/<fingerprint>.entry    durable entries
    tmp/                                         in-flight writes
    quarantine/<fingerprint>.<reason>.entry      rejected bytes

Writes go through :mod:`repro.store.atomic` (tmp + fsync + rename), so a
crash mid-write leaves at worst a stray temporary that
:meth:`CertStore.recovery_scan` deletes on the next open.

Reads are **zero-trust** — the load ladder, in order:

1. envelope: checksum footer, truncation, JSON, schema, shape
   (:func:`repro.store.entry.decode_entry`);
2. identity: the payload's embedded fingerprint must match the address
   it was loaded from;
3. IR: the pre-removal text must parse and pass the IR verifier;
4. **certificate replay**: every elimination is re-proved through the
   independent certify checker against inequality graphs rebuilt from
   the loaded IR (:func:`repro.certify.driver.replay_elimination`);
5. only then are the eliminated checks removed, the result verified
   again, and the program released to the caller.

Any rung failing quarantines the entry (atomic rename out of
``objects/``) and reports a miss — the caller falls back to a fresh
compile.  There is **no code path that returns a hit without a passing
replay**; ``invariant_violations`` exposes the counter form of that
invariant for the chaos harness to assert.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.store import atomic
from repro.store.atomic import TMP_SUFFIX
from repro.store.entry import EntryError, StoreEntry, decode_entry, encode_entry

#: An entry larger than this is quarantined unread (a runaway or hostile
#: payload must not cost unbounded memory on the serve path).
MAX_ENTRY_BYTES = 32 * 1024 * 1024


@dataclass
class LoadResult:
    """Outcome of one :meth:`CertStore.load`."""

    status: str  # "hit" | "miss"
    fingerprint: str
    program: object = None
    #: Final optimized IR text (post-removal) — pushed to serve workers.
    ir_text: Optional[str] = None
    #: Why a present entry was rejected (``None`` for a clean miss).
    reason: Optional[str] = None
    #: Checks whose certificates replayed on a hit.
    eliminations: int = 0

    @property
    def hit(self) -> bool:
        return self.status == "hit"


@dataclass
class VerifyResult:
    """Outcome of re-checking one entry via :meth:`CertStore.verify_all`."""

    fingerprint: str
    ok: bool
    reason: Optional[str] = None
    eliminations: int = 0


@dataclass
class _Revalidation:
    program: object = None
    reason: Optional[str] = None
    eliminations: int = 0


class CertStore:
    """One on-disk store rooted at ``root`` (created on open)."""

    def __init__(self, root, create: bool = True) -> None:
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.tmp_dir = self.root / "tmp"
        self.quarantine_dir = self.root / "quarantine"
        self.counters: Dict[str, int] = {}
        if create:
            for directory in (self.objects_dir, self.tmp_dir, self.quarantine_dir):
                directory.mkdir(parents=True, exist_ok=True)
        self.recovery_scan()

    # ------------------------------------------------------------------
    # Bookkeeping.
    # ------------------------------------------------------------------

    def bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def entry_path(self, fingerprint: str) -> Path:
        return self.objects_dir / fingerprint[:2] / f"{fingerprint}.entry"

    def recovery_scan(self) -> int:
        """Delete leftover in-flight temporaries (a crash or SIGKILL
        mid-write).  The rename protocol guarantees these never carry
        committed data, so deletion is always safe."""
        removed = 0
        if not self.tmp_dir.is_dir():
            return 0
        for stray in self.tmp_dir.iterdir():
            if stray.name.endswith(TMP_SUFFIX):
                try:
                    stray.unlink()
                    removed += 1
                except OSError:
                    pass
        if removed:
            self.bump("store.recovered_tmp", removed)
        return removed

    def iter_fingerprints(self) -> Iterator[str]:
        if not self.objects_dir.is_dir():
            return
        for shard in sorted(self.objects_dir.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.iterdir()):
                if path.suffix == ".entry":
                    yield path.stem

    # ------------------------------------------------------------------
    # Writes.
    # ------------------------------------------------------------------

    def put(self, entry: StoreEntry) -> bool:
        """Durably store ``entry``; ``False`` (never an exception) when
        the write could not complete — the caller just stays uncached."""
        try:
            data = encode_entry(entry)
        except (RecursionError, ValueError, TypeError):
            self.bump("store.encode_errors")
            return False
        path = self.entry_path(entry.fingerprint)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # Call through the module so the disk-fault harness can patch
            # the writer (the same convention the opt passes follow).
            atomic.atomic_write_bytes(str(path), data, tmp_dir=str(self.tmp_dir))
        except OSError:
            self.bump("store.put_errors")
            return False
        self.bump("store.puts")
        return True

    # ------------------------------------------------------------------
    # The zero-trust read path.
    # ------------------------------------------------------------------

    def load(self, fingerprint: str, config) -> LoadResult:
        """Look up ``fingerprint`` and climb the full load ladder.

        A hit is only ever returned after every stored elimination
        re-certified against graphs rebuilt from the loaded IR; every
        other outcome is a miss (with the entry quarantined when bytes
        were present but wrong).
        """
        path = self.entry_path(fingerprint)
        entry, reason = self._read_entry(path, fingerprint)
        if entry is None:
            if reason is None:
                self.bump("store.misses")
                return LoadResult("miss", fingerprint)
            self._quarantine(path, fingerprint, reason)
            self.bump("store.misses")
            return LoadResult("miss", fingerprint, reason=reason)
        outcome = self._revalidate(entry, config)
        if outcome.reason is not None:
            self._quarantine(path, fingerprint, outcome.reason)
            self.bump("store.misses")
            return LoadResult("miss", fingerprint, reason=outcome.reason)
        from repro.ir.printer import format_program

        self.bump("store.hits")
        return LoadResult(
            "hit",
            fingerprint,
            program=outcome.program,
            ir_text=format_program(outcome.program),
            eliminations=outcome.eliminations,
        )

    def _read_entry(self, path: Path, fingerprint: str):
        """Envelope rungs: returns ``(entry, None)``, ``(None, None)``
        for a clean miss, or ``(None, reason)`` for rejectable bytes."""
        try:
            size = path.stat().st_size
        except OSError:
            return None, None
        if size > MAX_ENTRY_BYTES:
            return None, "oversize"
        try:
            data = path.read_bytes()
        except OSError:
            return None, None
        try:
            entry = decode_entry(data)
        except EntryError as exc:
            return None, exc.reason
        if entry.fingerprint != fingerprint:
            return None, "fingerprint"
        return entry, None

    def _revalidate(self, entry: StoreEntry, config) -> _Revalidation:
        """Rungs 3-5: parse, verify, replay every certificate, apply
        removals, verify again.  Any exception is a rejection reason,
        never a crash — corrupted bytes must not take down a server."""
        try:
            return self._revalidate_inner(entry, config)
        except Exception as exc:  # zero-trust: reject, don't propagate
            return _Revalidation(reason=f"replay-error: {exc}")

    def _revalidate_inner(self, entry: StoreEntry, config) -> _Revalidation:
        from repro.certify.checker import AssumeContext
        from repro.certify.driver import fresh_bundle, replay_elimination
        from repro.certify.witness import (
            WitnessDecodeError,
            _node_from_json,
            witness_from_json,
        )
        from repro.ir.instructions import CheckLower, CheckUpper, Var
        from repro.ir.parser import parse_ir_program
        from repro.ir.verifier import verify_program
        from repro.core.graph import const_node, var_node

        try:
            program = parse_ir_program(entry.ir)
            verify_program(program)
        except Exception as exc:
            self.bump("store.replay_rejected")
            return _Revalidation(reason=f"ir: {exc}")

        unknown = [n for n in entry.eliminations if n not in program.functions]
        if unknown:
            self.bump("store.replay_rejected")
            return _Revalidation(reason=f"shape: unknown functions {unknown}")

        replayed = 0
        removals = []  # (fn, label, instr)
        for name, elims in sorted(entry.eliminations.items()):
            if not elims:
                continue
            fn = program.functions[name]
            sites: Dict[tuple, tuple] = {}
            for label, block in fn.blocks.items():
                for instr in block.instructions():
                    if isinstance(instr, CheckLower):
                        sites[("lower", instr.check_id)] = (label, instr)
                    elif isinstance(instr, CheckUpper):
                        sites[("upper", instr.check_id)] = (label, instr)
            bundle = fresh_bundle(fn, config)
            gvn_cache: List[Optional[object]] = [None]
            for elim in elims:
                located = sites.get((elim.kind, elim.check_id))
                if located is None:
                    return self._reject(
                        f"certificate: {name}#{elim.check_id} not in the IR"
                    )
                label, instr = located
                array = getattr(instr, "array", None)
                if elim.array != array:
                    return self._reject(
                        f"certificate: {name}#{elim.check_id} array mismatch"
                    )
                operand = instr.index
                target = (
                    var_node(operand.name)
                    if isinstance(operand, Var)
                    else const_node(operand.value)
                )
                try:
                    stored_target = _node_from_json(elim.target)
                    witness = witness_from_json(elim.witness)
                    cert_source = (
                        _node_from_json(elim.cert_source)
                        if elim.cert_source is not None
                        else None
                    )
                except WitnessDecodeError as exc:
                    return self._reject(f"certificate: {exc}")
                if stored_target != target:
                    return self._reject(
                        f"certificate: {name}#{elim.check_id} target mismatch"
                    )
                assume = None
                if elim.pre:
                    if instr.guard_group is None:
                        return self._reject(
                            f"certificate: {name}#{elim.check_id} "
                            "PRE without guard group"
                        )
                    assume = AssumeContext(fn, elim.kind, elim.array, instr.guard_group)
                reason = replay_elimination(
                    fn,
                    bundle,
                    kind=elim.kind,
                    array=elim.array,
                    target=target,
                    witness=witness,
                    cert_source=cert_source,
                    assume=assume,
                    gvn_cache=gvn_cache,
                )
                if reason is not None:
                    return self._reject(
                        f"certificate: {name}#{elim.check_id} {reason}"
                    )
                replayed += 1
                if not elim.pre:
                    removals.append((fn, label, instr))

        # Every certificate re-checked; only now may checks disappear.
        for fn, label, instr in removals:
            fn.remove_instr(label, instr)
        try:
            verify_program(program)
        except Exception as exc:
            self.bump("store.replay_rejected")
            return _Revalidation(reason=f"ir-post: {exc}")
        self.bump("store.replay_ok")
        return _Revalidation(program=program, eliminations=replayed)

    def _reject(self, reason: str) -> _Revalidation:
        self.bump("store.replay_rejected")
        return _Revalidation(reason=reason)

    def _quarantine(self, path: Path, fingerprint: str, reason: str) -> None:
        """Atomically move rejected bytes out of ``objects/`` so they can
        never be served again (kept for post-mortem, not retried)."""
        slug = "".join(c if c.isalnum() else "-" for c in reason)[:40]
        target = self.quarantine_dir / f"{fingerprint}.{slug}.entry"
        try:
            os.replace(str(path), str(target))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        self.bump("store.quarantined")
        self.bump(f"store.quarantined.{reason.split(':', 1)[0].strip()}")

    # ------------------------------------------------------------------
    # Maintenance (the `repro cache` verbs).
    # ------------------------------------------------------------------

    def verify_all(self, config) -> List[VerifyResult]:
        """Re-run the full ladder over every entry; quarantine failures."""
        results: List[VerifyResult] = []
        for fingerprint in list(self.iter_fingerprints()):
            path = self.entry_path(fingerprint)
            entry, reason = self._read_entry(path, fingerprint)
            if entry is None:
                reason = reason or "unreadable"
                self._quarantine(path, fingerprint, reason)
                results.append(VerifyResult(fingerprint, ok=False, reason=reason))
                continue
            outcome = self._revalidate(entry, config)
            if outcome.reason is not None:
                self._quarantine(path, fingerprint, outcome.reason)
                results.append(
                    VerifyResult(fingerprint, ok=False, reason=outcome.reason)
                )
            else:
                results.append(
                    VerifyResult(
                        fingerprint, ok=True, eliminations=outcome.eliminations
                    )
                )
        return results

    def evict(self, fingerprint: str) -> bool:
        """Remove one entry; ``True`` when it existed."""
        path = self.entry_path(fingerprint)
        try:
            path.unlink()
        except OSError:
            return False
        self.bump("store.evicted")
        return True

    def gc(
        self,
        max_entries: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
        now: Optional[float] = None,
    ) -> int:
        """Prune by age and/or count (oldest-mtime first); returns the
        number removed.  Quarantined files older than ``max_age_seconds``
        are pruned too — post-mortems do not accumulate forever."""
        import time as _time

        now = _time.time() if now is None else now
        entries = []
        for fingerprint in self.iter_fingerprints():
            path = self.entry_path(fingerprint)
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue
            entries.append((mtime, fingerprint))
        entries.sort()
        doomed = []
        if max_age_seconds is not None:
            doomed.extend(
                fp for mtime, fp in entries if now - mtime > max_age_seconds
            )
        if max_entries is not None and len(entries) - len(doomed) > max_entries:
            survivors = [fp for _, fp in entries if fp not in set(doomed)]
            doomed.extend(survivors[: len(survivors) - max_entries])
        removed = 0
        for fingerprint in doomed:
            if self.evict(fingerprint):
                removed += 1
        if max_age_seconds is not None and self.quarantine_dir.is_dir():
            for stray in self.quarantine_dir.iterdir():
                try:
                    if now - stray.stat().st_mtime > max_age_seconds:
                        stray.unlink()
                except OSError:
                    pass
        if removed:
            self.bump("store.gc_removed", removed)
        return removed

    # ------------------------------------------------------------------
    # Observability.
    # ------------------------------------------------------------------

    def stats_payload(self) -> Dict[str, object]:
        entries = 0
        total_bytes = 0
        for fingerprint in self.iter_fingerprints():
            entries += 1
            try:
                total_bytes += self.entry_path(fingerprint).stat().st_size
            except OSError:
                pass
        quarantined_files = 0
        if self.quarantine_dir.is_dir():
            quarantined_files = sum(1 for _ in self.quarantine_dir.iterdir())
        payload: Dict[str, object] = {
            "root": str(self.root),
            "entries": entries,
            "bytes": total_bytes,
            "quarantine_files": quarantined_files,
        }
        payload.update(sorted(self.counters.items()))
        return payload

    def invariant_violations(self) -> int:
        """Counter form of "no load without a passing re-check": hits in
        excess of successful replays.  Always 0 unless the ladder is
        bypassed — the chaos harness asserts this stays 0."""
        return max(
            0, self.counters.get("store.hits", 0) - self.counters.get("store.replay_ok", 0)
        )
