"""Canonical fingerprints for store keys.

An entry is addressed by everything that can change the optimized
output:

* the **source structure** — the token stream of the MiniJ translation
  unit, so whitespace and comment edits still hit while any token-level
  edit misses;
* the **ABCDConfig** — every field that steers analysis or
  transformation, including ``solver_backend``: demand- and
  closure-produced entries must never alias across ``--solver``
  settings even though their eliminations are meant to agree (an
  aliased hit would mask a backend divergence instead of surfacing
  it).  ``certify``/``strict``/``certify_quarantine`` are excluded:
  stored entries are *always* captured under certification (that is
  what makes loads replayable), so certification flags select a
  validation posture, not a different optimized program;
* the **pipeline id** — the registered pass names actually scheduled,
  so enabling inlining or disabling the standard suite misses;
* the **store schema version** — a format bump orphans old entries
  rather than reinterpreting them.

Fingerprints are plain sha256 hex digests; the store shards entries by
the first two characters.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Optional

from repro.core.abcd import ABCDConfig

#: Bump on any incompatible change to the entry payload format.
SCHEMA_VERSION = 1

#: Config fields that select a validation posture, not an output.
_CONFIG_EXCLUDED = frozenset({"certify", "strict", "certify_quarantine"})


def source_structure_hash(source: str) -> str:
    """sha256 of the token structure of ``source``.

    Lexing discards whitespace and comments, so formatting edits keep
    the hash; any change that survives to a token (an identifier, a
    literal, an operator) changes it.
    """
    from repro.frontend.lexer import tokenize

    hasher = hashlib.sha256()
    for token in tokenize(source):
        hasher.update(token.kind.name.encode("utf-8"))
        hasher.update(b"\x1f")
        hasher.update(token.text.encode("utf-8"))
        hasher.update(b"\x1e")
    return hasher.hexdigest()


def config_key(config: Optional[ABCDConfig]) -> str:
    """Canonical JSON of the output-relevant ``ABCDConfig`` fields.

    Iterates the dataclass fields so a future config knob participates
    in the key by default; forgetting to exclude a posture-only flag
    costs a cache miss, never a wrong hit.
    """
    config = config or ABCDConfig()
    payload = {}
    for spec in dataclasses.fields(ABCDConfig):
        if spec.name in _CONFIG_EXCLUDED:
            continue
        value = getattr(config, spec.name)
        if isinstance(value, (set, frozenset)):
            value = sorted(value)
        payload[spec.name] = value
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def pipeline_id(standard_opts: bool = True, inline: bool = False) -> str:
    """The scheduled pass names, in order, as one string.

    Built from the registry's default pipelines — the same lists
    ``CompilationSession`` runs — so a pipeline reshuffle in the
    registry automatically orphans stale entries.
    """
    from repro.passes.registry import default_compile_passes, default_optimize_passes

    names = [p.name for p in default_compile_passes(standard_opts, inline)]
    names += [p.name for p in default_optimize_passes()]
    return "+".join(names)


def profile_key(profile) -> str:
    """Digest of a :class:`~repro.runtime.profiler.Profile`'s counters.

    PRE decisions depend on edge frequencies, so a profile-driven
    compile must key on the profile too — otherwise two different
    profiles would collide on one entry and the warm result could
    diverge (in IR shape, never in behavior) from the cold one.
    """
    if profile is None:
        return ""
    payload = {
        "blocks": sorted(
            (fn, label, count)
            for (fn, label), count in profile.block_counts.items()
        ),
        "edges": sorted(
            (fn, src, dst, count)
            for (fn, src, dst), count in profile.edge_counts.items()
        ),
        "checks": sorted(profile.check_counts.items()),
    }
    data = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(data.encode("utf-8")).hexdigest()


def store_fingerprint(
    source: str,
    config: Optional[ABCDConfig] = None,
    standard_opts: bool = True,
    inline: bool = False,
    profile=None,
) -> str:
    """The content address of one compilation unit's optimized result."""
    key = json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "source": source_structure_hash(source),
            "config": config_key(config),
            "pipeline": pipeline_id(standard_opts, inline),
            "profile": profile_key(profile),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(key.encode("utf-8")).hexdigest()
