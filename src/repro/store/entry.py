"""The on-disk entry format: JSON payload + checksum footer.

An entry file is::

    <canonical JSON payload, one line>\n#sha256:<64 hex chars>\n

The payload is ``json.dumps(..., sort_keys=True)`` with compact
separators, so identical logical entries are byte-identical — which is
what makes the concurrent-writer race benign (both writers rename the
same bytes into place) and warm-hit comparisons exact.

The footer checksums the payload bytes.  :func:`decode_entry` is the
first rung of the zero-trust load ladder; it classifies every way the
bytes can be wrong:

* ``truncated`` — missing/garbled footer or trailing newline (a torn
  write);
* ``checksum``  — footer present but does not match the payload (a
  flipped byte at rest, in payload or footer);
* ``json``      — checksum passes but the payload is not valid JSON;
* ``schema``    — a payload from a different schema version;
* ``shape``     — valid JSON of the right schema whose structure or
  types are wrong.

A payload that clears all five rungs is still *untrusted*: the store
replays every elimination through the certify checker before anything
derived from the entry is executed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.store.fingerprint import SCHEMA_VERSION

_FOOTER_MARK = b"\n#sha256:"


class EntryError(Exception):
    """A load-ladder rejection; ``reason`` is the rung that failed."""

    def __init__(self, reason: str, detail: str = "") -> None:
        self.reason = reason
        self.detail = detail
        super().__init__(f"{reason}: {detail}" if detail else reason)


@dataclass
class Elimination:
    """One certified check elimination, as stored.

    ``target``/``witness``/``cert_source`` are the JSON node forms
    produced by :mod:`repro.certify.witness`; they are decoded and
    re-checked at load time, never trusted.
    """

    check_id: int
    kind: str  # "lower" | "upper"
    array: Optional[str]
    target: Dict[str, object]
    witness: Dict[str, object]
    cert_source: Optional[Dict[str, object]] = None
    pre: bool = False


@dataclass
class StoreEntry:
    """One compilation unit's cached result.

    ``ir`` is the **pre-removal** optimized IR (checks still present):
    certificate replay needs the inequality-graph edges the checks
    contribute, so removals are re-applied at load only after every
    elimination re-certifies.
    """

    fingerprint: str
    ir: str
    eliminations: Dict[str, List[Elimination]] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Encoding.
# ----------------------------------------------------------------------


def entry_payload(entry: StoreEntry) -> Dict[str, object]:
    """The entry's JSON payload object (what the checksum covers).

    Also the wire form serve workers attach to a response frame when the
    supervisor asked them to capture a cacheable compile.
    """
    return {
        "schema": SCHEMA_VERSION,
        "fingerprint": entry.fingerprint,
        "ir": entry.ir,
        "eliminations": {
            name: [
                {
                    "check_id": e.check_id,
                    "kind": e.kind,
                    "array": e.array,
                    "target": e.target,
                    "witness": e.witness,
                    "cert_source": e.cert_source,
                    "pre": e.pre,
                }
                for e in elims
            ]
            for name, elims in entry.eliminations.items()
        },
        "meta": entry.meta,
    }


def encode_entry(entry: StoreEntry) -> bytes:
    """Serialize an entry to its durable byte form."""
    data = json.dumps(
        entry_payload(entry), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    digest = hashlib.sha256(data).hexdigest()
    return data + _FOOTER_MARK + digest.encode("ascii") + b"\n"


# ----------------------------------------------------------------------
# Decoding — the envelope rungs of the load ladder.
# ----------------------------------------------------------------------


def decode_entry(data: bytes) -> StoreEntry:
    """Decode durable bytes back into a :class:`StoreEntry`.

    Raises :class:`EntryError` with the first failing rung's reason.
    """
    if not data.endswith(b"\n"):
        raise EntryError("truncated", "missing trailing newline")
    mark = data.rfind(_FOOTER_MARK)
    if mark < 0:
        raise EntryError("truncated", "missing checksum footer")
    payload = data[:mark]
    footer = data[mark + len(_FOOTER_MARK) : -1]
    if len(footer) != 64 or any(c not in b"0123456789abcdef" for c in footer):
        raise EntryError("truncated", "garbled checksum footer")
    digest = hashlib.sha256(payload).hexdigest().encode("ascii")
    if footer != digest:
        raise EntryError("checksum", "footer does not match payload")
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise EntryError("json", str(exc))
    if not isinstance(obj, dict):
        raise EntryError("json", "payload is not an object")
    if obj.get("schema") != SCHEMA_VERSION:
        raise EntryError("schema", f"schema {obj.get('schema')!r}")
    return _entry_from_payload(obj)


def entry_from_payload(obj: object) -> StoreEntry:
    """Decode a wire-borne payload object (no checksum envelope — worker
    response frames already ride the length-checked NDJSON protocol).
    Applies the schema and shape rungs; raises :class:`EntryError`."""
    if not isinstance(obj, dict):
        raise EntryError("shape", "payload is not an object")
    if obj.get("schema") != SCHEMA_VERSION:
        raise EntryError("schema", f"schema {obj.get('schema')!r}")
    return _entry_from_payload(obj)


def _entry_from_payload(obj: Dict[str, object]) -> StoreEntry:
    fingerprint = obj.get("fingerprint")
    ir = obj.get("ir")
    elims_obj = obj.get("eliminations")
    meta = obj.get("meta")
    if (
        not isinstance(fingerprint, str)
        or not isinstance(ir, str)
        or not isinstance(elims_obj, dict)
        or not isinstance(meta, dict)
    ):
        raise EntryError("shape", "missing or mistyped top-level field")
    eliminations: Dict[str, List[Elimination]] = {}
    for name, raw_list in elims_obj.items():
        if not isinstance(name, str) or not isinstance(raw_list, list):
            raise EntryError("shape", "bad eliminations table")
        eliminations[name] = [_elimination_from(raw) for raw in raw_list]
    return StoreEntry(
        fingerprint=fingerprint, ir=ir, eliminations=eliminations, meta=meta
    )


def _elimination_from(raw: object) -> Elimination:
    if not isinstance(raw, dict):
        raise EntryError("shape", "elimination is not an object")
    check_id = raw.get("check_id")
    kind = raw.get("kind")
    array = raw.get("array")
    target = raw.get("target")
    witness = raw.get("witness")
    cert_source = raw.get("cert_source")
    pre = raw.get("pre")
    if type(check_id) is not int or kind not in ("lower", "upper"):
        raise EntryError("shape", "bad elimination check_id/kind")
    if array is not None and not isinstance(array, str):
        raise EntryError("shape", "bad elimination array")
    if not isinstance(target, dict) or not isinstance(witness, dict):
        raise EntryError("shape", "bad elimination target/witness")
    if cert_source is not None and not isinstance(cert_source, dict):
        raise EntryError("shape", "bad elimination cert_source")
    if not isinstance(pre, bool):
        raise EntryError("shape", "bad elimination pre flag")
    return Elimination(
        check_id=check_id,
        kind=kind,
        array=array,
        target=target,
        witness=witness,
        cert_source=cert_source,
        pre=pre,
    )
