"""Crash-safe persistent store for optimized IR + proof certificates.

See DESIGN.md §15 for the failure model.  Public surface:

* :class:`~repro.store.store.CertStore` — the on-disk store (atomic
  writes, zero-trust loads, quarantine, maintenance verbs);
* :func:`~repro.store.service.cached_optimize_source` — the one-call
  cached compile path;
* :func:`~repro.store.fingerprint.store_fingerprint` — the content
  address of a compilation unit;
* :class:`~repro.store.capture.StoreCapture` — the in-pipeline capture
  hook scheduled by ``CompilationSession.optimize(capture=...)``.
"""

from repro.store.capture import StoreCapture
from repro.store.entry import (
    Elimination,
    EntryError,
    StoreEntry,
    decode_entry,
    encode_entry,
    entry_from_payload,
    entry_payload,
)
from repro.store.fingerprint import (
    SCHEMA_VERSION,
    config_key,
    pipeline_id,
    source_structure_hash,
    store_fingerprint,
)
from repro.store.service import CachedOutcome, cached_optimize_source, certifying_config
from repro.store.store import CertStore, LoadResult, VerifyResult

__all__ = [
    "CachedOutcome",
    "CertStore",
    "Elimination",
    "EntryError",
    "LoadResult",
    "SCHEMA_VERSION",
    "StoreCapture",
    "StoreEntry",
    "VerifyResult",
    "cached_optimize_source",
    "certifying_config",
    "config_key",
    "decode_entry",
    "encode_entry",
    "entry_from_payload",
    "entry_payload",
    "pipeline_id",
    "source_structure_hash",
    "store_fingerprint",
]
