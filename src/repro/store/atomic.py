"""Crash-safe filesystem primitives for the certificate store.

Every durable byte the store (and the fuzz corpus) writes goes through
:func:`atomic_write_bytes`: the payload lands in a temporary file on the
same filesystem, is flushed and fsynced, and is then renamed over the
destination with ``os.replace`` — a single atomic step on POSIX.  A crash
(or a worker SIGKILL) at any instant therefore leaves either the old
entry, the new entry, or a stray ``*.tmp`` file that the store's recovery
scan deletes on the next open; it can never leave a half-written entry
under the final name.

The directory fsync after the rename makes the rename itself durable: a
power cut after ``os.replace`` but before the directory metadata reaches
disk could otherwise resurrect the old entry.  Concurrent writers racing
on one destination are safe by the same mechanism — each rename is
atomic, so the last writer wins wholesale and readers never observe a
mix of the two payloads.
"""

from __future__ import annotations

import os
import tempfile

#: Suffix of in-flight temporaries; the recovery scan removes leftovers.
TMP_SUFFIX = ".tmp"


def fsync_dir(path: str) -> None:
    """fsync a directory so a rename into it survives power loss."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes, tmp_dir: str = None) -> None:
    """Atomically replace ``path`` with ``data`` (tmp + fsync + rename).

    ``tmp_dir`` chooses where the temporary lives (it must share a
    filesystem with ``path``); by default it is the destination's own
    directory.  On any failure the temporary is unlinked and the
    destination is untouched.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    staging = os.fspath(tmp_dir) if tmp_dir is not None else directory
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=TMP_SUFFIX, dir=staging
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    fsync_dir(directory)


def atomic_write_text(path: str, text: str, tmp_dir: str = None) -> None:
    """UTF-8 text form of :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"), tmp_dir=tmp_dir)
