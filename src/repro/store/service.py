"""The cached compile path: one call, hit-or-compile-and-store.

This is the seam shared by ``repro optimize --cache-dir`` and the serve
supervisor's one-shot fallback: look the unit up, and on a miss compile
it fresh **with certification forced on** (stored entries must carry
replayable certificates — that is the property that makes loads safe),
capture the pre-removal state, and store it for next time.

A miss that cannot be stored (pass failures, a quarantined function, a
gate revert upstream, disk full) is never an error: the caller gets the
freshly compiled result and the store simply stays cold for that key.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.core.abcd import ABCDConfig, ABCDReport
from repro.store.capture import StoreCapture
from repro.store.fingerprint import store_fingerprint
from repro.store.store import CertStore


@dataclass
class CachedOutcome:
    """Result of :func:`cached_optimize_source`."""

    program: object
    #: ``None`` on a hit — there was no fresh analysis to report.
    report: Optional[ABCDReport]
    #: "hit" | "miss-stored" | "miss-unstored"
    status: str
    fingerprint: str
    #: Why a miss was not stored (``None`` when stored or hit).
    unstored_reason: Optional[str] = None

    @property
    def hit(self) -> bool:
        return self.status == "hit"


def certifying_config(config: Optional[ABCDConfig]) -> ABCDConfig:
    """The compile config for cacheable compiles: the caller's config
    with certification forced on (excluded from the fingerprint, so this
    never changes the key)."""
    config = config or ABCDConfig()
    return dataclasses.replace(config, certify=True)


def cached_optimize_source(
    store: CertStore,
    source: str,
    config: Optional[ABCDConfig] = None,
    standard_opts: bool = True,
    inline: bool = False,
    profile=None,
) -> CachedOutcome:
    """Compile+optimize ``source`` through the store.

    On a hit the returned program came from a stored entry whose every
    elimination just re-certified; on a miss it came from a fresh
    certified compile, stored when cacheable.
    """
    from repro.passes.session import CompilationSession

    config = config or ABCDConfig()
    fingerprint = store_fingerprint(
        source, config, standard_opts=standard_opts, inline=inline, profile=profile
    )
    loaded = store.load(fingerprint, config)
    if loaded.hit:
        return CachedOutcome(
            program=loaded.program,
            report=None,
            status="hit",
            fingerprint=fingerprint,
        )

    session = CompilationSession(config=certifying_config(config))
    program = session.compile(source, standard_opts=standard_opts, inline=inline)
    capture = StoreCapture()
    report = session.optimize(program, profile=profile, capture=capture)
    if report.pass_failures:
        capture.mark_uncacheable("pass failures during optimization")
    if report.quarantined_functions:
        capture.mark_uncacheable("certify quarantined a function")
    entry = capture.build_entry(fingerprint, program)
    stored = entry is not None and store.put(entry)
    return CachedOutcome(
        program=program,
        report=report,
        status="miss-stored" if stored else "miss-unstored",
        fingerprint=fingerprint,
        unstored_reason=None if stored else (capture.reason or "store write failed"),
    )
