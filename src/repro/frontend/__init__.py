"""MiniJ frontend: lexer, parser, AST, and type checker.

The frontend is the source-language substrate of the reproduction.  MiniJ
stands in for the Java programs of the original evaluation: a strongly
typed language whose array accesses require bounds checks.
"""

from repro.frontend.lexer import Lexer, tokenize
from repro.frontend.parser import Parser, parse_source
from repro.frontend.semantic import SemanticInfo, TypeChecker, check_program
from repro.frontend.types import BOOL, INT, INT_ARRAY, VOID, Type

__all__ = [
    "Lexer",
    "tokenize",
    "Parser",
    "parse_source",
    "SemanticInfo",
    "TypeChecker",
    "check_program",
    "Type",
    "INT",
    "BOOL",
    "INT_ARRAY",
    "VOID",
]
