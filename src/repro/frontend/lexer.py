"""Hand-written lexer for MiniJ source text."""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import LexError, SourceLocation
from repro.frontend.tokens import KEYWORDS, Token, TokenKind

# Two-character operators must be attempted before their one-character
# prefixes, so this table is ordered longest-first.
_TWO_CHAR_OPERATORS = {
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "&&": TokenKind.AND,
    "||": TokenKind.OR,
}

_ONE_CHAR_OPERATORS = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ":": TokenKind.COLON,
    ";": TokenKind.SEMICOLON,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "!": TokenKind.NOT,
}


class Lexer:
    """Converts MiniJ source text into a token stream.

    Supports ``//`` line comments and ``/* ... */`` block comments.
    """

    def __init__(self, source: str) -> None:
        self._source = source
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> List[Token]:
        """Lex the entire input, returning tokens terminated by EOF."""
        return list(self._iter_tokens())

    def _iter_tokens(self) -> Iterator[Token]:
        while True:
            self._skip_trivia()
            if self._at_end():
                yield Token(TokenKind.EOF, "", self._location())
                return
            yield self._next_token()

    # ------------------------------------------------------------------
    # Character-level helpers.
    # ------------------------------------------------------------------

    def _at_end(self) -> bool:
        return self._pos >= len(self._source)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= len(self._source):
            return ""
        return self._source[index]

    def _advance(self) -> str:
        ch = self._source[self._pos]
        self._pos += 1
        if ch == "\n":
            self._line += 1
            self._column = 1
        else:
            self._column += 1
        return ch

    def _location(self) -> SourceLocation:
        return SourceLocation(self._line, self._column)

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments."""
        while not self._at_end():
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while not self._at_end() and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._skip_block_comment()
            else:
                return

    def _skip_block_comment(self) -> None:
        start = self._location()
        self._advance()  # '/'
        self._advance()  # '*'
        while True:
            if self._at_end():
                raise LexError("unterminated block comment", start)
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance()
                self._advance()
                return
            self._advance()

    # ------------------------------------------------------------------
    # Token-level scanning.
    # ------------------------------------------------------------------

    def _next_token(self) -> Token:
        location = self._location()
        ch = self._peek()

        if ch.isdigit():
            return self._lex_number(location)
        if ch.isalpha() or ch == "_":
            return self._lex_ident_or_keyword(location)

        two = ch + self._peek(1)
        if two in _TWO_CHAR_OPERATORS:
            self._advance()
            self._advance()
            return Token(_TWO_CHAR_OPERATORS[two], two, location)
        if ch in _ONE_CHAR_OPERATORS:
            self._advance()
            return Token(_ONE_CHAR_OPERATORS[ch], ch, location)

        raise LexError(f"unexpected character {ch!r}", location)

    def _lex_number(self, location: SourceLocation) -> Token:
        digits = []
        while not self._at_end() and self._peek().isdigit():
            digits.append(self._advance())
        if not self._at_end() and (self._peek().isalpha() or self._peek() == "_"):
            raise LexError(
                f"identifier may not start with a digit: {''.join(digits)}{self._peek()!r}",
                location,
            )
        text = "".join(digits)
        return Token(TokenKind.INT_LITERAL, text, location, value=int(text))

    def _lex_ident_or_keyword(self, location: SourceLocation) -> Token:
        chars = []
        while not self._at_end() and (self._peek().isalnum() or self._peek() == "_"):
            chars.append(self._advance())
        text = "".join(chars)
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, location)


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source).tokenize()
