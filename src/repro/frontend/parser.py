"""Recursive-descent parser for MiniJ.

Grammar (EBNF, ``{}`` = repetition, ``[]`` = optional):

    program     ::= { function }
    function    ::= 'fn' IDENT '(' [ param { ',' param } ] ')' ':' type block
    param       ::= IDENT ':' type
    type        ::= ('int' | 'bool') [ '[' ']' ] | 'void'
    block       ::= '{' { statement } '}'
    statement   ::= let | assign_or_store_or_call | if | while | for
                  | return | break | continue
    let         ::= 'let' IDENT ':' type '=' expr ';'
    if          ::= 'if' '(' expr ')' block [ 'else' (block | if) ]
    while       ::= 'while' '(' expr ')' block
    for         ::= 'for' '(' [simple] ';' [expr] ';' [simple] ')' block
    return      ::= 'return' [ expr ] ';'
    expr        ::= or_expr
    or_expr     ::= and_expr { '||' and_expr }
    and_expr    ::= cmp_expr { '&&' cmp_expr }
    cmp_expr    ::= add_expr [ ('<'|'<='|'>'|'>='|'=='|'!=') add_expr ]
    add_expr    ::= mul_expr { ('+'|'-') mul_expr }
    mul_expr    ::= unary { ('*'|'/'|'%') unary }
    unary       ::= ('-'|'!') unary | postfix
    postfix     ::= primary { '[' expr ']' }
    primary     ::= INT | 'true' | 'false' | IDENT [ '(' args ')' ]
                  | 'len' '(' expr ')' | 'new' 'int' '[' expr ']'
                  | '(' expr ')'
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import NestingLimitError, ParseError
from repro.frontend import ast
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import Token, TokenKind
from repro.frontend.types import BOOL, INT, INT_ARRAY, VOID, Type

_COMPARISON_OPS = {
    TokenKind.LT: "<",
    TokenKind.LE: "<=",
    TokenKind.GT: ">",
    TokenKind.GE: ">=",
    TokenKind.EQ: "==",
    TokenKind.NE: "!=",
}

_ADDITIVE_OPS = {TokenKind.PLUS: "+", TokenKind.MINUS: "-"}
_MULTIPLICATIVE_OPS = {TokenKind.STAR: "*", TokenKind.SLASH: "/", TokenKind.PERCENT: "%"}


class Parser:
    """Parses a token stream into a :class:`repro.frontend.ast.ProgramAST`."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # ------------------------------------------------------------------
    # Token helpers.
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _at(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _expect(self, kind: TokenKind, context: str) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise ParseError(
                f"expected {kind.value!r} {context}, found {token.text!r}",
                token.location,
            )
        return self._advance()

    def _match(self, kind: TokenKind) -> Optional[Token]:
        if self._at(kind):
            return self._advance()
        return None

    # ------------------------------------------------------------------
    # Declarations.
    # ------------------------------------------------------------------

    def parse_program(self) -> ast.ProgramAST:
        functions = []
        while not self._at(TokenKind.EOF):
            functions.append(self._parse_function())
        return ast.ProgramAST(functions)

    def _parse_function(self) -> ast.FunctionDecl:
        fn_token = self._expect(TokenKind.KW_FN, "to start a function")
        name = self._expect(TokenKind.IDENT, "after 'fn'").text
        self._expect(TokenKind.LPAREN, "after function name")
        params: List[ast.Param] = []
        if not self._at(TokenKind.RPAREN):
            params.append(self._parse_param())
            while self._match(TokenKind.COMMA):
                params.append(self._parse_param())
        self._expect(TokenKind.RPAREN, "after parameter list")
        self._expect(TokenKind.COLON, "before return type")
        return_type = self._parse_type(allow_void=True)
        body = self._parse_block()
        return ast.FunctionDecl(name, params, return_type, body, fn_token.location)

    def _parse_param(self) -> ast.Param:
        name_token = self._expect(TokenKind.IDENT, "as parameter name")
        self._expect(TokenKind.COLON, "after parameter name")
        param_type = self._parse_type(allow_void=False)
        return ast.Param(name_token.text, param_type, name_token.location)

    def _parse_type(self, allow_void: bool) -> Type:
        token = self._peek()
        if token.kind is TokenKind.KW_VOID:
            if not allow_void:
                raise ParseError("'void' is only valid as a return type", token.location)
            self._advance()
            return VOID
        if token.kind is TokenKind.KW_INT:
            self._advance()
            if self._match(TokenKind.LBRACKET):
                self._expect(TokenKind.RBRACKET, "to close array type")
                return INT_ARRAY
            return INT
        if token.kind is TokenKind.KW_BOOL:
            self._advance()
            return BOOL
        raise ParseError(f"expected a type, found {token.text!r}", token.location)

    # ------------------------------------------------------------------
    # Statements.
    # ------------------------------------------------------------------

    def _parse_block(self) -> List[ast.Stmt]:
        self._expect(TokenKind.LBRACE, "to open a block")
        statements: List[ast.Stmt] = []
        while not self._at(TokenKind.RBRACE):
            if self._at(TokenKind.EOF):
                raise ParseError("unterminated block", self._peek().location)
            statements.append(self._parse_statement())
        self._expect(TokenKind.RBRACE, "to close a block")
        return statements

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if token.kind is TokenKind.KW_LET:
            return self._parse_let()
        if token.kind is TokenKind.KW_IF:
            return self._parse_if()
        if token.kind is TokenKind.KW_WHILE:
            return self._parse_while()
        if token.kind is TokenKind.KW_FOR:
            return self._parse_for()
        if token.kind is TokenKind.KW_RETURN:
            return self._parse_return()
        if token.kind is TokenKind.KW_BREAK:
            self._advance()
            self._expect(TokenKind.SEMICOLON, "after 'break'")
            return ast.BreakStmt(token.location)
        if token.kind is TokenKind.KW_CONTINUE:
            self._advance()
            self._expect(TokenKind.SEMICOLON, "after 'continue'")
            return ast.ContinueStmt(token.location)
        stmt = self._parse_simple_statement()
        self._expect(TokenKind.SEMICOLON, "after statement")
        return stmt

    def _parse_let(self) -> ast.Stmt:
        let_token = self._advance()
        name = self._expect(TokenKind.IDENT, "after 'let'").text
        self._expect(TokenKind.COLON, "after variable name")
        declared = self._parse_type(allow_void=False)
        self._expect(TokenKind.ASSIGN, "in let binding")
        value = self._parse_expr()
        self._expect(TokenKind.SEMICOLON, "after let binding")
        return ast.LetStmt(let_token.location, name, declared, value)

    def _parse_simple_statement(self) -> ast.Stmt:
        """Parse an assignment, array store, or expression statement
        (without the trailing semicolon) — the forms allowed in ``for``
        headers."""
        token = self._peek()
        if token.kind is TokenKind.IDENT:
            # Could be: call, assignment, or array store.  Disambiguate by
            # parsing the postfix expression and looking at what follows.
            expr = self._parse_postfix()
            if self._match(TokenKind.ASSIGN):
                value = self._parse_expr()
                if isinstance(expr, ast.VarRef):
                    return ast.AssignStmt(token.location, expr.name, value)
                if isinstance(expr, ast.ArrayIndex):
                    return ast.ArrayStoreStmt(
                        token.location, expr.array, expr.index, value
                    )
                raise ParseError("invalid assignment target", token.location)
            if isinstance(expr, ast.Call):
                return ast.ExprStmt(token.location, expr)
            raise ParseError(
                "expected '=' or a call in statement position", token.location
            )
        raise ParseError(f"expected a statement, found {token.text!r}", token.location)

    def _parse_if(self) -> ast.Stmt:
        if_token = self._advance()
        self._expect(TokenKind.LPAREN, "after 'if'")
        condition = self._parse_expr()
        self._expect(TokenKind.RPAREN, "after if condition")
        then_body = self._parse_block()
        else_body: List[ast.Stmt] = []
        if self._match(TokenKind.KW_ELSE):
            if self._at(TokenKind.KW_IF):
                else_body = [self._parse_if()]
            else:
                else_body = self._parse_block()
        return ast.IfStmt(if_token.location, condition, then_body, else_body)

    def _parse_while(self) -> ast.Stmt:
        while_token = self._advance()
        self._expect(TokenKind.LPAREN, "after 'while'")
        condition = self._parse_expr()
        self._expect(TokenKind.RPAREN, "after while condition")
        body = self._parse_block()
        return ast.WhileStmt(while_token.location, condition, body)

    def _parse_for(self) -> ast.Stmt:
        for_token = self._advance()
        self._expect(TokenKind.LPAREN, "after 'for'")
        init: Optional[ast.Stmt] = None
        if not self._at(TokenKind.SEMICOLON):
            if self._at(TokenKind.KW_LET):
                # Reuse let parsing but without consuming a second semicolon.
                let_token = self._advance()
                name = self._expect(TokenKind.IDENT, "after 'let'").text
                self._expect(TokenKind.COLON, "after variable name")
                declared = self._parse_type(allow_void=False)
                self._expect(TokenKind.ASSIGN, "in let binding")
                value = self._parse_expr()
                init = ast.LetStmt(let_token.location, name, declared, value)
            else:
                init = self._parse_simple_statement()
        self._expect(TokenKind.SEMICOLON, "after for-loop initializer")
        condition: Optional[ast.Expr] = None
        if not self._at(TokenKind.SEMICOLON):
            condition = self._parse_expr()
        self._expect(TokenKind.SEMICOLON, "after for-loop condition")
        step: Optional[ast.Stmt] = None
        if not self._at(TokenKind.RPAREN):
            step = self._parse_simple_statement()
        self._expect(TokenKind.RPAREN, "after for-loop header")
        body = self._parse_block()
        return ast.ForStmt(for_token.location, init, condition, step, body)

    def _parse_return(self) -> ast.Stmt:
        return_token = self._advance()
        value: Optional[ast.Expr] = None
        if not self._at(TokenKind.SEMICOLON):
            value = self._parse_expr()
        self._expect(TokenKind.SEMICOLON, "after return")
        return ast.ReturnStmt(return_token.location, value)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing).
    # ------------------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        expr = self._parse_and()
        while self._at(TokenKind.OR):
            op_token = self._advance()
            rhs = self._parse_and()
            expr = ast.BinaryOp(op_token.location, "||", expr, rhs)
        return expr

    def _parse_and(self) -> ast.Expr:
        expr = self._parse_comparison()
        while self._at(TokenKind.AND):
            op_token = self._advance()
            rhs = self._parse_comparison()
            expr = ast.BinaryOp(op_token.location, "&&", expr, rhs)
        return expr

    def _parse_comparison(self) -> ast.Expr:
        expr = self._parse_additive()
        kind = self._peek().kind
        if kind in _COMPARISON_OPS:
            op_token = self._advance()
            rhs = self._parse_additive()
            expr = ast.BinaryOp(op_token.location, _COMPARISON_OPS[kind], expr, rhs)
        return expr

    def _parse_additive(self) -> ast.Expr:
        expr = self._parse_multiplicative()
        while self._peek().kind in _ADDITIVE_OPS:
            op_token = self._advance()
            rhs = self._parse_multiplicative()
            expr = ast.BinaryOp(
                op_token.location, _ADDITIVE_OPS[op_token.kind], expr, rhs
            )
        return expr

    def _parse_multiplicative(self) -> ast.Expr:
        expr = self._parse_unary()
        while self._peek().kind in _MULTIPLICATIVE_OPS:
            op_token = self._advance()
            rhs = self._parse_unary()
            expr = ast.BinaryOp(
                op_token.location, _MULTIPLICATIVE_OPS[op_token.kind], expr, rhs
            )
        return expr

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.MINUS:
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(token.location, "-", operand)
        if token.kind is TokenKind.NOT:
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(token.location, "!", operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while self._at(TokenKind.LBRACKET):
            bracket = self._advance()
            index = self._parse_expr()
            self._expect(TokenKind.RBRACKET, "to close array index")
            expr = ast.ArrayIndex(bracket.location, expr, index)
        return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.INT_LITERAL:
            self._advance()
            assert token.value is not None
            return ast.IntLiteral(token.location, token.value)
        if token.kind is TokenKind.KW_TRUE:
            self._advance()
            return ast.BoolLiteral(token.location, True)
        if token.kind is TokenKind.KW_FALSE:
            self._advance()
            return ast.BoolLiteral(token.location, False)
        if token.kind is TokenKind.KW_LEN:
            self._advance()
            self._expect(TokenKind.LPAREN, "after 'len'")
            array = self._parse_expr()
            self._expect(TokenKind.RPAREN, "after len argument")
            return ast.ArrayLength(token.location, array)
        if token.kind is TokenKind.KW_NEW:
            self._advance()
            self._expect(TokenKind.KW_INT, "after 'new'")
            self._expect(TokenKind.LBRACKET, "in array allocation")
            length = self._parse_expr()
            self._expect(TokenKind.RBRACKET, "to close array allocation")
            return ast.NewArray(token.location, length)
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self._at(TokenKind.LPAREN):
                return self._parse_call(token)
            return ast.VarRef(token.location, token.text)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenKind.RPAREN, "to close parenthesized expression")
            return expr
        raise ParseError(f"expected an expression, found {token.text!r}", token.location)

    def _parse_call(self, name_token: Token) -> ast.Expr:
        self._expect(TokenKind.LPAREN, "in call")
        args: List[ast.Expr] = []
        if not self._at(TokenKind.RPAREN):
            args.append(self._parse_expr())
            while self._match(TokenKind.COMMA):
                args.append(self._parse_expr())
        self._expect(TokenKind.RPAREN, "to close call")
        return ast.Call(name_token.location, name_token.text, args)


def parse_source(source: str) -> ast.ProgramAST:
    """Lex and parse MiniJ ``source`` into an AST.

    Expression grammar recursion is bounded by the host stack; a program
    nested deeply enough to blow it is reported as a
    :class:`~repro.errors.NestingLimitError` (a :class:`CompileError`),
    never as a raw :class:`RecursionError`.
    """
    try:
        return Parser(tokenize(source)).parse_program()
    except RecursionError:
        raise NestingLimitError(
            "program nesting exceeds the parser's recursion budget"
        ) from None
