"""Token definitions for the MiniJ language.

MiniJ is the small Java-like source language this reproduction uses as a
stand-in for Java bytecode: it has ``int``/``bool`` scalars, ``int[]``
arrays, functions with recursion, and structured control flow.  Array
accesses compile to explicit bounds-check instructions in the IR, which is
what the ABCD algorithm consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SourceLocation


class TokenKind(enum.Enum):
    """All lexical token kinds of MiniJ."""

    # Literals and identifiers.
    INT_LITERAL = "int_literal"
    IDENT = "ident"

    # Keywords.
    KW_FN = "fn"
    KW_LET = "let"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_FOR = "for"
    KW_RETURN = "return"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    KW_TRUE = "true"
    KW_FALSE = "false"
    KW_INT = "int"
    KW_BOOL = "bool"
    KW_VOID = "void"
    KW_NEW = "new"
    KW_LEN = "len"

    # Punctuation and operators.
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    COLON = ":"
    SEMICOLON = ";"
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="
    AND = "&&"
    OR = "||"
    NOT = "!"

    EOF = "eof"


#: Reserved words mapped to their token kinds.
KEYWORDS = {
    "fn": TokenKind.KW_FN,
    "let": TokenKind.KW_LET,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "while": TokenKind.KW_WHILE,
    "for": TokenKind.KW_FOR,
    "return": TokenKind.KW_RETURN,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
    "true": TokenKind.KW_TRUE,
    "false": TokenKind.KW_FALSE,
    "int": TokenKind.KW_INT,
    "bool": TokenKind.KW_BOOL,
    "void": TokenKind.KW_VOID,
    "new": TokenKind.KW_NEW,
    "len": TokenKind.KW_LEN,
}


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``text`` is the exact source spelling; ``value`` is the parsed integer
    for :data:`TokenKind.INT_LITERAL` tokens and ``None`` otherwise.
    """

    kind: TokenKind
    text: str
    location: SourceLocation
    value: "int | None" = None

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r}@{self.location})"
