"""Semantic analysis (scoping and type checking) for MiniJ ASTs.

The checker validates the program and produces a :class:`SemanticInfo`
object that later phases (lowering) consult:

* ``expr_types`` — the type of every expression node (keyed by ``id()``);
* ``signatures`` — parameter/return types of every function;
* per-statement resolution of variable declarations.

MiniJ scoping rules: each function body is one flat scope per lexical block;
inner blocks may shadow is **not** allowed (it keeps lowering and the SSA
construction honest and matches the restricted Java subsets used in bounds-
check literature); a variable must be declared (``let``) before use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import NestingLimitError, TypeCheckError
from repro.frontend import ast
from repro.frontend.types import BOOL, INT, INT_ARRAY, VOID, Type

_ARITHMETIC_OPS = {"+", "-", "*", "/", "%"}
_COMPARISON_OPS = {"<", "<=", ">", ">=", "==", "!="}
_BOOLEAN_OPS = {"&&", "||"}


@dataclass
class FunctionSignature:
    """Parameter and return types of a MiniJ function."""

    name: str
    param_types: List[Type]
    return_type: Type


@dataclass
class SemanticInfo:
    """The result of semantic analysis over a program."""

    signatures: Dict[str, FunctionSignature]
    expr_types: Dict[int, Type] = field(default_factory=dict)
    var_types: Dict[Tuple[str, str], Type] = field(default_factory=dict)

    def type_of(self, expr: ast.Expr) -> Type:
        """Return the checked type of ``expr``."""
        return self.expr_types[id(expr)]

    def var_type(self, function_name: str, var_name: str) -> Type:
        """Return the declared type of a local/parameter."""
        return self.var_types[(function_name, var_name)]


class _Scope:
    """A stack of lexical blocks mapping names to types."""

    def __init__(self) -> None:
        self._blocks: List[Dict[str, Type]] = [{}]

    def push(self) -> None:
        self._blocks.append({})

    def pop(self) -> None:
        self._blocks.pop()

    def declare(self, name: str, var_type: Type, location) -> None:
        for block in self._blocks:
            if name in block:
                raise TypeCheckError(
                    f"variable {name!r} is already declared in this function "
                    "(MiniJ forbids shadowing)",
                    location,
                )
        self._blocks[-1][name] = var_type

    def lookup(self, name: str) -> Optional[Type]:
        for block in reversed(self._blocks):
            if name in block:
                return block[name]
        return None


class TypeChecker:
    """Checks a :class:`ProgramAST` and accumulates a :class:`SemanticInfo`."""

    def __init__(self, program: ast.ProgramAST) -> None:
        self._program = program
        self._info = SemanticInfo(signatures={})
        self._current: Optional[ast.FunctionDecl] = None
        self._scope = _Scope()
        self._loop_depth = 0

    def check(self) -> SemanticInfo:
        """Check the whole program; raises :class:`TypeCheckError` on the
        first violation."""
        seen = set()
        for fn in self._program.functions:
            if fn.name in seen:
                raise TypeCheckError(f"duplicate function {fn.name!r}", fn.location)
            seen.add(fn.name)
            self._info.signatures[fn.name] = FunctionSignature(
                fn.name, [p.type for p in fn.params], fn.return_type
            )
        for fn in self._program.functions:
            self._check_function(fn)
        return self._info

    # ------------------------------------------------------------------
    # Functions and statements.
    # ------------------------------------------------------------------

    def _check_function(self, fn: ast.FunctionDecl) -> None:
        self._current = fn
        self._scope = _Scope()
        self._loop_depth = 0
        seen_params = set()
        for param in fn.params:
            if param.name in seen_params:
                raise TypeCheckError(
                    f"duplicate parameter {param.name!r}", param.location
                )
            seen_params.add(param.name)
            self._scope.declare(param.name, param.type, param.location)
            self._info.var_types[(fn.name, param.name)] = param.type
        self._check_block(fn.body)
        if fn.return_type is not VOID and not self._block_always_returns(fn.body):
            raise TypeCheckError(
                f"function {fn.name!r} may reach the end of its body without "
                f"returning a {fn.return_type}",
                fn.location,
            )

    def _block_always_returns(self, body: List[ast.Stmt]) -> bool:
        """Conservative reachability: does every path through ``body`` end
        in a return?"""
        for stmt in body:
            if isinstance(stmt, ast.ReturnStmt):
                return True
            if isinstance(stmt, ast.IfStmt):
                if (
                    stmt.else_body
                    and self._block_always_returns(stmt.then_body)
                    and self._block_always_returns(stmt.else_body)
                ):
                    return True
            if isinstance(stmt, ast.WhileStmt):
                # ``while (true)`` with no break never falls through.
                if (
                    isinstance(stmt.condition, ast.BoolLiteral)
                    and stmt.condition.value
                    and not self._contains_break(stmt.body)
                ):
                    return True
        return False

    def _contains_break(self, body: List[ast.Stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.BreakStmt):
                return True
            if isinstance(stmt, ast.IfStmt):
                if self._contains_break(stmt.then_body) or self._contains_break(
                    stmt.else_body
                ):
                    return True
            # break inside a nested loop binds to that loop, so while/for
            # bodies are opaque here.
        return False

    def _check_block(self, body: List[ast.Stmt]) -> None:
        self._scope.push()
        for stmt in body:
            self._check_statement(stmt)
        self._scope.pop()

    def _check_statement(self, stmt: ast.Stmt) -> None:
        assert self._current is not None
        if isinstance(stmt, ast.LetStmt):
            value_type = self._check_expr(stmt.value)
            if value_type is not stmt.declared_type:
                raise TypeCheckError(
                    f"cannot initialize {stmt.name!r}: declared {stmt.declared_type}, "
                    f"initializer is {value_type}",
                    stmt.location,
                )
            self._scope.declare(stmt.name, stmt.declared_type, stmt.location)
            self._info.var_types[(self._current.name, stmt.name)] = stmt.declared_type
        elif isinstance(stmt, ast.AssignStmt):
            var_type = self._scope.lookup(stmt.name)
            if var_type is None:
                raise TypeCheckError(f"undeclared variable {stmt.name!r}", stmt.location)
            value_type = self._check_expr(stmt.value)
            if value_type is not var_type:
                raise TypeCheckError(
                    f"cannot assign {value_type} to {stmt.name!r} of type {var_type}",
                    stmt.location,
                )
        elif isinstance(stmt, ast.ArrayStoreStmt):
            array_type = self._check_expr(stmt.array)
            if array_type is not INT_ARRAY:
                raise TypeCheckError(
                    f"indexed store into non-array of type {array_type}", stmt.location
                )
            index_type = self._check_expr(stmt.index)
            if index_type is not INT:
                raise TypeCheckError(
                    f"array index must be int, found {index_type}", stmt.location
                )
            value_type = self._check_expr(stmt.value)
            if value_type is not INT:
                raise TypeCheckError(
                    f"array element must be int, found {value_type}", stmt.location
                )
        elif isinstance(stmt, ast.IfStmt):
            self._require_bool(stmt.condition, "if condition")
            self._check_block(stmt.then_body)
            self._check_block(stmt.else_body)
        elif isinstance(stmt, ast.WhileStmt):
            self._require_bool(stmt.condition, "while condition")
            self._loop_depth += 1
            self._check_block(stmt.body)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.ForStmt):
            self._scope.push()
            if stmt.init is not None:
                self._check_statement(stmt.init)
            if stmt.condition is not None:
                self._require_bool(stmt.condition, "for condition")
            if stmt.step is not None:
                self._check_statement(stmt.step)
            self._loop_depth += 1
            self._check_block(stmt.body)
            self._loop_depth -= 1
            self._scope.pop()
        elif isinstance(stmt, ast.ReturnStmt):
            expected = self._current.return_type
            if stmt.value is None:
                if expected is not VOID:
                    raise TypeCheckError(
                        f"return without value in function returning {expected}",
                        stmt.location,
                    )
            else:
                actual = self._check_expr(stmt.value)
                if expected is VOID:
                    raise TypeCheckError(
                        "return with a value in a void function", stmt.location
                    )
                if actual is not expected:
                    raise TypeCheckError(
                        f"return type mismatch: expected {expected}, found {actual}",
                        stmt.location,
                    )
        elif isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
            if self._loop_depth == 0:
                keyword = "break" if isinstance(stmt, ast.BreakStmt) else "continue"
                raise TypeCheckError(f"{keyword!r} outside of a loop", stmt.location)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, allow_void=True)
        else:  # pragma: no cover - exhaustive over AST statements
            raise TypeCheckError(f"unknown statement {type(stmt).__name__}", stmt.location)

    def _require_bool(self, expr: ast.Expr, what: str) -> None:
        found = self._check_expr(expr)
        if found is not BOOL:
            raise TypeCheckError(f"{what} must be bool, found {found}", expr.location)

    # ------------------------------------------------------------------
    # Expressions.
    # ------------------------------------------------------------------

    def _check_expr(self, expr: ast.Expr, allow_void: bool = False) -> Type:
        result = self._check_expr_inner(expr, allow_void)
        self._info.expr_types[id(expr)] = result
        return result

    def _check_expr_inner(self, expr: ast.Expr, allow_void: bool) -> Type:
        if isinstance(expr, ast.IntLiteral):
            return INT
        if isinstance(expr, ast.BoolLiteral):
            return BOOL
        if isinstance(expr, ast.VarRef):
            var_type = self._scope.lookup(expr.name)
            if var_type is None:
                raise TypeCheckError(f"undeclared variable {expr.name!r}", expr.location)
            return var_type
        if isinstance(expr, ast.UnaryOp):
            operand = self._check_expr(expr.operand)
            if expr.op == "-":
                if operand is not INT:
                    raise TypeCheckError(
                        f"unary '-' needs int, found {operand}", expr.location
                    )
                return INT
            if expr.op == "!":
                if operand is not BOOL:
                    raise TypeCheckError(
                        f"'!' needs bool, found {operand}", expr.location
                    )
                return BOOL
            raise TypeCheckError(f"unknown unary operator {expr.op!r}", expr.location)
        if isinstance(expr, ast.BinaryOp):
            return self._check_binary(expr)
        if isinstance(expr, ast.ArrayIndex):
            array_type = self._check_expr(expr.array)
            if array_type is not INT_ARRAY:
                raise TypeCheckError(
                    f"cannot index non-array of type {array_type}", expr.location
                )
            index_type = self._check_expr(expr.index)
            if index_type is not INT:
                raise TypeCheckError(
                    f"array index must be int, found {index_type}", expr.location
                )
            return INT
        if isinstance(expr, ast.ArrayLength):
            array_type = self._check_expr(expr.array)
            if array_type is not INT_ARRAY:
                raise TypeCheckError(
                    f"len() needs an array, found {array_type}", expr.location
                )
            return INT
        if isinstance(expr, ast.NewArray):
            length_type = self._check_expr(expr.length)
            if length_type is not INT:
                raise TypeCheckError(
                    f"array length must be int, found {length_type}", expr.location
                )
            return INT_ARRAY
        if isinstance(expr, ast.Call):
            signature = self._info.signatures.get(expr.callee)
            if signature is None:
                raise TypeCheckError(f"unknown function {expr.callee!r}", expr.location)
            if len(expr.args) != len(signature.param_types):
                raise TypeCheckError(
                    f"{expr.callee!r} expects {len(signature.param_types)} "
                    f"argument(s), got {len(expr.args)}",
                    expr.location,
                )
            for arg, expected in zip(expr.args, signature.param_types):
                actual = self._check_expr(arg)
                if actual is not expected:
                    raise TypeCheckError(
                        f"argument to {expr.callee!r}: expected {expected}, "
                        f"found {actual}",
                        arg.location,
                    )
            if signature.return_type is VOID and not allow_void:
                raise TypeCheckError(
                    f"void function {expr.callee!r} used as a value", expr.location
                )
            return signature.return_type
        raise TypeCheckError(  # pragma: no cover - exhaustive over AST
            f"unknown expression {type(expr).__name__}", expr.location
        )

    def _check_binary(self, expr: ast.BinaryOp) -> Type:
        lhs = self._check_expr(expr.lhs)
        rhs = self._check_expr(expr.rhs)
        if expr.op in _ARITHMETIC_OPS:
            if lhs is not INT or rhs is not INT:
                raise TypeCheckError(
                    f"operator {expr.op!r} needs int operands, found {lhs} and {rhs}",
                    expr.location,
                )
            return INT
        if expr.op in _COMPARISON_OPS:
            if expr.op in ("==", "!="):
                if lhs is not rhs or lhs is INT_ARRAY:
                    raise TypeCheckError(
                        f"operator {expr.op!r} needs matching scalar operands, "
                        f"found {lhs} and {rhs}",
                        expr.location,
                    )
            else:
                if lhs is not INT or rhs is not INT:
                    raise TypeCheckError(
                        f"operator {expr.op!r} needs int operands, found {lhs} and {rhs}",
                        expr.location,
                    )
            return BOOL
        if expr.op in _BOOLEAN_OPS:
            if lhs is not BOOL or rhs is not BOOL:
                raise TypeCheckError(
                    f"operator {expr.op!r} needs bool operands, found {lhs} and {rhs}",
                    expr.location,
                )
            return BOOL
        raise TypeCheckError(f"unknown operator {expr.op!r}", expr.location)


def check_program(program: ast.ProgramAST) -> SemanticInfo:
    """Type-check ``program`` and return the semantic information.

    Like the parser, the checker recurses per nesting level; a program
    deep enough to exhaust the host stack is rejected with
    :class:`~repro.errors.NestingLimitError` instead of leaking a raw
    :class:`RecursionError`.
    """
    try:
        return TypeChecker(program).check()
    except RecursionError:
        raise NestingLimitError(
            "program nesting exceeds the type checker's recursion budget"
        ) from None
