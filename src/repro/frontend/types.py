"""The MiniJ type system: ``int``, ``bool``, ``int[]``, and ``void``.

Types are singletons compared by identity; use :data:`INT`, :data:`BOOL`,
:data:`INT_ARRAY`, and :data:`VOID`.
"""

from __future__ import annotations


class Type:
    """A MiniJ type.  Instances are interned singletons."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"Type({self.name})"

    def __str__(self) -> str:
        return self.name

    @property
    def is_array(self) -> bool:
        return self is INT_ARRAY

    @property
    def is_scalar(self) -> bool:
        return self is INT or self is BOOL


INT = Type("int")
BOOL = Type("bool")
INT_ARRAY = Type("int[]")
VOID = Type("void")

#: All nameable types, keyed by surface syntax.
NAMED_TYPES = {
    "int": INT,
    "bool": BOOL,
    "int[]": INT_ARRAY,
    "void": VOID,
}
