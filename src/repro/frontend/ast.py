"""Abstract syntax tree for MiniJ.

The tree is deliberately small: expressions, statements, functions, and a
program node.  Every node carries a :class:`SourceLocation` so later phases
can report precise diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import SourceLocation
from repro.frontend.types import Type


# ----------------------------------------------------------------------
# Expressions.
# ----------------------------------------------------------------------


@dataclass
class Expr:
    """Base class of all expression nodes."""

    location: SourceLocation


@dataclass
class IntLiteral(Expr):
    value: int


@dataclass
class BoolLiteral(Expr):
    value: bool


@dataclass
class VarRef(Expr):
    name: str


@dataclass
class UnaryOp(Expr):
    """``-x`` or ``!x``."""

    op: str
    operand: Expr


@dataclass
class BinaryOp(Expr):
    """Arithmetic (``+ - * / %``), comparison (``< <= > >= == !=``), or
    short-circuit boolean (``&& ||``) operation."""

    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class ArrayIndex(Expr):
    """``a[i]`` used as a value (an array load)."""

    array: Expr
    index: Expr


@dataclass
class ArrayLength(Expr):
    """``len(a)``."""

    array: Expr


@dataclass
class NewArray(Expr):
    """``new int[n]``."""

    length: Expr


@dataclass
class Call(Expr):
    """``f(a, b, ...)``."""

    callee: str
    args: List[Expr]


# ----------------------------------------------------------------------
# Statements.
# ----------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class of all statement nodes."""

    location: SourceLocation


@dataclass
class LetStmt(Stmt):
    """``let x: T = expr;`` — declares and initializes a local."""

    name: str
    declared_type: Type
    value: Expr


@dataclass
class AssignStmt(Stmt):
    """``x = expr;``."""

    name: str
    value: Expr


@dataclass
class ArrayStoreStmt(Stmt):
    """``a[i] = expr;``."""

    array: Expr
    index: Expr
    value: Expr


@dataclass
class IfStmt(Stmt):
    condition: Expr
    then_body: List[Stmt]
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class WhileStmt(Stmt):
    condition: Expr
    body: List[Stmt]


@dataclass
class ForStmt(Stmt):
    """``for (init; cond; step) body`` — desugared to a while loop during
    lowering.  ``init`` and ``step`` are optional simple statements."""

    init: Optional[Stmt]
    condition: Optional[Expr]
    step: Optional[Stmt]
    body: List[Stmt]


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr]


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for its side effects (a call)."""

    expr: Expr


# ----------------------------------------------------------------------
# Declarations.
# ----------------------------------------------------------------------


@dataclass
class Param:
    """A function parameter ``name: type``."""

    name: str
    type: Type
    location: SourceLocation


@dataclass
class FunctionDecl:
    """``fn name(params): ret_type { body }``."""

    name: str
    params: List[Param]
    return_type: Type
    body: List[Stmt]
    location: SourceLocation


@dataclass
class ProgramAST:
    """A whole MiniJ compilation unit: a list of function declarations."""

    functions: List[FunctionDecl]

    def function(self, name: str) -> FunctionDecl:
        """Look up a function declaration by name (raises ``KeyError``)."""
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)
