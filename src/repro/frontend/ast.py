"""Abstract syntax tree for MiniJ.

The tree is deliberately small: expressions, statements, functions, and a
program node.  Every node carries a :class:`SourceLocation` so later phases
can report precise diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import SourceLocation
from repro.frontend.types import Type


# ----------------------------------------------------------------------
# Expressions.
# ----------------------------------------------------------------------


@dataclass
class Expr:
    """Base class of all expression nodes."""

    location: SourceLocation


@dataclass
class IntLiteral(Expr):
    value: int


@dataclass
class BoolLiteral(Expr):
    value: bool


@dataclass
class VarRef(Expr):
    name: str


@dataclass
class UnaryOp(Expr):
    """``-x`` or ``!x``."""

    op: str
    operand: Expr


@dataclass
class BinaryOp(Expr):
    """Arithmetic (``+ - * / %``), comparison (``< <= > >= == !=``), or
    short-circuit boolean (``&& ||``) operation."""

    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class ArrayIndex(Expr):
    """``a[i]`` used as a value (an array load)."""

    array: Expr
    index: Expr


@dataclass
class ArrayLength(Expr):
    """``len(a)``."""

    array: Expr


@dataclass
class NewArray(Expr):
    """``new int[n]``."""

    length: Expr


@dataclass
class Call(Expr):
    """``f(a, b, ...)``."""

    callee: str
    args: List[Expr]


# ----------------------------------------------------------------------
# Statements.
# ----------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class of all statement nodes."""

    location: SourceLocation


@dataclass
class LetStmt(Stmt):
    """``let x: T = expr;`` — declares and initializes a local."""

    name: str
    declared_type: Type
    value: Expr


@dataclass
class AssignStmt(Stmt):
    """``x = expr;``."""

    name: str
    value: Expr


@dataclass
class ArrayStoreStmt(Stmt):
    """``a[i] = expr;``."""

    array: Expr
    index: Expr
    value: Expr


@dataclass
class IfStmt(Stmt):
    condition: Expr
    then_body: List[Stmt]
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class WhileStmt(Stmt):
    condition: Expr
    body: List[Stmt]


@dataclass
class ForStmt(Stmt):
    """``for (init; cond; step) body`` — desugared to a while loop during
    lowering.  ``init`` and ``step`` are optional simple statements."""

    init: Optional[Stmt]
    condition: Optional[Expr]
    step: Optional[Stmt]
    body: List[Stmt]


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr]


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for its side effects (a call)."""

    expr: Expr


# ----------------------------------------------------------------------
# Declarations.
# ----------------------------------------------------------------------


@dataclass
class Param:
    """A function parameter ``name: type``."""

    name: str
    type: Type
    location: SourceLocation


@dataclass
class FunctionDecl:
    """``fn name(params): ret_type { body }``."""

    name: str
    params: List[Param]
    return_type: Type
    body: List[Stmt]
    location: SourceLocation


@dataclass
class ProgramAST:
    """A whole MiniJ compilation unit: a list of function declarations."""

    functions: List[FunctionDecl]

    def function(self, name: str) -> FunctionDecl:
        """Look up a function declaration by name (raises ``KeyError``)."""
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)

    def clone(self) -> "ProgramAST":
        """Structural deep copy of the tree.

        Node objects and the statement/argument lists are fresh (so a
        mutation of the clone never leaks into the original), while
        :class:`~repro.errors.SourceLocation` and
        :class:`~repro.frontend.types.Type` instances are shared —
        locations are immutable in practice, and types are interned
        singletons compared by identity, which a ``copy.deepcopy``
        would silently break.
        """
        return ProgramAST([_clone_function(fn) for fn in self.functions])


def _clone_function(fn: FunctionDecl) -> FunctionDecl:
    return FunctionDecl(
        name=fn.name,
        params=[Param(p.name, p.type, p.location) for p in fn.params],
        return_type=fn.return_type,
        body=[_clone_stmt(s) for s in fn.body],
        location=fn.location,
    )


def _clone_stmt(stmt: Stmt) -> Stmt:
    loc = stmt.location
    if isinstance(stmt, LetStmt):
        return LetStmt(loc, stmt.name, stmt.declared_type, _clone_expr(stmt.value))
    if isinstance(stmt, AssignStmt):
        return AssignStmt(loc, stmt.name, _clone_expr(stmt.value))
    if isinstance(stmt, ArrayStoreStmt):
        return ArrayStoreStmt(
            loc,
            _clone_expr(stmt.array),
            _clone_expr(stmt.index),
            _clone_expr(stmt.value),
        )
    if isinstance(stmt, IfStmt):
        return IfStmt(
            loc,
            _clone_expr(stmt.condition),
            [_clone_stmt(s) for s in stmt.then_body],
            [_clone_stmt(s) for s in stmt.else_body],
        )
    if isinstance(stmt, WhileStmt):
        return WhileStmt(
            loc,
            _clone_expr(stmt.condition),
            [_clone_stmt(s) for s in stmt.body],
        )
    if isinstance(stmt, ForStmt):
        return ForStmt(
            loc,
            _clone_stmt(stmt.init) if stmt.init is not None else None,
            _clone_expr(stmt.condition) if stmt.condition is not None else None,
            _clone_stmt(stmt.step) if stmt.step is not None else None,
            [_clone_stmt(s) for s in stmt.body],
        )
    if isinstance(stmt, ReturnStmt):
        return ReturnStmt(
            loc, _clone_expr(stmt.value) if stmt.value is not None else None
        )
    if isinstance(stmt, BreakStmt):
        return BreakStmt(loc)
    if isinstance(stmt, ContinueStmt):
        return ContinueStmt(loc)
    if isinstance(stmt, ExprStmt):
        return ExprStmt(loc, _clone_expr(stmt.expr))
    raise TypeError(f"unclonable statement node {type(stmt).__name__}")


def _clone_expr(expr: Expr) -> Expr:
    loc = expr.location
    if isinstance(expr, IntLiteral):
        return IntLiteral(loc, expr.value)
    if isinstance(expr, BoolLiteral):
        return BoolLiteral(loc, expr.value)
    if isinstance(expr, VarRef):
        return VarRef(loc, expr.name)
    if isinstance(expr, UnaryOp):
        return UnaryOp(loc, expr.op, _clone_expr(expr.operand))
    if isinstance(expr, BinaryOp):
        return BinaryOp(loc, expr.op, _clone_expr(expr.lhs), _clone_expr(expr.rhs))
    if isinstance(expr, ArrayIndex):
        return ArrayIndex(loc, _clone_expr(expr.array), _clone_expr(expr.index))
    if isinstance(expr, ArrayLength):
        return ArrayLength(loc, _clone_expr(expr.array))
    if isinstance(expr, NewArray):
        return NewArray(loc, _clone_expr(expr.length))
    if isinstance(expr, Call):
        return Call(loc, expr.callee, [_clone_expr(a) for a in expr.args])
    raise TypeError(f"unclonable expression node {type(expr).__name__}")
