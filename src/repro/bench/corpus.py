"""The benchmark corpus: the fifteen programs of the paper's Figure 6.

Five SPECjvm98 stand-ins (db, compress, mpeg, jack, jess), seven Symantec
microbenchmarks (bubbleSort, biDirBubbleSort, Qsort, Sieve, Hanoi,
Dhrystone, Array), and three other programs (toba, bytemark, jolt).  Each
is a MiniJ program preserving the array-access idioms of its original (see
DESIGN.md for the substitution rationale).
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Dict, List

_PROGRAM_DIR = pathlib.Path(__file__).parent / "programs"


@dataclass(frozen=True)
class BenchmarkProgram:
    """One corpus entry."""

    name: str
    #: ``"spec"``, ``"symantec"``, or ``"other"`` — Figure 6 groups the five
    #: SPEC programs separately (with the local/global split).
    category: str
    filename: str
    description: str

    @property
    def path(self) -> pathlib.Path:
        return _PROGRAM_DIR / self.filename

    def source(self) -> str:
        return self.path.read_text()


CORPUS: List[BenchmarkProgram] = [
    BenchmarkProgram(
        "db", "spec", "spec_db.mj",
        "in-memory database: sorted insert, binary search, scans",
    ),
    BenchmarkProgram(
        "compress", "spec", "spec_compress.mj",
        "LZW-style coder: hash probing plus buffer scans",
    ),
    BenchmarkProgram(
        "mpeg", "spec", "spec_mpeg.mj",
        "DSP kernels: 8x8 IDCT butterflies, windowing, saturation",
    ),
    BenchmarkProgram(
        "jack", "spec", "spec_jack.mj",
        "table-driven scanner: DFA stepping and token collection",
    ),
    BenchmarkProgram(
        "jess", "spec", "spec_jess.mj",
        "rule engine: nested joins over fact tables, agenda indirection",
    ),
    BenchmarkProgram(
        "bubbleSort", "symantec", "bubble_sort.mj",
        "classic bubble sort",
    ),
    BenchmarkProgram(
        "biDirBubbleSort", "symantec", "bidir_bubble_sort.mj",
        "the paper's running example (Figure 1)",
    ),
    BenchmarkProgram(
        "Qsort", "symantec", "qsort.mj",
        "iterative quicksort with an explicit segment stack",
    ),
    BenchmarkProgram(
        "Sieve", "symantec", "sieve.mj",
        "Sieve of Eratosthenes",
    ),
    BenchmarkProgram(
        "Hanoi", "symantec", "hanoi.mj",
        "Towers of Hanoi on explicit peg arrays",
    ),
    BenchmarkProgram(
        "Dhrystone", "symantec", "dhrystone.mj",
        "synthetic integer mix with flattened 2-D indexing",
    ),
    BenchmarkProgram(
        "Array", "symantec", "array_micro.mj",
        "fill/copy/reverse/shift/sum microbenchmark",
    ),
    BenchmarkProgram(
        "toba", "other", "toba.mj",
        "bytecode translator: pc-stepped dispatch and emission",
    ),
    BenchmarkProgram(
        "bytemark", "other", "bytemark.mj",
        "numeric kernels rich in loop-invariant (partially redundant) checks",
    ),
    BenchmarkProgram(
        "jolt", "other", "jolt.mj",
        "application glue: interning, RLE, a tiny interpreter",
    ),
]

BY_NAME: Dict[str, BenchmarkProgram] = {p.name: p for p in CORPUS}


def get(name: str) -> BenchmarkProgram:
    """Look up one corpus program by its Figure-6 name."""
    return BY_NAME[name]


def names(category: str = None) -> List[str]:
    """Corpus program names, optionally restricted to one category."""
    return [p.name for p in CORPUS if category is None or p.category == category]
