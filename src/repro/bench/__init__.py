"""Benchmark corpus and measurement harness for the paper's evaluation."""

from repro.bench.corpus import BY_NAME, CORPUS, BenchmarkProgram, get, names
from repro.bench.harness import (
    BenchResult,
    format_figure6,
    measure_program,
    run_benchmark,
    run_corpus,
)

__all__ = [
    "CORPUS",
    "BY_NAME",
    "BenchmarkProgram",
    "get",
    "names",
    "BenchResult",
    "run_benchmark",
    "measure_program",
    "run_corpus",
    "format_figure6",
]
