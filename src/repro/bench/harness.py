"""The evaluation harness: regenerates the paper's tables and figures.

For one program the pipeline is:

1. compile to e-SSA and apply the standard pre-pass suite;
2. run the *unoptimized* program, recording per-check dynamic counts (and
   the edge profile PRE needs);
3. clone, optimize with ABCD, and run the optimized clone on the same
   input;
4. verify the observable result is identical and derive the dynamic /
   static removal statistics.

``run_corpus`` maps this over the Figure-6 corpus; the ``benchmarks/``
files format the resulting rows to match each experiment (E1–E8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bench.corpus import CORPUS, BenchmarkProgram
from repro.core.abcd import ABCDConfig, ABCDReport
from repro.ir.function import Program
from repro.passes.session import CompilationSession
from repro.pipeline import clone_program
from repro.runtime.interpreter import ExecutionStats, run_program
from repro.runtime.profiler import Profile, collect_profile


@dataclass
class BenchResult:
    """Everything measured for one corpus program."""

    name: str
    category: str
    report: ABCDReport
    base_stats: ExecutionStats
    opt_stats: ExecutionStats
    base_value: object
    opt_value: object
    profile: Profile
    #: Per-pass timing / analysis-cache telemetry of the session that
    #: compiled and optimized this program (``SessionStats.to_json()``).
    session_stats: Optional[Dict] = None

    # ------------------------------------------------------------------
    # Dynamic metrics (Figure 6).
    # ------------------------------------------------------------------

    @property
    def dynamic_upper_base(self) -> int:
        return self.base_stats.upper_checks

    @property
    def dynamic_upper_opt(self) -> int:
        """Upper-bound work still executed after ABCD: surviving checks
        plus PRE's speculative compensating upper checks."""
        speculative_upper = sum(
            count
            for check_id, count in self.opt_stats.check_counts.items()
            if check_id in self._speculative_upper_ids
        )
        return self.opt_stats.upper_checks + speculative_upper

    _speculative_upper_ids: set = field(default_factory=set)

    @property
    def dynamic_upper_removed_fraction(self) -> float:
        if self.dynamic_upper_base == 0:
            return 0.0
        removed = self.dynamic_upper_base - self.dynamic_upper_opt
        return max(0.0, removed / self.dynamic_upper_base)

    @property
    def dynamic_total_removed_fraction(self) -> float:
        base = self.base_stats.total_checks
        if base == 0:
            return 0.0
        survived = (
            self.opt_stats.total_checks + self.opt_stats.speculative_checks
        )
        return max(0.0, (base - survived) / base)

    def dynamic_upper_removed_split(self) -> Dict[str, float]:
        """Fraction of dynamic upper checks removed, split local/global by
        the scope classification of each eliminated check (weighted by its
        baseline execution count)."""
        base = self.dynamic_upper_base
        if base == 0:
            return {"local": 0.0, "global": 0.0}
        local = 0
        global_ = 0
        for analysis in self.report.analyses:
            if analysis.kind != "upper" or not analysis.eliminated:
                continue
            count = self.profile.check_frequency(analysis.check_id)
            if analysis.pre_applied:
                # PRE leaves a residue (speculative + guarded work);
                # account only the net dynamic reduction, globally.
                count = max(
                    0,
                    count
                    - self._optimized_residue(analysis.check_id),
                )
                global_ += count
            elif analysis.scope == "local":
                local += count
            else:
                global_ += count
        return {"local": local / base, "global": global_ / base}

    def _optimized_residue(self, check_id: int) -> int:
        return self.opt_stats.check_counts.get(check_id, 0)

    # ------------------------------------------------------------------
    # Static metrics (Section 8's 31% / 26% numbers).
    # ------------------------------------------------------------------

    @property
    def static_fully_redundant_fraction(self) -> float:
        analyzed = self.report.analyzed_count()
        if analyzed == 0:
            return 0.0
        fully = sum(
            1 for a in self.report.analyses if a.eliminated and not a.pre_applied
        )
        return fully / analyzed

    @property
    def static_partially_redundant_fraction(self) -> float:
        analyzed = self.report.analyzed_count()
        if analyzed == 0:
            return 0.0
        return self.report.pre_transformed / analyzed

    # ------------------------------------------------------------------
    # Cost-model metrics (the ~10% run-time improvement).
    # ------------------------------------------------------------------

    @property
    def cycle_improvement(self) -> float:
        base = self.base_stats.cycles
        if base == 0:
            return 0.0
        return (base - self.opt_stats.cycles) / base

    @property
    def behaviour_preserved(self) -> bool:
        return self.base_value == self.opt_value

    # ------------------------------------------------------------------
    # Robustness telemetry (pass rollbacks, solver budget exhaustion).
    # ------------------------------------------------------------------

    @property
    def pass_rollbacks(self) -> int:
        return self.report.rollback_count

    @property
    def budget_exhausted_checks(self) -> int:
        return self.report.budget_exhausted_count

    @property
    def certificates_rejected(self) -> int:
        return self.report.certificates_rejected


def run_benchmark(
    program: BenchmarkProgram,
    config: Optional[ABCDConfig] = None,
    pre: bool = True,
    fuel: int = 100_000_000,
) -> BenchResult:
    """Run the full measurement pipeline for one corpus program."""
    session = CompilationSession(config=config)
    compiled = session.compile(program.source())
    return measure_program(
        compiled,
        name=program.name,
        category=program.category,
        config=config,
        pre=pre,
        fuel=fuel,
        session=session,
    )


def measure_program(
    compiled: Program,
    name: str = "program",
    category: str = "other",
    config: Optional[ABCDConfig] = None,
    pre: bool = True,
    fuel: int = 100_000_000,
    session: Optional[CompilationSession] = None,
) -> BenchResult:
    """Measurement pipeline for an already-compiled program.

    Pass the :class:`CompilationSession` that compiled ``compiled`` to get
    combined compile+optimize pass statistics on the result.
    """
    profile = collect_profile(compiled, "main", fuel=fuel)
    base_result = run_program(compiled, "main", fuel=fuel)

    optimized = clone_program(compiled)
    if session is None:
        session = CompilationSession(config=config)
    config = session.config
    if pre:
        config.pre = True
    report = session.optimize(optimized, profile=profile if config.pre else None)
    opt_result = run_program(optimized, "main", fuel=fuel)

    speculative_upper_ids = {
        instr.check_id
        for fn in optimized.functions.values()
        for instr in fn.all_instructions()
        if type(instr).__name__ == "SpeculativeCheck" and instr.kind == "upper"
    }

    result = BenchResult(
        name=name,
        category=category,
        report=report,
        base_stats=base_result.stats,
        opt_stats=opt_result.stats,
        base_value=base_result.value,
        opt_value=opt_result.value,
        profile=profile,
        session_stats=session.stats.to_json(),
    )
    result._speculative_upper_ids = speculative_upper_ids
    return result


def solver_ablation(
    program: BenchmarkProgram,
    certify: bool = False,
    backends: Optional[List[str]] = None,
) -> Dict[str, Dict]:
    """Static re-analysis of one corpus program under each solver backend.

    Skips the dynamic interpreter harness (identical by construction once
    the eliminated sets agree) and reports, per backend, the eliminated
    check set size, the backend cost counters, and whether the eliminated
    set matches the demand engine's — the equivalence the closure tier
    must preserve.  ``repro bench --json`` embeds the result per program;
    ``benchmarks/bench_solver_tiers.py`` derives the hybrid crossover
    from the same counters.
    """
    from repro.core.backend import SOLVER_BACKENDS

    ablation: Dict[str, Dict] = {}
    demand_ids = None
    for backend in backends or list(SOLVER_BACKENDS):
        session = CompilationSession(
            config=ABCDConfig(certify=certify, solver_backend=backend)
        )
        compiled = session.compile(program.source())
        report = session.optimize(compiled)
        counters = session.stats.to_json().get("counters", {})
        eliminated = frozenset(report.eliminated_ids)
        if demand_ids is None:
            demand_ids = eliminated
        ablation[backend] = {
            "eliminated_checks": len(eliminated),
            "matches_demand": eliminated == demand_ids,
            "solver_steps": counters.get("solver.steps.upper", 0)
            + counters.get("solver.steps.lower", 0),
            "dbm_cells_relaxed": counters.get("solver.dbm_cells_relaxed", 0),
            "dbm_rows_closed": counters.get("solver.dbm_rows_closed", 0),
            "certificates_rejected": report.certificates_rejected,
        }
    return ablation


def run_corpus(
    config: Optional[ABCDConfig] = None,
    pre: bool = True,
    names: Optional[List[str]] = None,
) -> List[BenchResult]:
    """Run the measurement pipeline over the (selected) corpus."""
    results = []
    for program in CORPUS:
        if names is not None and program.name not in names:
            continue
        cfg = None
        if config is not None:
            # Each program needs a fresh config copy (PRE flips state).
            import dataclasses

            cfg = dataclasses.replace(config)
        results.append(run_benchmark(program, config=cfg, pre=pre))
    return results


# ----------------------------------------------------------------------
# Formatting helpers shared by the benchmark files.
# ----------------------------------------------------------------------


def format_figure6(results: List[BenchResult]) -> str:
    """Render the Figure-6 table: % of dynamic upper-bound checks removed,
    with the local/global split for the SPEC group."""
    lines = [
        "Figure 6 — dynamic upper-bound checks removed (paper avg: 45%)",
        f"{'benchmark':<18}{'removed':>9}{'local':>9}{'global':>9}  bar",
    ]
    for result in results:
        frac = result.dynamic_upper_removed_fraction
        bar = "#" * int(round(frac * 40))
        if result.category == "spec":
            split = result.dynamic_upper_removed_split()
            lines.append(
                f"{result.name:<18}{frac:>8.1%}{split['local']:>8.1%}"
                f"{split['global']:>8.1%}  {bar}"
            )
        else:
            lines.append(f"{result.name:<18}{frac:>8.1%}{'-':>9}{'-':>9}  {bar}")
    mean = sum(r.dynamic_upper_removed_fraction for r in results) / len(results)
    lines.append(f"{'MEAN':<18}{mean:>8.1%}")
    rollbacks = sum(r.pass_rollbacks for r in results)
    exhausted = sum(r.budget_exhausted_checks for r in results)
    kinds: Dict[str, int] = {}
    for result in results:
        for kind, count in result.report.budget_exhausted_kinds().items():
            kinds[kind] = kinds.get(kind, 0) + count
    breakdown = (
        " (" + ", ".join(f"{kinds[k]} {k}" for k in sorted(kinds)) + ")"
        if kinds
        else ""
    )
    lines.append(
        f"robustness: {rollbacks} pass rollback(s), "
        f"{exhausted} budget-exhausted check(s){breakdown}"
    )
    emitted = sum(r.report.certificates_emitted for r in results)
    if emitted:
        lines.append(
            f"certificates: {emitted} emitted, "
            f"{sum(r.report.certificates_accepted for r in results)} accepted, "
            f"{sum(r.report.certificates_rejected for r in results)} rejected, "
            f"{sum(r.report.revoked_count for r in results)} revoked"
        )
    return "\n".join(lines)
