"""SSA construction, e-SSA (π-node) extension, and SSA destruction."""

from repro.ssa.construct import SSAConstructor, base_name, construct_ssa
from repro.ssa.destruct import destruct_ssa
from repro.ssa.essa import construct_essa, insert_pi_nodes, pi_assignments

__all__ = [
    "construct_ssa",
    "SSAConstructor",
    "base_name",
    "construct_essa",
    "insert_pi_nodes",
    "pi_assignments",
    "destruct_ssa",
]
