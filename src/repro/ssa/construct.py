"""Pruned SSA construction (Cytron et al., TOPLAS 1991).

φ placement uses iterated dominance frontiers restricted to variables that
are live into the join (pruned SSA) — this mirrors the paper's remark that
no φ is inserted for ``limit`` in the inner loop of the running example
because ``limit`` has no uses there.

Renaming walks the dominator tree with a stack of current versions per base
variable; versions are spelled ``base.N``.  Function parameters count as
definitions at the top of the entry block and are renamed too (the
function's ``params`` list is updated accordingly).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.analysis.dominance import DominatorTree, dominance_frontiers
from repro.analysis.liveness import compute_liveness
from repro.ir.function import Function
from repro.ir.instructions import Phi, Var


def base_name(versioned: str) -> str:
    """Strip the SSA version suffix: ``st.2`` -> ``st``."""
    dot = versioned.rfind(".")
    if dot == -1:
        return versioned
    suffix = versioned[dot + 1 :]
    return versioned[:dot] if suffix.isdigit() else versioned


class SSAConstructor:
    """Converts a non-SSA function into pruned SSA form in place."""

    def __init__(self, fn: Function, analysis=None) -> None:
        if fn.ssa_form != "none":
            raise ValueError(f"{fn.name} is already in {fn.ssa_form} form")
        self._fn = fn
        if analysis is not None:
            # Served from the session's AnalysisManager cache.
            self._domtree = analysis.get("domtree", fn)
            self._frontiers = analysis.get("frontiers", fn)
            self._liveness = analysis.get("liveness", fn)
        else:
            self._domtree = DominatorTree.compute(fn)
            self._frontiers = dominance_frontiers(fn, self._domtree)
            self._liveness = compute_liveness(fn)
        self._counters: Dict[str, int] = {}
        self._stacks: Dict[str, List[str]] = {}
        self._phi_base: Dict[int, str] = {}

    def run(self) -> Function:
        self._place_phis()
        self._rename()
        self._fn.ssa_form = "ssa"
        # Renaming rewrote every name wholesale; rebuild the def-use index
        # once on the final SSA names so downstream passes inherit a
        # consistent, incrementally-maintained index.
        self._fn.rebuild_def_use()
        return self._fn

    # ------------------------------------------------------------------
    # φ placement.
    # ------------------------------------------------------------------

    def _definition_sites(self) -> Dict[str, Set[str]]:
        """Definition sites per base variable, served from the def-use index
        (no function re-scan); parameters count as entry-block defs."""
        sites: Dict[str, Set[str]] = {}
        for param in self._fn.params:
            sites.setdefault(param, set()).add(self._fn.entry)
        chains = self._fn.def_use()
        reachable = set(self._fn.reachable_blocks())
        for name, info in chains.values.items():
            for def_instr in info.defs:
                label = chains.block_of(def_instr)
                if label in reachable:
                    sites.setdefault(name, set()).add(label)
        return sites

    def _place_phis(self) -> None:
        for var, def_blocks in sorted(self._definition_sites().items()):
            if len(def_blocks) < 2 and var not in self._fn.params:
                # A single definition site can still need φs if it is inside
                # a loop that reaches itself; the frontier walk below handles
                # that, so only skip when the frontier is empty.
                pass
            placed: Set[str] = set()
            worklist = list(def_blocks)
            while worklist:
                block_label = worklist.pop()
                for frontier_label in self._frontiers[block_label]:
                    if frontier_label in placed:
                        continue
                    placed.add(frontier_label)
                    # Pruned SSA: only merge variables live into the join.
                    if not self._liveness.is_live_in(frontier_label, var):
                        continue
                    phi = Phi(var, {})
                    self._fn.add_phi(frontier_label, phi)
                    self._phi_base[id(phi)] = var
                    if frontier_label not in def_blocks:
                        worklist.append(frontier_label)

    # ------------------------------------------------------------------
    # Renaming.
    # ------------------------------------------------------------------

    def _fresh(self, base: str) -> str:
        count = self._counters.get(base, 0)
        self._counters[base] = count + 1
        return f"{base}.{count}"

    def _current(self, base: str) -> str:
        stack = self._stacks.get(base)
        if not stack:
            raise RuntimeError(
                f"{self._fn.name}: no reaching definition for {base!r} during "
                "SSA renaming (frontend should have rejected this program)"
            )
        return stack[-1]

    def _push(self, base: str) -> str:
        name = self._fresh(base)
        self._stacks.setdefault(base, []).append(name)
        return name

    def _rename(self) -> None:
        # Renaming rewrites names in place behind the index's back; drop it
        # now and rebuild once after the walk (see ``run``).
        self._fn.invalidate_def_use()
        # Parameters are definitions at the entry.
        new_params = [self._push(param) for param in self._fn.params]
        self._fn.params = new_params
        self._rename_block(self._fn.entry)

    def _rename_block(self, label: str) -> None:
        block = self._fn.blocks[label]
        pushed: List[str] = []

        for phi in block.phis:
            base = self._phi_base[id(phi)]
            phi.dest = self._push(base)
            pushed.append(base)

        for instr in list(block.body) + (
            [block.terminator] if block.terminator is not None else []
        ):
            mapping = {
                base: self._current(base)
                for base in instr.used_vars()
                if self._stacks.get(base)
            }
            instr.rename_uses(mapping)
            dest = instr.defs()
            if dest is not None:
                new_dest = self._push(dest)
                pushed.append(dest)
                _set_dest(instr, new_dest)

        for succ in block.successors():
            for phi in self._fn.blocks[succ].phis:
                base = self._phi_base[id(phi)]
                phi.incomings[label] = Var(self._current(base))

        for child in self._domtree.children[label]:
            self._rename_block(child)

        for base in pushed:
            self._stacks[base].pop()


def _set_dest(instr, new_dest: str) -> None:
    """Rename the destination of a defining instruction."""
    instr.dest = new_dest


def construct_ssa(fn: Function, analysis=None) -> Function:
    """Convert ``fn`` to pruned SSA form in place and return it.

    ``analysis`` (an :class:`~repro.passes.analysis.AnalysisManager`)
    serves dominance/frontier/liveness results from the session cache
    instead of recomputing them here.
    """
    from repro.limits import recursion_headroom

    # Dominator-tree renaming recurses once per block; deep CFGs (long
    # straight-line functions) need headroom beyond the default limit.
    with recursion_headroom(len(fn.blocks) + 1000):
        return SSAConstructor(fn, analysis=analysis).run()
