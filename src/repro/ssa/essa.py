"""Extended SSA (e-SSA) construction — paper Section 3.

e-SSA splits variable live ranges at the two places where the paper's
constraint classes C4 and C5 come to life:

* **C4 — conditional branches.**  On each out-edge of a branch whose
  condition is a comparison, every variable operand of the comparison gets
  a π-assignment carrying the relation that holds on that edge (the
  comparison itself on the true edge, its negation on the false edge).
* **C5 — bounds checks.**  Immediately after each ``checklower`` /
  ``checkupper``, the index variable gets a π-assignment carrying the
  invariant the successful check established (``x >= 0`` resp.
  ``x < len(A)``).

π-assignments are inserted *before* SSA renaming as ordinary re-definitions
``v := π(v)``; the subsequent standard SSA construction then gives each π a
unique name and threads all later uses through it — exactly the renaming
discipline of the paper ("the constraint C5 must be expressed on the new
name i2, rather than on i1").

Precondition: critical edges must be split so each branch out-edge has a
dedicated single-predecessor target block.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.cfg_utils import split_critical_edges
from repro.ir.function import Function
from repro.ir.instructions import (
    Branch,
    CheckLower,
    CheckUpper,
    Cmp,
    Const,
    Operand,
    Pi,
    PiPredicate,
    Var,
)
from repro.ssa.construct import construct_ssa

#: Negation of each comparison relation (for the false edge).
NEGATED_REL = {"lt": "ge", "le": "gt", "gt": "le", "ge": "lt", "eq": "ne", "ne": "eq"}

#: Relation as seen from the right operand: ``a REL b`` == ``b SWAP(REL) a``.
SWAPPED_REL = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le", "eq": "eq", "ne": "ne"}


def insert_pi_nodes(fn: Function) -> int:
    """Insert π-assignments for C4 and C5; returns how many were inserted.

    Must run on non-SSA IR (before renaming).
    """
    if fn.ssa_form != "none":
        raise ValueError("π insertion must run before SSA renaming")
    split_critical_edges(fn)
    count = _insert_check_pis(fn)
    count += _insert_branch_pis(fn)
    return count


# ----------------------------------------------------------------------
# C5: π after bounds checks.
# ----------------------------------------------------------------------


def _insert_check_pis(fn: Function) -> int:
    """Place a π after every bounds check (sparse: only blocks that the
    def-use type index says contain a check are walked)."""
    chains = fn.def_use()
    with_checks = sorted(
        {
            chains.block_of(check)
            for check_type in (CheckLower, CheckUpper)
            for check in chains.instrs_of_type(check_type)
        }
    )
    count = 0
    for label in with_checks:
        body = fn.blocks[label].body
        position = 0
        while position < len(body):
            instr = body[position]
            pi: Optional[Pi] = None
            if isinstance(instr, CheckLower) and isinstance(instr.index, Var):
                name = instr.index.name
                pi = Pi(name, name, PiPredicate("ge", other=Const(0)))
            elif isinstance(instr, CheckUpper) and isinstance(instr.index, Var):
                name = instr.index.name
                pi = Pi(name, name, PiPredicate("lt", arraylen_of=instr.array))
            if pi is not None:
                fn.insert_instr(label, position + 1, pi)
                count += 1
                position += 2
            else:
                position += 1
    return count


# ----------------------------------------------------------------------
# C4: π on branch out-edges.
# ----------------------------------------------------------------------


def _branch_comparison(fn: Function, label: str) -> Optional[Cmp]:
    """Find the comparison feeding this block's branch, if it is safe to
    attach π constraints to.

    The comparison must define the branch condition within the same block,
    and neither of its variable operands may be redefined between the
    comparison and the branch (otherwise the predicate would reference a
    stale value).
    """
    block = fn.blocks[label]
    term = block.terminator
    if not isinstance(term, Branch) or not isinstance(term.cond, Var):
        return None
    cmp_index = None
    for index in range(len(block.body) - 1, -1, -1):
        instr = block.body[index]
        if instr.defs() == term.cond.name:
            if isinstance(instr, Cmp):
                cmp_index = index
            break
    if cmp_index is None:
        return None
    cmp = block.body[cmp_index]
    assert isinstance(cmp, Cmp)
    operand_names = {op.name for op in (cmp.lhs, cmp.rhs) if isinstance(op, Var)}
    for instr in block.body[cmp_index + 1 :]:
        dest = instr.defs()
        if dest in operand_names:
            return None
    return cmp


def _insert_branch_pis(fn: Function) -> int:
    count = 0
    preds = fn.predecessors()
    reachable = set(fn.reachable_blocks())
    chains = fn.def_use()
    for term in chains.instrs_of_type(Branch):
        label = chains.block_of(term)
        if label not in reachable:
            continue
        cmp = _branch_comparison(fn, label)
        if cmp is None:
            continue
        assert isinstance(term, Branch)
        if term.true_target == term.false_target:
            continue
        for target, rel in (
            (term.true_target, cmp.op),
            (term.false_target, NEGATED_REL[cmp.op]),
        ):
            if rel == "ne":
                # x != y carries no difference constraint.
                continue
            if len(preds[target]) != 1:
                # A multi-predecessor target would leak the constraint onto
                # other paths; critical-edge splitting should have prevented
                # this, but a branch arm jumping to a plain merge (the other
                # pred being a fallthrough) is still possible when the branch
                # block is the join's only multi-succ pred.  Skip safely.
                continue
            for offset, pi in enumerate(_pis_for_edge(cmp, rel)):
                fn.insert_instr(target, offset, pi)
                count += 1
    return count


def _pis_for_edge(cmp: Cmp, rel: str) -> List[Pi]:
    """Build the π-assignments for one branch out-edge.

    For ``a REL b``: ``a`` gets predicate ``REL b`` and ``b`` gets the
    swapped predicate ``SWAP(REL) a``.  Like the paper's Table 1, each π of
    the pair ends up referring to the other π'd name after SSA renaming
    when both operands are variables (the second π's predicate names the
    first π's destination, and the first π's predicate is renamed to the
    version reaching the edge — both encode the same difference constraint
    and are individually sound).
    """
    pis: List[Pi] = []
    pairs: List[Tuple[Operand, str, Operand]] = [
        (cmp.lhs, rel, cmp.rhs),
        (cmp.rhs, SWAPPED_REL[rel], cmp.lhs),
    ]
    for subject, relation, other in pairs:
        if not isinstance(subject, Var):
            continue
        predicate = PiPredicate(relation, other=other)
        pis.append(Pi(subject.name, subject.name, predicate))
    return pis


# ----------------------------------------------------------------------
# Whole-function driver.
# ----------------------------------------------------------------------


def construct_essa(fn: Function, analysis=None) -> Function:
    """Convert a non-SSA function into e-SSA form (πs, then pruned SSA).

    With an :class:`~repro.passes.analysis.AnalysisManager`, SSA
    construction fetches dominance/frontiers/liveness through the session
    cache.  π insertion splits critical edges (a CFG change), so any
    pre-existing cached analyses are dropped first; renaming then
    invalidates the name-sensitive ones, leaving exactly the CFG-shape
    analyses of the final graph cached.
    """
    insert_pi_nodes(fn)
    if analysis is not None:
        analysis.invalidate(fn)
    construct_ssa(fn, analysis=analysis)
    if analysis is not None:
        analysis.invalidate(fn, ("liveness", "gvn"))
    fn.ssa_form = "essa"
    return fn


def pi_assignments(fn: Function) -> Dict[str, Pi]:
    """All π-assignments of an e-SSA function keyed by destination.

    Served from the def-use type index — O(πs) instead of a function scan.
    """
    chains = fn.def_use()
    found: Dict[str, Pi] = {}
    for instr in chains.instrs_of_type(Pi):
        assert isinstance(instr, Pi)
        found[instr.dest] = instr
    return found
