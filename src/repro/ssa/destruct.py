"""SSA destruction: convert (e-)SSA back to executable copy-based form.

πs become plain copies.  φs become copies at the end of each predecessor,
with a parallel-copy temporary pass to handle φs in the same block reading
each other's destinations (the classic lost-copy/swap problem).  Critical
edges are split first so predecessor-end insertion is always safe.

The interpreter executes SSA directly, so destruction is not on the hot
path of the reproduction; it exists to demonstrate the full compiler
round-trip and is exercised by differential tests (same observable
behaviour before and after destruction).
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.cfg_utils import split_critical_edges
from repro.ir.function import Function
from repro.ir.instructions import Copy, Instr, Operand, Pi, Var


def destruct_ssa(fn: Function) -> Function:
    """Lower φs and πs into copies in place; ``fn`` leaves SSA form."""
    if fn.ssa_form == "none":
        return fn
    # Destruction rewrites bodies wholesale behind the def-use index.
    fn.invalidate_def_use()
    split_critical_edges(fn)

    # φ elimination with parallel-copy semantics per predecessor edge.
    for label in list(fn.reachable_blocks()):
        block = fn.blocks[label]
        if not block.phis:
            continue
        # Group assignments per predecessor: dest <- operand.
        per_pred: Dict[str, List[tuple]] = {}
        for phi in block.phis:
            for pred, operand in phi.incomings.items():
                per_pred.setdefault(pred, []).append((phi.dest, operand))
        for pred, moves in per_pred.items():
            copies = _sequentialize_parallel_copy(fn, moves)
            fn.blocks[pred].body.extend(copies)
        block.phis = []

    # π elimination: a π is semantically a copy.
    for block in fn.blocks.values():
        new_body: List[Instr] = []
        for instr in block.body:
            if isinstance(instr, Pi):
                new_body.append(Copy(instr.dest, Var(instr.src)))
            else:
                new_body.append(instr)
        block.body = new_body

    fn.ssa_form = "none"
    return fn


def _sequentialize_parallel_copy(fn: Function, moves: List[tuple]) -> List[Copy]:
    """Order parallel moves ``dest <- src`` so that no source is clobbered
    before it is read, breaking cycles with temporaries."""
    pending = [(dest, op) for dest, op in moves if not _is_self_move(dest, op)]
    copies: List[Copy] = []
    while pending:
        # A move is safe if its destination is not read by any other
        # pending move.
        read_vars = {
            op.name
            for _, op in pending
            if isinstance(op, Var)
        }
        safe_index = next(
            (i for i, (dest, _) in enumerate(pending) if dest not in read_vars),
            None,
        )
        if safe_index is not None:
            dest, op = pending.pop(safe_index)
            copies.append(Copy(dest, op))
            continue
        # Every pending destination is also a source: a cycle.  Break it by
        # spilling one destination to a temporary.
        dest, op = pending.pop(0)
        temp = fn.new_temp("swap")
        copies.append(Copy(temp, Var(dest)))
        pending = [
            (d, Var(temp) if isinstance(o, Var) and o.name == dest else o)
            for d, o in pending
        ]
        copies.append(Copy(dest, op))
    return copies


def _is_self_move(dest: str, op: Operand) -> bool:
    return isinstance(op, Var) and op.name == dest
