"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run FILE``       — compile and execute a MiniJ program, reporting the
  result and the dynamic check counters;
* ``optimize FILE``  — run ABCD and print the per-check report (optionally
  the optimized IR and the dynamic before/after comparison);
* ``certify FILE``   — optimize with proof-witness emission and report the
  independent checker's verdict on every elimination;
* ``ir FILE``        — print the compiled IR (e-SSA by default);
* ``dot FILE``       — emit Graphviz for a function's CFG or its
  inequality graphs;
* ``bench``          — regenerate the Figure-6 table over the corpus;
* ``fuzz``           — run a differential fuzzing campaign (random
  programs, unoptimized vs optimized execution, triage + shrinking);
* ``serve``          — run the crash-isolated compile service (NDJSON
  over stdin/stdout or a Unix socket, supervised worker pool);
* ``storm``          — chaos-test the compile service under injected
  process faults and verify the no-lost-request guarantee.

Long-running commands (``bench``, ``fuzz``) catch SIGINT/SIGTERM, emit
their partial report, and exit with :data:`EXIT_INTERRUPTED` (130)
instead of dying with a raw traceback.
"""

from __future__ import annotations

import argparse
import contextlib
import signal
import sys
from typing import Iterator, List, Optional

from repro.core.abcd import ABCDConfig
from repro.core.backend import SOLVER_BACKENDS
from repro.core.solver import DEFAULT_MAX_STEPS
from repro.errors import CompileError, MiniJRuntimeError, ReproError
from repro.ir.printer import format_function, format_program
from repro.passes.session import CompilationSession
from repro.pipeline import clone_program, compile_source, run
from repro.robustness.guard import PassGuard, guarded_optimize_program
from repro.runtime.profiler import collect_profile


#: Exit code for a campaign cut short by SIGINT/SIGTERM — distinct from
#: success (0), findings/diagnostics (1), and usage errors (2), and
#: matching the shell convention for fatal-signal exits (128 + SIGINT).
EXIT_INTERRUPTED = 130


@contextlib.contextmanager
def _sigterm_as_interrupt() -> Iterator[None]:
    """Deliver SIGTERM as :class:`KeyboardInterrupt` inside the body.

    Long campaigns (``fuzz``, ``bench``) are routinely killed by batch
    schedulers with SIGTERM; translating it lets one interrupt path
    produce the partial report for both signals.  Main-thread only (the
    only place Python delivers signals); restored on exit.
    """
    if not hasattr(signal, "SIGTERM"):
        yield
        return

    def on_sigterm(signum, frame):
        raise KeyboardInterrupt()

    try:
        previous = signal.signal(signal.SIGTERM, on_sigterm)
    except ValueError:  # not the main thread
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _read_source(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _add_compile_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("file", help="MiniJ source file")
    parser.add_argument(
        "--inline", action="store_true", help="inline non-recursive calls first"
    )
    parser.add_argument(
        "--no-std-opts",
        action="store_true",
        help="skip copy propagation / constant folding / DCE",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="turn pass-guard rollbacks into hard errors",
    )


def _add_solver_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--solver",
        choices=list(SOLVER_BACKENDS),
        default="demand",
        help="proof engine: demand-DFS, DBM closure, or the measured "
        "per-function hybrid scheduler",
    )


def _add_budget_flags(parser: argparse.ArgumentParser) -> None:
    _add_solver_flag(parser)
    parser.add_argument(
        "--max-steps",
        type=int,
        default=DEFAULT_MAX_STEPS,
        metavar="N",
        help="solver step budget per proof (exhaustion keeps the check)",
    )
    parser.add_argument(
        "--max-depth",
        type=int,
        default=None,
        metavar="N",
        help="solver recursion-depth budget per proof",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline per proof session",
    )


def _compile(args, guard: Optional[PassGuard] = None) -> "Program":
    return compile_source(
        _read_source(args.file),
        standard_opts=not args.no_std_opts,
        inline=args.inline,
        guard=guard,
        strict=getattr(args, "strict", False),
    )


def _config_from(args) -> ABCDConfig:
    return ABCDConfig(
        upper=not getattr(args, "lower_only", False),
        lower=not getattr(args, "upper_only", False),
        gvn_mode=getattr(args, "gvn", "consult"),
        allocation_facts=not getattr(args, "no_allocation_facts", False),
        pre=getattr(args, "pre", False),
        max_steps=getattr(args, "max_steps", DEFAULT_MAX_STEPS),
        max_depth=getattr(args, "max_depth", None),
        deadline=getattr(args, "deadline", None),
        strict=getattr(args, "strict", False),
        certify=getattr(args, "certify", False),
        solver_backend=getattr(args, "solver", "demand"),
    )


# ----------------------------------------------------------------------
# Commands.
# ----------------------------------------------------------------------


def cmd_run(args) -> int:
    program = _compile(args)
    if args.optimize:
        config = _config_from(args)
        profile = collect_profile(program, args.fn, args.args) if config.pre else None
        guarded_optimize_program(program, config, profile)
    try:
        result = run(program, args.fn, args.args)
    except MiniJRuntimeError as exc:
        print(f"runtime error: {exc}", file=sys.stderr)
        return 1
    stats = result.stats
    print(f"result: {result.value}")
    print(
        f"checks: {stats.total_checks} "
        f"(lower {stats.lower_checks}, upper {stats.upper_checks}, "
        f"speculative {stats.speculative_checks})"
    )
    print(f"instructions: {stats.instructions}  cycles: {stats.cycles}")
    return 0


def cmd_optimize(args) -> int:
    if getattr(args, "cache_dir", None):
        return _cmd_optimize_cached(args)
    # One session drives compilation and optimization: both share the
    # analysis cache, the guard, and the per-pass stats.
    session = CompilationSession(config=_config_from(args), strict=args.strict)
    program = session.compile(
        _read_source(args.file),
        standard_opts=not args.no_std_opts,
        inline=args.inline,
    )
    compile_failures = list(session.guard.failures)
    baseline = clone_program(program)
    profile = None
    if session.config.pre:
        profile = collect_profile(program, args.fn)
    report = session.optimize(program, profile=profile)

    print(f"{'check':>6} {'kind':<6} {'function':<16} {'verdict':<8} "
          f"{'steps':>6} {'scope':<7} notes")
    for analysis in report.analyses:
        notes = []
        if analysis.via_gvn:
            notes.append("gvn")
        if analysis.pre_applied:
            notes.append(f"pre({analysis.pre_insertions})")
        if analysis.budget_exhausted:
            notes.append(f"budget!{analysis.exhausted_budget or ''}")
        if analysis.certificate is not None:
            notes.append(f"cert:{analysis.certificate}")
        if analysis.revoked:
            notes.append("revoked")
        print(
            f"#{analysis.check_id:>5} {analysis.kind:<6} "
            f"{analysis.function:<16} {analysis.result.name:<8} "
            f"{analysis.steps:>6} {analysis.scope or '-':<7} "
            f"{' '.join(notes)}"
        )
    print(
        f"\neliminated {report.eliminated_count()} of {report.analyzed} checks "
        f"({report.eliminated_count('upper')}/{report.analyzed_count('upper')} upper, "
        f"{report.eliminated_count('lower')}/{report.analyzed_count('lower')} lower); "
        f"mean steps/check: {report.mean_steps:.1f}"
    )
    rollbacks = len(compile_failures) + report.rollback_count
    exhausted = report.budget_exhausted_count
    kinds = report.budget_exhausted_kinds()
    breakdown = (
        " (" + ", ".join(f"{kinds[k]} {k}" for k in sorted(kinds)) + ")"
        if kinds
        else ""
    )
    print(
        f"robustness: {rollbacks} pass rollback(s), "
        f"{exhausted} budget-exhausted check(s){breakdown}"
    )
    if session.config.certify:
        print(
            f"certificates: {report.certificates_emitted} emitted, "
            f"{report.certificates_accepted} accepted, "
            f"{report.certificates_rejected} rejected, "
            f"{report.revoked_count} revoked"
        )
        for name in report.quarantined_functions:
            print(f"  quarantined: {name}")
    for failure in compile_failures + list(report.pass_failures):
        print(f"  rolled back: {failure}")
    if args.time_passes:
        print()
        print(session.stats.format_table())

    if args.compare:
        base_stats = run(baseline, args.fn).stats
        opt_stats = run(program, args.fn).stats
        survived = opt_stats.total_checks + opt_stats.speculative_checks
        print(
            f"dynamic checks: {base_stats.total_checks} -> {survived}; "
            f"cycles: {base_stats.cycles} -> {opt_stats.cycles} "
            f"({(base_stats.cycles - opt_stats.cycles) / base_stats.cycles:.1%} saved)"
        )
    if args.emit_ir:
        print()
        print(format_program(program))
    return 0


def _cmd_optimize_cached(args) -> int:
    """``repro optimize --cache-dir``: the store-backed compile path.

    A hit means every stored certificate just re-replayed; a miss
    compiles fresh (certify forced on) and stores the result when
    cacheable.  Profiles are not collected on this path, so PRE stays
    inactive — the fingerprint covers that, keeping hits sound.
    """
    from repro.store import CertStore, cached_optimize_source

    store = CertStore(args.cache_dir)
    outcome = cached_optimize_source(
        store,
        _read_source(args.file),
        config=_config_from(args),
        standard_opts=not args.no_std_opts,
        inline=args.inline,
    )
    print(f"fingerprint: {outcome.fingerprint}")
    if outcome.hit:
        print("cache: hit (every certificate re-checked before use)")
    else:
        print(f"cache: {outcome.status}"
              + (f" ({outcome.unstored_reason})" if outcome.unstored_reason else ""))
        report = outcome.report
        print(
            f"eliminated {report.eliminated_count()} of {report.analyzed} checks"
        )
    counters = ", ".join(
        f"{name.split('.', 1)[1]} {value}"
        for name, value in sorted(store.counters.items())
    )
    print(f"store: {counters or 'no activity'}")
    if args.emit_ir:
        print()
        print(format_program(outcome.program))
    return 0


def cmd_cache(args) -> int:
    """``repro cache``: maintenance verbs over a store directory."""
    import json

    from repro.core.abcd import ABCDConfig
    from repro.store import CertStore

    store = CertStore(args.cache_dir)
    if args.cache_command == "stats":
        payload = store.stats_payload()
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            for name, value in payload.items():
                print(f"{name}: {value}")
        return 0
    if args.cache_command == "verify":
        # Replays every entry's every certificate under the default
        # configuration (the one the serve path compiles with) and
        # quarantines anything that fails any rung of the ladder.
        results = store.verify_all(ABCDConfig())
        rejected = [r for r in results if not r.ok]
        if args.json:
            print(json.dumps(
                {
                    "entries": len(results),
                    "rejected": len(rejected),
                    "results": [
                        {
                            "fingerprint": r.fingerprint,
                            "ok": r.ok,
                            "reason": r.reason,
                            "eliminations": r.eliminations,
                        }
                        for r in results
                    ],
                },
                indent=2,
                sort_keys=True,
            ))
        else:
            for result in results:
                verdict = (
                    f"ok ({result.eliminations} certificate(s) replayed)"
                    if result.ok
                    else f"REJECTED: {result.reason}"
                )
                print(f"{result.fingerprint}  {verdict}")
            print(
                f"verified {len(results)} entr{'y' if len(results) == 1 else 'ies'}, "
                f"{len(rejected)} rejected (rejections are quarantined)"
            )
        return 1 if rejected else 0
    if args.cache_command == "gc":
        removed = store.gc(
            max_entries=args.max_entries, max_age_seconds=args.max_age
        )
        print(f"gc: removed {removed} entr{'y' if removed == 1 else 'ies'}")
        return 0
    if args.cache_command == "evict":
        if store.evict(args.fingerprint):
            print(f"evicted {args.fingerprint}")
            return 0
        print(f"no entry for {args.fingerprint}", file=sys.stderr)
        return 1
    raise AssertionError(f"unknown cache command {args.cache_command!r}")


def cmd_certify(args) -> int:
    """Optimize with certificate emission and report every verdict."""
    import json

    from repro.certify.driver import certificates_to_json

    config = _config_from(args)
    config.certify = True
    session = CompilationSession(config=config, strict=args.strict)
    program = session.compile(
        _read_source(args.file),
        standard_opts=not args.no_std_opts,
        inline=args.inline,
    )
    profile = None
    if config.pre:
        profile = collect_profile(program, args.fn)
    report = session.optimize(program, profile=profile)

    if args.json:
        print(json.dumps(certificates_to_json(report), indent=2, sort_keys=True))
    else:
        print(f"{'check':>6} {'kind':<6} {'function':<16} {'certificate':<12} notes")
        for analysis in sorted(
            report.analyses, key=lambda a: (a.function, a.check_id)
        ):
            if not analysis.eliminated and analysis.certificate is None:
                continue
            notes = []
            if analysis.via_gvn:
                notes.append("gvn")
            if analysis.pre_applied:
                notes.append(f"pre({analysis.pre_insertions})")
            if analysis.revoked:
                notes.append("revoked")
            print(
                f"#{analysis.check_id:>5} {analysis.kind:<6} "
                f"{analysis.function:<16} {analysis.certificate or '-':<12} "
                f"{' '.join(notes)}"
            )
        print(
            f"\ncertificates: {report.certificates_emitted} emitted, "
            f"{report.certificates_accepted} accepted, "
            f"{report.certificates_rejected} rejected, "
            f"{report.revoked_count} revoked"
        )
        for name in report.quarantined_functions:
            print(f"  quarantined: {name}")
    return 1 if report.certificates_rejected else 0


def cmd_ir(args) -> int:
    program = _compile(args)
    if args.fn:
        print(format_function(program.function(args.fn)))
    else:
        print(format_program(program))
    return 0


def cmd_dot(args) -> int:
    program = _compile(args)
    fn = program.function(args.fn)
    if args.graph == "cfg":
        from repro.ir.dot import cfg_to_dot

        print(cfg_to_dot(fn))
    else:
        from repro.core.constraints import build_graphs

        bundle = build_graphs(fn)
        graph = bundle.upper if args.graph == "upper" else bundle.lower
        print(graph.to_dot())
    return 0


def cmd_bench(args) -> int:
    from repro.bench.corpus import CORPUS
    from repro.bench.harness import format_figure6, run_benchmark

    names = set(args.names) if args.names else None
    selected = [
        program_def
        for program_def in CORPUS
        if names is None or program_def.name in names
    ]
    results = []
    interrupted = False
    with _sigterm_as_interrupt():
        try:
            for program_def in selected:
                print(f"measuring {program_def.name}...", file=sys.stderr)
                # Fresh config per program: PRE flips state on it.
                config = ABCDConfig(
                    certify=args.certify, solver_backend=args.solver
                )
                results.append(
                    run_benchmark(program_def, config=config, pre=not args.no_pre)
                )
        except KeyboardInterrupt:
            # Keep what was measured: a 20-minute sweep killed at program
            # 18 of 20 still yields 18 usable rows and a distinct exit
            # code, not a raw traceback.
            interrupted = True
            print(
                f"interrupted after {len(results)}/{len(selected)} "
                "program(s); reporting partial results",
                file=sys.stderr,
            )
    if not results:
        if interrupted:
            return EXIT_INTERRUPTED
        print("no matching corpus programs", file=sys.stderr)
        return 1
    if args.json:
        import json

        from repro.bench.harness import solver_ablation

        ablations = {}
        for program_def in selected[: len(results)]:
            ablations[program_def.name] = solver_ablation(
                program_def, certify=args.certify
            )
        payload = [
            {
                "name": result.name,
                "category": result.category,
                "solver": args.solver,
                "solver_ablation": ablations.get(result.name),
                "dynamic_upper_removed": result.dynamic_upper_removed_fraction,
                "dynamic_total_removed": result.dynamic_total_removed_fraction,
                "cycle_improvement": result.cycle_improvement,
                "analyzed_checks": result.report.analyzed,
                "eliminated_checks": result.report.eliminated_count(),
                "pass_rollbacks": result.pass_rollbacks,
                "budget_exhausted_checks": result.budget_exhausted_checks,
                "budget_exhausted_kinds": result.report.budget_exhausted_kinds(),
                "certificates": {
                    "emitted": result.report.certificates_emitted,
                    "accepted": result.report.certificates_accepted,
                    "rejected": result.report.certificates_rejected,
                    "revoked": result.report.revoked_count,
                },
                "session_stats": result.session_stats,
            }
            for result in results
        ]
        print(json.dumps(payload, indent=2))
    else:
        print(format_figure6(results))
    if args.certify and any(r.report.certificates_rejected for r in results):
        print("certificate rejections detected", file=sys.stderr)
        return 1
    return EXIT_INTERRUPTED if interrupted else 0


def cmd_fuzz(args) -> int:
    from repro.fuzz.campaign import format_summary, run_campaign
    from repro.fuzz.generator import GeneratorConfig
    from repro.fuzz.oracle import OracleConfig

    oracle_config = OracleConfig(
        inline=not args.no_inline,
        certify=args.certify,
        codegen=args.codegen,
        fuel=args.fuel,
        deadline=args.deadline_per_program,
    )
    generator_config = GeneratorConfig(
        profile=args.profile, chain_depth=args.chain_depth
    )

    def progress(seed: int, classification: str) -> None:
        if args.quiet:
            return
        if classification not in ("match", "fuel-limit"):
            print(f"  seed {seed}: {classification}", file=sys.stderr)

    with _sigterm_as_interrupt():
        result = run_campaign(
            seeds=args.seeds,
            seed_base=args.seed_base,
            shrink=args.shrink,
            oracle_config=oracle_config,
            generator_config=generator_config,
            corpus_dir=args.corpus_dir,
            report_path=args.report,
            progress=progress,
        )
    if args.json:
        import json

        print(json.dumps(result.to_json(), indent=2, sort_keys=True))
    else:
        print(format_summary(result))
        for key, entry in sorted(result.triage.entries.items()):
            if entry.reproducer:
                print(f"\n--- reproducer for {key} ---")
                print(entry.reproducer, end="")
    if result.interrupted:
        return EXIT_INTERRUPTED
    return 1 if result.unexplained else 0


def cmd_serve(args) -> int:
    """Run the crash-isolated compile service until EOF or SIGTERM."""
    import json

    from repro.serve.supervisor import ServeConfig, Supervisor

    config = ServeConfig(
        workers=args.workers,
        deadline=args.deadline,
        mem_mb=args.mem_mb,
        retries=args.retries,
        recycle_after=args.recycle_after,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        fuel=args.fuel,
        cache_dir=args.cache_dir,
        solver=args.solver,
        overload_enabled=not args.no_overload,
        queue_capacity=args.queue_capacity,
        retry_after=args.retry_after,
        jitter_seed=args.jitter_seed,
        breaker_jitter=args.breaker_jitter,
    )
    if args.chaos:
        # Testing only: forward a chaos spec to the workers.  Production
        # servers leave this unset, which also makes workers ignore any
        # per-request "chaos" fields a client might try.
        config.chaos = json.loads(args.chaos)
    supervisor = Supervisor(config=config)
    if args.socket:
        print(f"serving on unix socket {args.socket}", file=sys.stderr)
        telemetry = supervisor.serve_socket(args.socket)
    else:
        telemetry = supervisor.serve_stdio()
    if args.json:
        telemetry["type"] = "telemetry"
        # One NDJSON line: the telemetry shares stdout with the response
        # frames, so it must stay line-parseable like everything else.
        print(json.dumps(telemetry, sort_keys=True, separators=(",", ":")))
    else:
        counters = telemetry["counters"]
        summary = ", ".join(
            f"{name.split('.', 1)[1]} {value}"
            for name, value in sorted(counters.items())
            if name.startswith("serve.")
        )
        print(f"served: {summary or 'no requests'}", file=sys.stderr)
    return 0


def cmd_storm(args) -> int:
    """Chaos-storm the compile service; exit 1 on any lost/wrong request."""
    from repro.serve.chaos import format_storm, run_storm

    def progress(position, response):
        if args.quiet:
            return
        mode = response.get("mode") or response.get("status")
        if mode not in ("optimized", "cached"):
            print(f"  request {position}: {mode}", file=sys.stderr)

    if args.corrupt:
        from repro.serve.chaos import format_corruption_storm, run_corruption_storm

        result = run_corruption_storm(
            requests=args.requests,
            disk_fault_rate=args.disk_fault_rate,
            kill_rate=args.kill_rate,
            seed=args.seed,
            workers=args.workers,
            deadline=args.deadline,
            cache_dir=args.cache_dir,
            min_warm_hit_rate=args.min_warm_hit_rate,
            progress=progress,
        )
        if args.json:
            import json

            print(json.dumps(result.to_json(), indent=2, sort_keys=True))
        else:
            print(format_corruption_storm(result))
        return 0 if result.passed else 1

    if args.burst:
        from repro.serve.chaos import format_burst_storm, run_burst_storm

        result = run_burst_storm(
            requests=args.requests,
            burst_multiple=args.burst_multiple,
            fault_rate=args.fault_rate,
            seed=args.seed,
            workers=args.workers,
            deadline=args.deadline,
            queue_capacity=args.queue_capacity,
            min_p99_improvement=args.min_p99_improvement,
            progress=progress,
        )
        if args.json:
            import json

            print(json.dumps(result.to_json(), indent=2, sort_keys=True))
        else:
            print(format_burst_storm(result))
        return 0 if result.passed else 1

    result = run_storm(
        requests=args.requests,
        fault_rate=args.fault_rate,
        seed=args.seed,
        workers=args.workers,
        deadline=args.deadline,
        progress=progress,
    )
    if args.json:
        import json

        print(json.dumps(result.to_json(), indent=2, sort_keys=True))
    else:
        print(format_storm(result))
    return 0 if result.passed else 1


# ----------------------------------------------------------------------
# Parser.
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ABCD bounds-check elimination (PLDI 2000) reproduction",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help="compile and execute")
    _add_compile_flags(run_parser)
    run_parser.add_argument("--fn", default="main", help="entry function")
    run_parser.add_argument(
        "--args", nargs="*", type=int, default=[], help="integer arguments"
    )
    run_parser.add_argument(
        "--optimize", action="store_true", help="run ABCD before executing"
    )
    run_parser.add_argument("--pre", action="store_true", help="enable PRE")
    _add_budget_flags(run_parser)
    run_parser.set_defaults(handler=cmd_run)

    opt_parser = commands.add_parser("optimize", help="run ABCD and report")
    _add_compile_flags(opt_parser)
    opt_parser.add_argument("--fn", default="main", help="entry for profiling/compare")
    opt_parser.add_argument("--pre", action="store_true", help="enable PRE")
    opt_parser.add_argument(
        "--gvn", choices=["off", "consult", "augment"], default="consult"
    )
    opt_parser.add_argument("--upper-only", action="store_true")
    opt_parser.add_argument("--lower-only", action="store_true")
    opt_parser.add_argument("--no-allocation-facts", action="store_true")
    opt_parser.add_argument(
        "--compare", action="store_true", help="run before/after and compare"
    )
    opt_parser.add_argument(
        "--emit-ir", action="store_true", help="print the optimized IR"
    )
    opt_parser.add_argument(
        "--time-passes",
        action="store_true",
        help="print per-pass timing and analysis-cache statistics",
    )
    opt_parser.add_argument(
        "--certify",
        action="store_true",
        help="emit and independently check a proof witness per elimination",
    )
    opt_parser.add_argument(
        "--cache-dir", metavar="DIR",
        help="persistent certificate store: serve from a verified cached "
        "entry when one exists, else compile certified and store it",
    )
    _add_budget_flags(opt_parser)
    opt_parser.set_defaults(handler=cmd_optimize)

    cache_parser = commands.add_parser(
        "cache",
        help="inspect and maintain a persistent certificate store",
    )
    cache_commands = cache_parser.add_subparsers(
        dest="cache_command", required=True
    )
    cache_stats = cache_commands.add_parser(
        "stats", help="entry counts, bytes, and store counters"
    )
    cache_stats.add_argument("--json", action="store_true")
    cache_verify = cache_commands.add_parser(
        "verify",
        help="replay every entry's every certificate; quarantine and "
        "report failures (exit 1 on any rejection)",
    )
    cache_verify.add_argument("--json", action="store_true")
    cache_gc = cache_commands.add_parser(
        "gc", help="prune entries by age and/or count (oldest first)"
    )
    cache_gc.add_argument(
        "--max-entries", type=int, default=None, metavar="N",
        help="keep at most N entries",
    )
    cache_gc.add_argument(
        "--max-age", type=float, default=None, metavar="SECONDS",
        help="drop entries (and quarantine files) older than this",
    )
    cache_evict = cache_commands.add_parser(
        "evict", help="remove one entry by fingerprint"
    )
    cache_evict.add_argument("fingerprint", help="the entry's store fingerprint")
    for sub in (cache_stats, cache_verify, cache_gc, cache_evict):
        sub.add_argument(
            "--cache-dir", required=True, metavar="DIR",
            help="store root directory",
        )
        sub.set_defaults(handler=cmd_cache)

    cert_parser = commands.add_parser(
        "certify", help="optimize with proof-witness certification and report"
    )
    _add_compile_flags(cert_parser)
    cert_parser.add_argument("--fn", default="main", help="entry for profiling")
    cert_parser.add_argument("--pre", action="store_true", help="enable PRE")
    cert_parser.add_argument(
        "--gvn", choices=["off", "consult", "augment"], default="consult"
    )
    cert_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the deterministic certificate payload as JSON",
    )
    _add_budget_flags(cert_parser)
    cert_parser.set_defaults(handler=cmd_certify)

    ir_parser = commands.add_parser("ir", help="print compiled IR")
    _add_compile_flags(ir_parser)
    ir_parser.add_argument("--fn", default=None, help="only this function")
    ir_parser.set_defaults(handler=cmd_ir)

    dot_parser = commands.add_parser("dot", help="emit Graphviz")
    _add_compile_flags(dot_parser)
    dot_parser.add_argument("--fn", required=True)
    dot_parser.add_argument(
        "--graph", choices=["cfg", "upper", "lower"], default="cfg"
    )
    dot_parser.set_defaults(handler=cmd_dot)

    bench_parser = commands.add_parser("bench", help="Figure-6 table")
    bench_parser.add_argument("--names", nargs="*", help="corpus subset")
    bench_parser.add_argument("--no-pre", action="store_true")
    _add_solver_flag(bench_parser)
    bench_parser.add_argument(
        "--certify",
        action="store_true",
        help="certify every elimination; exit 1 on any rejection",
    )
    bench_parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable results including per-pass session stats",
    )
    bench_parser.set_defaults(handler=cmd_bench)

    fuzz_parser = commands.add_parser(
        "fuzz", help="differential fuzzing campaign over random programs"
    )
    fuzz_parser.add_argument(
        "--seeds", type=int, default=100, metavar="N",
        help="number of programs to generate and check",
    )
    fuzz_parser.add_argument(
        "--seed-base", type=int, default=0, metavar="K",
        help="first generator seed (same base => byte-identical campaign)",
    )
    fuzz_parser.add_argument(
        "--shrink", action="store_true",
        help="delta-debug each new finding down to a minimal reproducer",
    )
    fuzz_parser.add_argument(
        "--certify", action="store_true",
        help="run the certificate checker on the optimized side",
    )
    fuzz_parser.add_argument(
        "--codegen", action="store_true",
        help="also execute generated Python code as a third backend",
    )
    fuzz_parser.add_argument(
        "--no-inline", action="store_true",
        help="skip inlining on the optimized side",
    )
    fuzz_parser.add_argument(
        "--fuel", type=int, default=400_000, metavar="N",
        help="interpreter instruction budget per execution",
    )
    fuzz_parser.add_argument(
        "--deadline-per-program", type=float, default=10.0, metavar="SECONDS",
        help="SIGALRM deadline per program (compile + both runs)",
    )
    fuzz_parser.add_argument(
        "--report", metavar="PATH",
        help="write the deterministic triage JSON report here",
    )
    fuzz_parser.add_argument(
        "--corpus-dir", metavar="DIR",
        help="write minimized reproducers into DIR (e.g. tests/fuzz_corpus)",
    )
    fuzz_parser.add_argument(
        "--json", action="store_true",
        help="emit the deterministic campaign payload as JSON",
    )
    fuzz_parser.add_argument(
        "--profile", choices=("default", "deep-chain"), default="default",
        help="program shape: ABCD-biased random mix, or straight-line "
        "π/copy chains and φ-ladders stressing solver depth",
    )
    fuzz_parser.add_argument(
        "--chain-depth", type=int, default=2000, metavar="N",
        help="value-chain length for --profile deep-chain",
    )
    fuzz_parser.add_argument(
        "--quiet", action="store_true", help="suppress the stderr ticker"
    )
    fuzz_parser.set_defaults(handler=cmd_fuzz)

    serve_parser = commands.add_parser(
        "serve",
        help="crash-isolated compile service (NDJSON over stdin/stdout "
        "or a Unix socket)",
    )
    _add_solver_flag(serve_parser)
    serve_parser.add_argument(
        "--socket", metavar="PATH",
        help="serve on this Unix socket instead of stdin/stdout",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker subprocess pool size",
    )
    serve_parser.add_argument(
        "--deadline", type=float, default=10.0, metavar="SECONDS",
        help="supervisor-side wall-clock deadline per worker attempt",
    )
    serve_parser.add_argument(
        "--mem-mb", type=int, default=512, metavar="MB",
        help="worker RLIMIT_AS address-space cap (0 = uncapped)",
    )
    serve_parser.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="optimized attempts per request beyond the first",
    )
    serve_parser.add_argument(
        "--recycle-after", type=int, default=64, metavar="N",
        help="recycle each worker after N requests (0 = never)",
    )
    serve_parser.add_argument(
        "--breaker-threshold", type=int, default=3, metavar="N",
        help="consecutive failures that open a fingerprint's breaker",
    )
    serve_parser.add_argument(
        "--breaker-cooldown", type=float, default=30.0, metavar="SECONDS",
        help="open-breaker cooldown before a half-open probe",
    )
    serve_parser.add_argument(
        "--fuel", type=int, default=50_000_000, metavar="N",
        help="interpreter instruction budget per execution",
    )
    serve_parser.add_argument(
        "--cache-dir", metavar="DIR",
        help="persistent certificate store: hits are certificate-replayed "
        "by the supervisor and pushed to workers; misses are captured "
        "and stored; open breakers persist here across restarts",
    )
    serve_parser.add_argument(
        "--chaos", metavar="JSON",
        help="(testing) chaos fault spec forwarded to workers",
    )
    serve_parser.add_argument(
        "--no-overload", action="store_true",
        help="disable overload control (unbounded queue, no shedding, "
        "degradation ladder pinned at level 0)",
    )
    serve_parser.add_argument(
        "--queue-capacity", type=int, default=64, metavar="N",
        help="admission queue bound; arrivals beyond it are shed with a "
        "retry_after hint",
    )
    serve_parser.add_argument(
        "--retry-after", type=float, default=0.25, metavar="SECONDS",
        help="base backpressure hint on shed responses (scaled by queue "
        "depth and degradation level)",
    )
    serve_parser.add_argument(
        "--jitter-seed", type=int, default=0, metavar="K",
        help="seed of the retry-backoff / breaker-cooldown jitter RNG",
    )
    serve_parser.add_argument(
        "--breaker-jitter", type=float, default=0.1, metavar="R",
        help="breaker cooldown full-jitter fraction (0 disables)",
    )
    serve_parser.add_argument(
        "--json", action="store_true",
        help="emit final telemetry (counters, breakers, workers) as JSON",
    )
    serve_parser.set_defaults(handler=cmd_serve)

    storm_parser = commands.add_parser(
        "storm",
        help="chaos-storm the compile service under injected process "
        "faults; exit 1 on any lost request or wrong answer",
    )
    storm_parser.add_argument(
        "--requests", type=int, default=200, metavar="N",
        help="number of requests in the storm",
    )
    storm_parser.add_argument(
        "--fault-rate", type=float, default=0.1, metavar="R",
        help="fraction of requests carrying an injected fault",
    )
    storm_parser.add_argument(
        "--seed", type=int, default=0, metavar="K",
        help="storm schedule seed (same seed => same storm)",
    )
    storm_parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker subprocess pool size",
    )
    storm_parser.add_argument(
        "--deadline", type=float, default=3.0, metavar="SECONDS",
        help="per-attempt deadline (hang faults cost this long)",
    )
    storm_parser.add_argument(
        "--corrupt", action="store_true",
        help="corruption storm: cache-enabled service under at-rest disk "
        "faults, worker SIGKILLs, and a mid-storm supervisor restart, "
        "followed by a warm-restart hit-rate and byte-identity phase",
    )
    storm_parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="(--corrupt) store root; default is a fresh temp directory",
    )
    storm_parser.add_argument(
        "--disk-fault-rate", type=float, default=0.1, metavar="R",
        help="(--corrupt) per-request probability of corrupting a random "
        "committed entry at rest",
    )
    storm_parser.add_argument(
        "--kill-rate", type=float, default=0.05, metavar="R",
        help="(--corrupt) per-request probability of SIGKILLing a worker",
    )
    storm_parser.add_argument(
        "--min-warm-hit-rate", type=float, default=0.5, metavar="R",
        help="(--corrupt) warm-phase hit-rate floor for a passing storm",
    )
    storm_parser.add_argument(
        "--burst", action="store_true",
        help="burst storm: open-loop seeded arrivals at --burst-multiple "
        "times measured capacity, driven through admission control and "
        "the degradation ladder, then compared against an "
        "unbounded-queue baseline under the same schedule",
    )
    storm_parser.add_argument(
        "--burst-multiple", type=float, default=4.0, metavar="X",
        help="(--burst) arrival rate as a multiple of measured capacity",
    )
    storm_parser.add_argument(
        "--queue-capacity", type=int, default=32, metavar="N",
        help="(--burst) admission queue bound of the overload leg",
    )
    storm_parser.add_argument(
        "--min-p99-improvement", type=float, default=5.0, metavar="X",
        help="(--burst) required p99 latency ratio (baseline / overload) "
        "for a passing storm",
    )
    storm_parser.add_argument(
        "--json", action="store_true",
        help="emit the storm verdict as JSON",
    )
    storm_parser.add_argument(
        "--quiet", action="store_true", help="suppress the stderr ticker"
    )
    storm_parser.set_defaults(handler=cmd_storm)

    return parser


def _format_diagnostic(args, exc: ReproError) -> str:
    """One-line ``file:line:col: message`` diagnostic for user errors.

    :class:`CompileError` already embeds ``line:col:`` in its message, so
    prefixing the source path yields the canonical compiler format; other
    :class:`ReproError` subclasses (runtime traps, guard escalations) have
    no source location and keep the plain ``error:`` prefix.
    """
    source_file = getattr(args, "file", None)
    if isinstance(exc, CompileError) and exc.location is not None and source_file:
        return f"{source_file}:{exc}"
    return f"error: {exc}"


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(_format_diagnostic(args, exc), file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
