"""Process-global resource limits, managed without leaking.

Both the SSA renaming walk (one frame per dominator-tree node) and
generated-code execution (one Python frame per MiniJ call) can exceed
CPython's default recursion limit on deep inputs.  Raising
``sys.setrecursionlimit`` is a *global* side effect, so it must always be
paired with a restore — this context manager is the single place that
pattern lives.
"""

from __future__ import annotations

import contextlib
import sys
from typing import Iterator


@contextlib.contextmanager
def recursion_headroom(needed: int) -> Iterator[None]:
    """Temporarily ensure the recursion limit is at least ``needed``.

    The previous limit is restored on exit even when the body raises, so
    the (interpreter-wide) setting never leaks past the work that needed
    it.  A limit already at or above ``needed`` is left untouched.
    """
    old_limit = sys.getrecursionlimit()
    if old_limit < needed:
        sys.setrecursionlimit(needed)
    try:
        yield
    finally:
        sys.setrecursionlimit(old_limit)
