"""Process-global resource limits, managed without leaking.

Both the SSA renaming walk (one frame per dominator-tree node) and
generated-code execution (one Python frame per MiniJ call) can exceed
CPython's default recursion limit on deep inputs.  Raising
``sys.setrecursionlimit`` is a *global* side effect, so it must always be
paired with a restore — this context manager is the single place that
pattern lives.

The same reasoning applies to ``SIGALRM``: the fuzz oracle, the benchmark
suite, and ad-hoc scripts all need a hard wall-clock ceiling around one
unit of work, and an alarm handler/timer left installed is a global leak
exactly like a raised recursion limit.  :func:`hard_deadline` is the
single implementation; it is deliberately *not* used by the compile
service supervisor, whose deadlines must outlive a hung worker
subprocess (``SIGALRM`` does not compose with a multi-process server —
it fires in whichever process armed it, not in the one that hung).
"""

from __future__ import annotations

import contextlib
import signal
import sys
import threading
from typing import Callable, Iterator, Optional


@contextlib.contextmanager
def recursion_headroom(needed: int) -> Iterator[None]:
    """Temporarily ensure the recursion limit is at least ``needed``.

    The previous limit is restored on exit even when the body raises, so
    the (interpreter-wide) setting never leaks past the work that needed
    it.  A limit already at or above ``needed`` is left untouched.
    """
    old_limit = sys.getrecursionlimit()
    if old_limit < needed:
        sys.setrecursionlimit(needed)
    try:
        yield
    finally:
        sys.setrecursionlimit(old_limit)


class HardDeadlineExceeded(BaseException):
    """The :func:`hard_deadline` wall-clock ceiling fired.

    A ``BaseException`` (like :class:`KeyboardInterrupt`) so the
    containment layers that may be running *under* the deadline — the
    pass guard's ``except Exception`` rollback in particular — cannot
    swallow it.  A contained deadline would be worse than a late one:
    the one-shot timer is already spent, so the body would run on with
    no wall-clock bound at all.  Catch it explicitly at the layer that
    armed the deadline, never via a blanket ``except Exception``."""


@contextlib.contextmanager
def hard_deadline(
    seconds: Optional[float],
    make_error: Optional[Callable[[], BaseException]] = None,
) -> Iterator[None]:
    """Bound the body with a ``SIGALRM`` wall-clock ceiling.

    When the timer fires, the exception produced by ``make_error``
    (default: :class:`HardDeadlineExceeded`) is raised *inside* the body.
    The previous handler and any previously armed itimer are restored on
    exit, so nested deadlines and surrounding alarms are preserved.

    This is a **main-thread-only** guard: ``SIGALRM`` can only be
    delivered to the main thread, and only one itimer exists per process.
    Off the main thread, on platforms without ``SIGALRM``, or with a
    non-positive/absent ``seconds`` the context manager is a no-op — any
    fuel or step budgets the caller layered underneath still apply.
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def on_timeout(signum, frame):
        if make_error is not None:
            raise make_error()
        raise HardDeadlineExceeded(
            f"exceeded {seconds:.1f}s wall-clock deadline"
        )

    previous_handler = signal.signal(signal.SIGALRM, on_timeout)
    previous_delay, _ = signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, previous_delay)
        signal.signal(signal.SIGALRM, previous_handler)


def address_space_cap(max_bytes: int) -> bool:
    """Cap this process's address space (``RLIMIT_AS``) at ``max_bytes``.

    Used by compile-service workers so a runaway allocation inside an
    optimization pass surfaces as a contained :class:`MemoryError` (or at
    worst kills only the worker) instead of driving the whole machine
    into swap.  Returns ``True`` when the cap was applied; platforms
    without the ``resource`` module (or where lowering the limit is
    refused) return ``False`` and run uncapped — the supervisor-side
    deadline still bounds the damage.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-posix platforms
        return False
    try:
        soft, hard = resource.getrlimit(resource.RLIMIT_AS)
        ceiling = hard if hard != resource.RLIM_INFINITY else max_bytes
        resource.setrlimit(resource.RLIMIT_AS, (min(max_bytes, ceiling), hard))
        return True
    except (ValueError, OSError):  # pragma: no cover - refused by kernel
        return False
