"""Adversarial fault injection: corrupt the optimizer, prove the net holds.

Each registered fault deliberately breaks one layer of the system the way
a real bug would — wrong inequality-graph edge weights, poisoned solver
memo entries, a PRE transformation that forgets its compensating check, an
opt pass that raises or emits malformed IR.  The harness then runs the
full fail-safe pipeline under the fault and reports how the safety net
responded.

Every fault carries its *expected containment*:

* ``"rollback"`` — the pass guard must detect it (exception or verifier
  failure) and roll the function back;
* ``"gate"`` — the corruption produces well-formed but *unsound* IR; only
  the differential soundness gate can catch it, by observing divergent
  behavior and reverting to the unoptimized program;
* ``"harmless"`` — the corruption is provably conservative (it can only
  prevent eliminations, never enable wrong ones), so behavior is
  preserved with no intervention;
* ``"revoke"`` — the corruption forges or mangles a proof witness; the
  independent certificate checker (:mod:`repro.certify`) must reject it
  and the revocation ladder keep the affected checks in place, with no
  crash and no behavioral change.

``tests/test_fault_injection.py`` asserts every fault lands in its
expected bucket and that no fault ever crashes the pipeline or lets a
behavioral divergence escape.
"""

from __future__ import annotations

import contextlib
import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.core.abcd import ABCDConfig, ABCDReport
from repro.core.graph import len_node
from repro.core.lattice import ProofResult
from repro.core.solver import ProveOutcome


@contextlib.contextmanager
def _patched(obj, name: str, replacement) -> Iterator[None]:
    """Temporarily replace ``obj.name`` (module attribute or class
    method); always restored, even when the body raises."""
    original = getattr(obj, name)
    setattr(obj, name, replacement)
    try:
        yield
    finally:
        setattr(obj, name, original)


# ----------------------------------------------------------------------
# Graph-construction faults (corrupt the bundle ``build_graphs`` returns).
# ----------------------------------------------------------------------


def _corrupting_build_graphs(mutator: Callable) -> contextlib.AbstractContextManager:
    import repro.core.abcd as abcd_module
    import repro.core.constraints as constraints_module

    real = constraints_module.build_graphs

    def wrapper(fn, **kwargs):
        bundle = real(fn, **kwargs)
        mutator(bundle)
        return bundle

    # ``abcd`` imported the builder by name, so patch its binding.
    return _patched(abcd_module, "build_graphs", wrapper)


def _tighten_all_weights(bundle) -> None:
    """Every constraint claims one more than the program guarantees."""
    for graph in (bundle.upper, bundle.lower):
        for target, edges in graph._in_edges.items():
            graph._in_edges[target] = [
                dataclasses.replace(edge, weight=edge.weight - 1) for edge in edges
            ]


def _drop_min_vertex_edges(bundle) -> None:
    """Drop one in-edge of every min vertex.

    Min vertices join over alternatives (any constraint suffices), so
    removing constraints can only *prevent* proofs — provably harmless.
    """
    for graph in (bundle.upper, bundle.lower):
        for target in list(graph._in_edges):
            if graph.is_phi(target):
                continue
            edges = graph._in_edges[target]
            if len(edges) > 1:
                graph._in_edges[target] = edges[1:]


def _drop_phi_variant_edges(bundle) -> None:
    """Keep only constant in-edges of φ vertices.

    φ vertices meet over all control-flow paths; hiding the loop-carried
    (variable) path makes an induction variable look like its initial
    constant — a classically unsound graph bug.
    """
    for graph in (bundle.upper, bundle.lower):
        for target in list(graph._in_edges):
            if not graph.is_phi(target):
                continue
            edges = graph._in_edges[target]
            consts = [edge for edge in edges if edge.source.kind == "const"]
            if consts and len(consts) < len(edges):
                graph._in_edges[target] = consts


def _spurious_length_edges(bundle) -> None:
    """Claim every variable is strictly below the first array's length."""
    if not bundle.array_vars:
        return
    source = len_node(sorted(bundle.array_vars)[0])
    graph = bundle.upper
    for node in list(graph.nodes()):
        if node.kind == "var":
            graph.add_edge(source, node, -1, None)


# ----------------------------------------------------------------------
# Solver faults (memoization poisoning, lattice corruption).
# ----------------------------------------------------------------------


def _memo_lookup_poisoned_true() -> contextlib.AbstractContextManager:
    from repro.core.solver import _Memo

    def poisoned(self, budget):
        return ProofResult.TRUE

    return _patched(_Memo, "lookup", poisoned)


def _memo_lookup_poisoned_false() -> contextlib.AbstractContextManager:
    from repro.core.solver import _Memo

    def poisoned(self, budget):
        return ProofResult.FALSE

    return _patched(_Memo, "lookup", poisoned)


def _solver_always_true() -> contextlib.AbstractContextManager:
    import repro.core.abcd as abcd_module

    class AlwaysTrueProver:
        def __init__(self, graph, edge_filter=None, **kwargs):
            self.steps = 0
            self.budget_exhausted = False

        def demand_prove(self, source, target, budget, direction=None):
            self.steps += 1
            return ProveOutcome(ProofResult.TRUE, self.steps)

    return _patched(abcd_module, "DemandProver", AlwaysTrueProver)


# ----------------------------------------------------------------------
# PRE faults (corrupt the compensating-check transformation).
# ----------------------------------------------------------------------


def _pre_skip_insertion() -> contextlib.AbstractContextManager:
    import repro.core.pre as pre_module

    def skipped(fn, program, site, point, guard_group):
        return None  # guard flag can now never be raised

    return _patched(pre_module, "_insert_compensating_check", skipped)


def _pre_weaken_offset() -> contextlib.AbstractContextManager:
    import repro.core.pre as pre_module

    real = pre_module._insert_compensating_check

    def weakened(fn, program, site, point, guard_group):
        weaker = dataclasses.replace(point, offset=point.offset - 2)
        return real(fn, program, site, weaker, guard_group)

    return _patched(pre_module, "_insert_compensating_check", weakened)


# ----------------------------------------------------------------------
# Certificate faults (corrupt the emitted proof witnesses; the
# independent checker must reject them and the ladder revoke the
# eliminations — behavior unchanged, no crash).
# ----------------------------------------------------------------------


def _rewrite_first(witness, predicate, rewrite):
    """Rewrite the first (pre-order) witness node matching ``predicate``;
    returns the original tree when nothing matches."""
    from repro.certify.witness import EdgeWitness, PhiWitness

    if predicate(witness):
        return rewrite(witness)
    if isinstance(witness, EdgeWitness):
        sub = _rewrite_first(witness.sub, predicate, rewrite)
        if sub is not witness.sub:
            return dataclasses.replace(witness, sub=sub)
        return witness
    if isinstance(witness, PhiWitness):
        branches = list(witness.branches)
        for position, (source, weight, sub) in enumerate(branches):
            new = _rewrite_first(sub, predicate, rewrite)
            if new is not sub:
                branches[position] = (source, weight, new)
                return dataclasses.replace(witness, branches=tuple(branches))
    return witness


def _corrupting_witnesses(mutator: Callable) -> contextlib.AbstractContextManager:
    """Wrap ``DemandProver.demand_prove`` to corrupt every emitted witness
    (the producer lies; the independent checker must not believe it)."""
    from repro.core.solver import DemandProver

    real = DemandProver.demand_prove

    def wrapper(self, source, target, budget, direction=None):
        outcome = real(self, source, target, budget, direction=direction)
        if outcome.witness is not None:
            outcome.witness = mutator(outcome.witness)
        return outcome

    return _patched(DemandProver, "demand_prove", wrapper)


def _witness_tighten_edge(witness):
    """Claim an inequality edge 1 tighter than the graph justifies."""
    from repro.certify.witness import EdgeWitness

    return _rewrite_first(
        witness,
        lambda w: isinstance(w, EdgeWitness),
        lambda w: dataclasses.replace(w, weight=w.weight - 1),
    )


def _witness_drop_phi_branch(witness):
    """Silently skip one control-flow path of a φ obligation."""
    from repro.certify.witness import PhiWitness

    return _rewrite_first(
        witness,
        lambda w: isinstance(w, PhiWitness) and len(w.branches) > 1,
        lambda w: dataclasses.replace(w, branches=w.branches[:-1]),
    )


def _witness_forge_cycle(witness):
    """Replace the whole derivation with a forged harmless-cycle leaf."""
    from repro.certify.witness import CycleWitness

    return CycleWitness(witness.vertex)


# ----------------------------------------------------------------------
# Opt-pass faults (exceptions mid-flight, malformed IR).
# ----------------------------------------------------------------------


def _opt_pass_raises() -> contextlib.AbstractContextManager:
    import repro.opt as opt_module

    def crashing(fn):
        raise RuntimeError("injected fault: worklist pass crashed mid-flight")

    return _patched(opt_module, "optimize_worklist", crashing)


def _opt_pass_malformed_ir() -> contextlib.AbstractContextManager:
    import repro.opt as opt_module

    real = opt_module.optimize_worklist

    def corrupting(fn):
        result = real(fn)
        for label in fn.reachable_blocks():
            fn.blocks[label].terminator = None  # verifier must reject this
            break
        return dataclasses.replace(result, changes=result.changes + 1)

    return _patched(opt_module, "optimize_worklist", corrupting)


def _abcd_raises() -> contextlib.AbstractContextManager:
    import repro.core.abcd as abcd_module

    def crashing(fn, **kwargs):
        raise RuntimeError("injected fault: graph construction crashed")

    return _patched(abcd_module, "build_graphs", crashing)


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FaultSpec:
    """One registered fault kind."""

    name: str
    #: "graph" | "solver" | "pre" | "pass" | "certificate"
    category: str
    description: str
    #: "rollback" | "gate" | "harmless" | "revoke" — expected containment.
    expect: str
    #: Scenario key (see :data:`SCENARIOS`).
    scenario: str
    inject: Callable[[], contextlib.AbstractContextManager]
    #: The trial must run in certify mode (witness emission + checker).
    certify: bool = False


FAULTS: Dict[str, FaultSpec] = {
    spec.name: spec
    for spec in [
        FaultSpec(
            "graph-tighten-weights", "graph",
            "every inequality edge claims 1 more slack than the program has",
            "gate", "off_by_one",
            lambda: _corrupting_build_graphs(_tighten_all_weights),
        ),
        FaultSpec(
            "graph-drop-min-edges", "graph",
            "one constraint dropped from every min vertex (conservative)",
            "harmless", "off_by_one",
            lambda: _corrupting_build_graphs(_drop_min_vertex_edges),
        ),
        FaultSpec(
            "graph-drop-phi-variant-edges", "graph",
            "loop-carried in-edges of phi vertices hidden",
            "gate", "off_by_one",
            lambda: _corrupting_build_graphs(_drop_phi_variant_edges),
        ),
        FaultSpec(
            "graph-spurious-length-edge", "graph",
            "every variable spuriously bounded below the array length",
            "gate", "off_by_one",
            lambda: _corrupting_build_graphs(_spurious_length_edges),
        ),
        FaultSpec(
            "solver-memo-poison-true", "solver",
            "memo lookups answer True regardless of the recorded result",
            "gate", "diamond",
            _memo_lookup_poisoned_true,
        ),
        FaultSpec(
            "solver-memo-poison-false", "solver",
            "memo lookups answer False regardless of the recorded result",
            "harmless", "off_by_one",
            _memo_lookup_poisoned_false,
        ),
        FaultSpec(
            "solver-always-true", "solver",
            "the prover claims every query holds",
            "gate", "off_by_one",
            _solver_always_true,
        ),
        FaultSpec(
            "pre-skip-insertion", "pre",
            "PRE guards the original check but never inserts the "
            "compensating check",
            "gate", "pre_trap",
            _pre_skip_insertion,
        ),
        FaultSpec(
            "pre-weaken-offset", "pre",
            "compensating checks probe a smaller index than required",
            "gate", "pre_trap",
            _pre_weaken_offset,
        ),
        FaultSpec(
            "cert-corrupt-edge-weight", "certificate",
            "emitted witnesses claim an inequality edge 1 tighter than "
            "the graph has",
            "revoke", "off_by_one",
            lambda: _corrupting_witnesses(_witness_tighten_edge),
            certify=True,
        ),
        FaultSpec(
            "cert-drop-phi-branch", "certificate",
            "emitted witnesses omit one control-flow path of a phi "
            "obligation",
            "revoke", "off_by_one",
            lambda: _corrupting_witnesses(_witness_drop_phi_branch),
            certify=True,
        ),
        FaultSpec(
            "cert-forge-cycle", "certificate",
            "emitted witnesses are replaced by a forged harmless-cycle leaf",
            "revoke", "off_by_one",
            lambda: _corrupting_witnesses(_witness_forge_cycle),
            certify=True,
        ),
        FaultSpec(
            "opt-pass-raises", "pass",
            "the standard worklist pass raises mid-flight",
            "rollback", "off_by_one",
            _opt_pass_raises,
        ),
        FaultSpec(
            "opt-pass-malformed-ir", "pass",
            "the standard worklist pass deletes a block terminator",
            "rollback", "off_by_one",
            _opt_pass_malformed_ir,
        ),
        FaultSpec(
            "abcd-raises", "pass",
            "inequality-graph construction raises inside optimize_function",
            "rollback", "off_by_one",
            _abcd_raises,
        ),
    ]
}


# ----------------------------------------------------------------------
# Trial scenarios: small programs whose behavior exposes the corruption.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """A trial program plus the inputs the differential gate replays."""

    source: str
    pre: bool = False
    inputs: Sequence[Sequence] = ((),)


SCENARIOS: Dict[str, Scenario] = {
    # Off-by-one loop: the final iteration's upper check MUST fire, so any
    # unsound elimination changes observable behavior.
    "off_by_one": Scenario(
        source="""
fn main(): int {
  let a: int[] = new int[4];
  let s: int = 0;
  let i: int = 0;
  while (i <= len(a)) {
    a[i] = i;
    s = s + a[i];
    i = i + 1;
  }
  return s;
}
"""
    ),
    # Reconvergent inequality-graph diamond: the π vertex for ``a[t]`` has
    # two in-edges (the source ``t`` and the predicate variable ``u``) and
    # both paths reach the merge vertex ``t`` — so whichever edge the
    # solver tries second re-queries ``t`` through the memo, which a
    # poisoned lookup flips from a recorded False to True, unsoundly
    # eliminating a check that must trap (a[7], length 3).
    "diamond": Scenario(
        source="""
fn pick(q: int, n: int): int {
  let a: int[] = new int[n];
  let t: int = q + 1;
  let u: int = t + 5;
  let s: int = 0;
  if (t < u) {
    s = a[t];
  }
  return s;
}

fn main(): int {
  return pick(6, 3);
}
"""
    ),
    # Loop-invariant check, hot enough for PRE; the second call traps, so
    # a corrupted compensating check misses a mandatory bounds error.
    "pre_trap": Scenario(
        source="""
fn kernel(a: int[], k: int, n: int): int {
  let s: int = 0;
  let r: int = 0;
  while (r < n) {
    s = s + a[k];
    r = r + 1;
  }
  return s;
}
fn main(): int {
  let a: int[] = new int[8];
  let warm: int = kernel(a, 3, 40);
  return warm + kernel(a, 8, 5);
}
""",
        pre=True,
    ),
}


# ----------------------------------------------------------------------
# Trial driver.
# ----------------------------------------------------------------------


@dataclass
class FaultTrial:
    """Everything observed while running one fault through the net."""

    fault: FaultSpec
    crashed: bool = False
    crash_message: str = ""
    report: Optional[ABCDReport] = None
    compile_rollbacks: int = 0
    gate_reverted: bool = False
    #: Final program behaves identically to a clean (fault-free) compile.
    final_matched: bool = False
    final_detail: str = ""

    @property
    def rollbacks(self) -> int:
        contained = self.compile_rollbacks
        if self.report is not None:
            contained += self.report.rollback_count
        return contained

    @property
    def revocations(self) -> int:
        """Eliminations the certificate checker revoked (certify mode)."""
        return self.report.revoked_count if self.report is not None else 0

    @property
    def contained(self) -> bool:
        """The net held: no crash, and the final program is sound."""
        return not self.crashed and self.final_matched


def run_trial(
    fault_name: str,
    config: Optional[ABCDConfig] = None,
    fuel: int = 50_000_000,
) -> FaultTrial:
    """Run one fault through compile → guarded ABCD → differential gate.

    The fault is active for the whole compile-and-optimize span.  The
    final program (post-gate) is then differentially executed against a
    clean compile of the same scenario — the ground truth the net must
    preserve.
    """
    from repro.pipeline import compile_source
    from repro.robustness.differential import compare_programs, gated_optimize
    from repro.robustness.guard import PassGuard
    from repro.runtime.profiler import collect_profile

    fault = FAULTS[fault_name]
    scenario = SCENARIOS[fault.scenario]
    trial = FaultTrial(fault=fault)

    clean = compile_source(scenario.source)

    try:
        with fault.inject():
            guard = PassGuard()
            program = compile_source(scenario.source, guard=guard)
            trial.compile_rollbacks = guard.rollback_count

            cfg = dataclasses.replace(config) if config is not None else ABCDConfig()
            if fault.certify:
                cfg.certify = True
            profile = None
            if scenario.pre:
                cfg.pre = True
                profile = collect_profile(
                    program, "main", fuel=fuel, on_trap="partial"
                )
            gated = gated_optimize(
                program,
                cfg,
                profile,
                entry="main",
                inputs=scenario.inputs,
                fuel=fuel,
            )
            trial.report = gated.report
            trial.gate_reverted = gated.reverted
    except Exception as exc:  # the net failed: a fault escaped as a crash
        trial.crashed = True
        trial.crash_message = f"{type(exc).__name__}: {exc}"
        return trial

    final = compare_programs(clean, program, "main", scenario.inputs[0], fuel)
    trial.final_matched = final.matched
    trial.final_detail = final.explain()
    return trial


def run_all_trials(
    names: Optional[Sequence[str]] = None,
) -> List[FaultTrial]:
    """Run every registered fault (or the named subset)."""
    selected = names if names is not None else list(FAULTS)
    return [run_trial(name) for name in selected]


# ----------------------------------------------------------------------
# Process-level chaos faults (the compile-service failure model).
#
# The faults above corrupt the optimizer *logically* and are contained
# in-process (guard / gate / checker).  The compile service adds a second
# failure domain: the worker subprocess itself can die, hang, run out of
# memory, or scribble on its response pipe.  Each chaos fault below
# executes *inside a worker* at the optimization injection point
# (see :mod:`repro.serve.worker`); the supervisor must recover via its
# deadline / retry / circuit-breaker / degradation machinery, never by
# dying.  ``tests/test_serve.py`` and the ``repro storm`` harness assert
# exactly that.
# ----------------------------------------------------------------------


@dataclass
class ChaosContext:
    """What a chaos fault may touch inside the worker.

    ``raw_write`` bypasses the framing layer and writes bytes straight to
    the response pipe — the only way to produce the truncated/corrupt
    frames the supervisor's protocol validation must survive.
    """

    raw_write: Callable[[bytes], None]
    #: How long a hang sleeps — far past any supervisor deadline, so the
    #: supervisor-side timer (not the worker) must end it.
    hang_seconds: float = 3600.0
    #: How long a slow-but-honest response stalls (must stay well inside
    #: the deadline: the request should still succeed).
    slow_seconds: float = 0.05
    #: Whether ``resource.setrlimit`` actually capped this worker; the
    #: OOM fault only allocates for real under a cap.
    mem_cap_applied: bool = False


def _chaos_crash(ctx: ChaosContext) -> None:
    import os
    import signal as signal_module

    os.kill(os.getpid(), signal_module.SIGKILL)


def _chaos_hang(ctx: ChaosContext) -> None:
    import time

    time.sleep(ctx.hang_seconds)


def _chaos_oom(ctx: ChaosContext) -> None:
    if not ctx.mem_cap_applied:
        # No rlimit on this platform: allocating for real could drive the
        # host into swap, which is the exact failure the cap prevents.
        raise MemoryError("simulated allocation blowup (no RLIMIT_AS)")
    hoard = []
    while True:  # raises MemoryError when the address-space cap fires
        hoard.append(bytearray(16 * 1024 * 1024))


def _chaos_truncated_frame(ctx: ChaosContext) -> None:
    import os

    ctx.raw_write(b'{"status":"ok","value":42,"id"')  # no newline, no end
    os._exit(1)


def _chaos_corrupt_frame(ctx: ChaosContext) -> None:
    import os

    ctx.raw_write(b"\x00\xffnot json at all{{{\n")
    os._exit(1)


def _chaos_slow_response(ctx: ChaosContext) -> None:
    import time

    time.sleep(ctx.slow_seconds)


@dataclass(frozen=True)
class ChaosFaultSpec:
    """One process-level fault a worker can self-inject mid-compile."""

    name: str
    description: str
    #: "fatal" — the optimized attempt cannot produce a response (the
    #: supervisor must deadline-kill / respawn / retry / degrade);
    #: "benign" — the response still arrives correct and within deadline.
    severity: str
    inject: Callable[[ChaosContext], None]


CHAOS_FAULTS: Dict[str, ChaosFaultSpec] = {
    spec.name: spec
    for spec in [
        ChaosFaultSpec(
            "worker-crash",
            "the worker SIGKILLs itself mid-compile (segfault stand-in)",
            "fatal",
            _chaos_crash,
        ),
        ChaosFaultSpec(
            "worker-hang",
            "the worker sleeps far past the request deadline",
            "fatal",
            _chaos_hang,
        ),
        ChaosFaultSpec(
            "worker-oom",
            "the worker allocates until the RLIMIT_AS memory cap fires",
            "fatal",
            _chaos_oom,
        ),
        ChaosFaultSpec(
            "frame-truncated",
            "the worker emits half a response frame and exits",
            "fatal",
            _chaos_truncated_frame,
        ),
        ChaosFaultSpec(
            "frame-corrupt",
            "the worker emits non-JSON bytes as its response and exits",
            "fatal",
            _chaos_corrupt_frame,
        ),
        ChaosFaultSpec(
            "slow-response",
            "the worker stalls briefly but answers correctly in time",
            "benign",
            _chaos_slow_response,
        ),
    ]
}

#: The fault names whose optimized attempt can never succeed.
FATAL_CHAOS_FAULTS = tuple(
    name for name, spec in CHAOS_FAULTS.items() if spec.severity == "fatal"
)


# ----------------------------------------------------------------------
# Disk faults (the persistent certificate store's failure model).
#
# Two shapes.  **At-rest** faults corrupt the bytes of one committed
# entry the way real storage fails — torn writes, flipped bits, stale
# formats, or a deliberate forgery — and carry the load-ladder reason the
# store must answer with (``None`` means the entry must still load: the
# fault exercises recovery machinery, not rejection).  **Write-time**
# faults wrap the store's atomic writer (ENOSPC, EACCES, a concurrent
# writer racing on the same entry); the store must degrade to "uncached"
# — counters tick, no exception escapes, and the objects directory stays
# consistent.  The forged-certificate fault is the critical one: it
# survives every envelope rung (its checksum is valid, its JSON well
# formed) and must be caught *only* by certificate replay — the rung that
# makes the whole store zero-trust.
# ----------------------------------------------------------------------


def _entry_root(entry_path) -> "object":
    """objects/<shard>/<fp>.entry → the store root."""
    return entry_path.parents[2]


def _disk_truncate(entry_path) -> None:
    data = entry_path.read_bytes()
    entry_path.write_bytes(data[: max(1, int(len(data) * 0.6))])


def _disk_flip_payload_byte(entry_path) -> None:
    data = bytearray(entry_path.read_bytes())
    mark = bytes(data).rfind(b"\n#sha256:")
    position = mark // 2 if mark > 0 else 0
    data[position] ^= 0x20
    entry_path.write_bytes(bytes(data))


def _disk_flip_footer_byte(entry_path) -> None:
    data = bytearray(entry_path.read_bytes())
    mark = bytes(data).rfind(b"\n#sha256:")
    position = mark + len(b"\n#sha256:") + 10  # inside the 64 hex chars
    data[position] = ord("1") if data[position] != ord("1") else ord("2")
    entry_path.write_bytes(bytes(data))


def _rewrite_valid_envelope(entry_path, mutate) -> None:
    """Decode the payload, apply ``mutate(obj)``, re-encode with a
    *correct* checksum: the result clears every envelope rung."""
    import hashlib
    import json

    data = entry_path.read_bytes()
    mark = data.rfind(b"\n#sha256:")
    obj = json.loads(data[:mark].decode("utf-8"))
    mutate(obj)
    payload = json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")
    digest = hashlib.sha256(payload).hexdigest().encode("ascii")
    entry_path.write_bytes(payload + b"\n#sha256:" + digest + b"\n")


def _disk_stale_schema(entry_path) -> None:
    _rewrite_valid_envelope(entry_path, lambda obj: obj.__setitem__("schema", 0))


def _forge_witness(obj) -> None:
    """Tamper the first stored certificate: tighten the first edge weight
    found (an iterative walk — witnesses nest arbitrarily deep), or, for
    an entry with no edge witnesses, retarget the first elimination."""
    for elims in obj.get("eliminations", {}).values():
        for elim in elims:
            stack = [elim.get("witness")]
            while stack:
                node = stack.pop()
                if not isinstance(node, dict):
                    continue
                if node.get("node") == "edge":
                    node["weight"] = node["weight"] - 1
                    return
                stack.append(node.get("sub"))
                for branch in node.get("branches", []) or []:
                    stack.append(branch.get("sub") if isinstance(branch, dict) else None)
            elim["target"] = {"kind": "var", "name": "__forged__"}
            return


def _disk_forged_certificate(entry_path) -> None:
    _rewrite_valid_envelope(entry_path, _forge_witness)


def _disk_stray_tmp(entry_path) -> None:
    """Plant a half-written temporary (a SIGKILL mid-write): the entry
    itself stays valid and the next store open must clean the stray."""
    tmp_dir = _entry_root(entry_path) / "tmp"
    (tmp_dir / "stray-killed-writer.tmp").write_bytes(b'{"half":')


def _disk_write_errno(code: int, message: str) -> contextlib.AbstractContextManager:
    import repro.store.atomic as atomic_module

    def failing(path, data, tmp_dir=None):
        raise OSError(code, message)

    return _patched(atomic_module, "atomic_write_bytes", failing)


def _disk_enospc() -> contextlib.AbstractContextManager:
    import errno

    return _disk_write_errno(errno.ENOSPC, "injected fault: no space left on device")


def _disk_eacces() -> contextlib.AbstractContextManager:
    import errno

    return _disk_write_errno(errno.EACCES, "injected fault: permission denied")


def _disk_concurrent_writer() -> contextlib.AbstractContextManager:
    """Two writers race on one entry.  Entries are content-addressed and
    deterministically encoded, so true racers carry identical bytes; the
    rename protocol makes the last one win wholesale and the entry must
    stay valid."""
    import repro.store.atomic as atomic_module

    real = atomic_module.atomic_write_bytes

    def racing(path, data, tmp_dir=None):
        real(path, data, tmp_dir=tmp_dir)  # the competitor lands first
        real(path, data, tmp_dir=tmp_dir)  # then this writer replaces it

    return _patched(atomic_module, "atomic_write_bytes", racing)


@dataclass(frozen=True)
class DiskFaultSpec:
    """One registered store fault."""

    name: str
    description: str
    #: "at-rest" corrupts a committed entry file; "write" wraps the
    #: store's atomic writer for the duration of the context.
    mode: str
    #: at-rest only: prefix of the load-ladder reason the store must
    #: report (``None`` — the entry must still load as a hit).
    expect_reason: Optional[str] = None
    corrupt: Optional[Callable] = None
    inject: Optional[Callable[[], contextlib.AbstractContextManager]] = None
    #: write only: "uncached" (put returns False) | "benign" (put works).
    expect_write: Optional[str] = None


DISK_FAULTS: Dict[str, DiskFaultSpec] = {
    spec.name: spec
    for spec in [
        DiskFaultSpec(
            "disk-torn-write", "entry truncated mid-payload (torn write)",
            "at-rest", expect_reason="truncated", corrupt=_disk_truncate,
        ),
        DiskFaultSpec(
            "disk-flip-payload-byte", "one payload byte flipped at rest",
            "at-rest", expect_reason="checksum", corrupt=_disk_flip_payload_byte,
        ),
        DiskFaultSpec(
            "disk-flip-footer-byte", "one checksum-footer byte flipped at rest",
            "at-rest", expect_reason="checksum", corrupt=_disk_flip_footer_byte,
        ),
        DiskFaultSpec(
            "disk-stale-schema",
            "valid envelope carrying a foreign schema version",
            "at-rest", expect_reason="schema", corrupt=_disk_stale_schema,
        ),
        DiskFaultSpec(
            "disk-forged-certificate",
            "forged certificate inside a perfectly valid envelope — only "
            "certificate replay can catch it",
            "at-rest", expect_reason="certificate", corrupt=_disk_forged_certificate,
        ),
        DiskFaultSpec(
            "disk-stray-tmp",
            "half-written temporary left by a SIGKILLed writer; the entry "
            "itself must still serve and the next open must clean up",
            "at-rest", expect_reason=None, corrupt=_disk_stray_tmp,
        ),
        DiskFaultSpec(
            "disk-enospc", "every store write fails with ENOSPC",
            "write", inject=_disk_enospc, expect_write="uncached",
        ),
        DiskFaultSpec(
            "disk-eacces", "every store write fails with EACCES",
            "write", inject=_disk_eacces, expect_write="uncached",
        ),
        DiskFaultSpec(
            "disk-concurrent-writer",
            "a competing writer lands the same entry first",
            "write", inject=_disk_concurrent_writer, expect_write="benign",
        ),
    ]
}

#: At-rest fault names that must *reject* (quarantine or replay-reject).
CORRUPTING_DISK_FAULTS = tuple(
    name
    for name, spec in DISK_FAULTS.items()
    if spec.mode == "at-rest" and spec.expect_reason is not None
)


def decide_chaos_fault(
    seed: int,
    request_id,
    attempt: int,
    rate: float,
    names: Optional[Sequence[str]] = None,
) -> Optional[str]:
    """Deterministic per-attempt fault decision for rate-based chaos.

    Hashing ``(seed, request_id, attempt)`` makes a campaign replayable
    (same seed ⇒ same faults) while still letting a *retry* of the same
    request draw a fresh decision — exactly how a real transient fault
    behaves under retry.
    """
    import hashlib
    import random

    if rate <= 0:
        return None
    pool = list(names) if names else list(CHAOS_FAULTS)
    digest = hashlib.sha256(
        f"{seed}:{request_id}:{attempt}".encode("utf-8")
    ).digest()
    rng = random.Random(int.from_bytes(digest[:8], "big"))
    if rng.random() >= rate:
        return None
    return rng.choice(sorted(pool))
