"""Pass sandboxing: snapshot → transform → verify → keep or roll back.

Every transforming pass (the standard opt suite, ABCD itself, inlining)
runs inside a :class:`PassGuard`.  The guard snapshots the function (or
whole program) with a structural clone first, runs the pass, then re-runs
the IR verifier.  If the pass raises *or* leaves malformed IR behind, the
guard restores the snapshot in place, records a structured
:class:`~repro.core.abcd.PassFailure`, and lets compilation continue with
the unoptimized-but-correct code — graceful degradation, never a crash.

In ``strict`` mode the guard re-raises as
:class:`~repro.errors.PassGuardError` instead, turning every contained
rollback into a hard error (useful in CI and while debugging a pass).

The :class:`~repro.passes.manager.PassManager` applies this protocol
uniformly to every registered pass; the ``guarded_*`` helpers below are
compatibility wrappers that drive the same registered pass lists.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, TypeVar

from repro.core.abcd import ABCDConfig, ABCDReport, PassFailure
from repro.errors import IRVerificationError, PassGuardError
from repro.ir.function import Function, Program
from repro.ir.verifier import verify_function
from repro.runtime.profiler import Profile

T = TypeVar("T")


def _restore_in_place(target, snapshot) -> None:
    """Restore ``target`` to ``snapshot`` without changing its identity,
    so every outstanding reference (pipeline loops, program tables) keeps
    seeing the rolled-back object."""
    target.__dict__.clear()
    target.__dict__.update(snapshot.__dict__)


class PassGuard:
    """Sandbox for transforming passes with rollback-on-failure.

    One guard instance accumulates the failures of a whole compilation, so
    callers get a single telemetry stream (``guard.failures``) across all
    passes and functions.
    """

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self.failures: List[PassFailure] = []

    # ------------------------------------------------------------------
    # Core protocol.
    # ------------------------------------------------------------------

    def run_function_pass(
        self,
        pass_name: str,
        fn: Function,
        action: Callable[[], T],
        verify: bool = True,
    ) -> Optional[T]:
        """Run ``action`` (which mutates ``fn``) under the guard.

        Returns the action's result, or ``None`` when the pass failed and
        ``fn`` was rolled back to its pre-pass state.
        """
        snapshot = fn.clone()
        try:
            result = action()
            if verify:
                verify_function(fn)
            return result
        except Exception as exc:
            # Restore before the strict-mode escalation so even a hard
            # error leaves the function in its consistent pre-pass state.
            _restore_in_place(fn, snapshot)
            self.contain(pass_name, fn.name, exc)
            return None

    def run_program_pass(
        self,
        pass_name: str,
        program: Program,
        action: Callable[[], T],
        verify: bool = True,
    ) -> Optional[T]:
        """Like :meth:`run_function_pass` for whole-program transforms
        (inlining); rollback restores every function."""
        snapshot = program.clone()
        try:
            result = action()
            if verify:
                for fn in program.functions.values():
                    verify_function(fn)
            return result
        except Exception as exc:
            _restore_in_place(program, snapshot)
            self.contain(pass_name, "<program>", exc)
            return None

    # ------------------------------------------------------------------
    # Failure accounting.
    # ------------------------------------------------------------------

    def contain(self, pass_name: str, function: str, exc: Exception) -> None:
        """Record one contained failure (or escalate in strict mode).

        The caller is responsible for having rolled back already — this
        only does the bookkeeping, so drivers with cheaper-than-deepcopy
        rollback strategies can reuse the guard's telemetry and strict
        semantics.
        """
        failure = PassFailure(
            pass_name=pass_name,
            function=function,
            stage="verify" if isinstance(exc, IRVerificationError) else "exception",
            error_type=type(exc).__name__,
            message=str(exc),
        )
        if self.strict:
            raise PassGuardError(str(failure)) from exc
        self.failures.append(failure)

    @property
    def rollback_count(self) -> int:
        return len(self.failures)


# ----------------------------------------------------------------------
# Guarded drivers for the pipeline.
# ----------------------------------------------------------------------


def guarded_standard_pipeline(
    fn: Function,
    guard: PassGuard,
    max_rounds: int = 4,
) -> int:
    """The standard opt suite under the guard.

    Compatibility wrapper: drives the registered ``standard-pipeline``
    fixpoint group through a one-off pass-manager context.  One snapshot
    and one verification per round (not per pass) keeps the sandbox
    overhead low; an exception is still attributed to the member that
    raised it, while malformed IR discovered by the round-end verification
    is attributed to ``standard-pipeline-verify``.  Either way the whole
    round rolls back and iteration stops — the function simply stays at
    its last-known-good optimization level.
    """
    from repro.passes.analysis import AnalysisManager
    from repro.passes.manager import PassContext, PassManager, SessionStats
    from repro.passes.registry import standard_opt_group

    analysis = AnalysisManager()
    ctx = PassContext(
        program=None, analysis=analysis, guard=guard, stats=SessionStats(analysis)
    )
    return PassManager(ctx).run_group(standard_opt_group(max_rounds), fn)


def guarded_optimize_program(
    program: Program,
    config: Optional[ABCDConfig] = None,
    profile: Optional[Profile] = None,
    functions: Optional[Sequence[str]] = None,
    guard: Optional[PassGuard] = None,
    capture=None,
) -> ABCDReport:
    """Run the ABCD pass list over every (or the named) functions, each
    pass inside the guard.

    Compatibility wrapper over :class:`~repro.passes.session.
    CompilationSession.optimize`.  A function whose analysis raises is
    skipped (keeping its checks — sound), a removal that emits malformed
    IR is rolled back, and every contained failure lands in
    ``report.pass_failures``; the remaining functions still get optimized.
    """
    from repro.passes.session import CompilationSession

    session = CompilationSession(config=config, guard=guard)
    return session.optimize(
        program, profile=profile, functions=functions, capture=capture
    )
