"""Pass sandboxing: snapshot → transform → verify → keep or roll back.

Every transforming pass (the standard opt suite, ABCD itself, inlining)
runs inside a :class:`PassGuard`.  The guard deep-copies the function (or
whole program) first, runs the pass, then re-runs the IR verifier.  If the
pass raises *or* leaves malformed IR behind, the guard restores the
snapshot in place, records a structured
:class:`~repro.core.abcd.PassFailure`, and lets compilation continue with
the unoptimized-but-correct code — graceful degradation, never a crash.

In ``strict`` mode the guard re-raises as
:class:`~repro.errors.PassGuardError` instead, turning every contained
rollback into a hard error (useful in CI and while debugging a pass).
"""

from __future__ import annotations

import copy
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.core.abcd import ABCDConfig, ABCDReport, PassFailure, optimize_function
from repro.errors import IRVerificationError, PassGuardError
from repro.ir.function import Function, Program
from repro.ir.verifier import verify_function
from repro.runtime.profiler import Profile

T = TypeVar("T")


def _restore_in_place(target, snapshot) -> None:
    """Restore ``target`` to ``snapshot`` without changing its identity,
    so every outstanding reference (pipeline loops, program tables) keeps
    seeing the rolled-back object."""
    target.__dict__.clear()
    target.__dict__.update(snapshot.__dict__)


class PassGuard:
    """Sandbox for transforming passes with rollback-on-failure.

    One guard instance accumulates the failures of a whole compilation, so
    callers get a single telemetry stream (``guard.failures``) across all
    passes and functions.
    """

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self.failures: List[PassFailure] = []

    # ------------------------------------------------------------------
    # Core protocol.
    # ------------------------------------------------------------------

    def run_function_pass(
        self,
        pass_name: str,
        fn: Function,
        action: Callable[[], T],
        verify: bool = True,
    ) -> Optional[T]:
        """Run ``action`` (which mutates ``fn``) under the guard.

        Returns the action's result, or ``None`` when the pass failed and
        ``fn`` was rolled back to its pre-pass state.
        """
        snapshot = copy.deepcopy(fn)
        try:
            result = action()
            if verify:
                verify_function(fn)
            return result
        except Exception as exc:
            # Restore before the strict-mode escalation so even a hard
            # error leaves the function in its consistent pre-pass state.
            _restore_in_place(fn, snapshot)
            self.contain(pass_name, fn.name, exc)
            return None

    def run_program_pass(
        self,
        pass_name: str,
        program: Program,
        action: Callable[[], T],
        verify: bool = True,
    ) -> Optional[T]:
        """Like :meth:`run_function_pass` for whole-program transforms
        (inlining); rollback restores every function."""
        snapshot = copy.deepcopy(program)
        try:
            result = action()
            if verify:
                for fn in program.functions.values():
                    verify_function(fn)
            return result
        except Exception as exc:
            _restore_in_place(program, snapshot)
            self.contain(pass_name, "<program>", exc)
            return None

    # ------------------------------------------------------------------
    # Failure accounting.
    # ------------------------------------------------------------------

    def contain(self, pass_name: str, function: str, exc: Exception) -> None:
        """Record one contained failure (or escalate in strict mode).

        The caller is responsible for having rolled back already — this
        only does the bookkeeping, so drivers with cheaper-than-deepcopy
        rollback strategies can reuse the guard's telemetry and strict
        semantics.
        """
        failure = PassFailure(
            pass_name=pass_name,
            function=function,
            stage="verify" if isinstance(exc, IRVerificationError) else "exception",
            error_type=type(exc).__name__,
            message=str(exc),
        )
        if self.strict:
            raise PassGuardError(str(failure)) from exc
        self.failures.append(failure)

    @property
    def rollback_count(self) -> int:
        return len(self.failures)


# ----------------------------------------------------------------------
# Guarded drivers for the pipeline.
# ----------------------------------------------------------------------


def guarded_standard_pipeline(
    fn: Function,
    guard: PassGuard,
    max_rounds: int = 4,
) -> int:
    """The standard opt suite under the guard.

    One snapshot and one verification per round (not per pass) keeps the
    sandbox overhead low; an exception is still attributed to the pass
    that raised it, while malformed IR discovered by the round-end
    verification is attributed to the round.  Either way the whole round
    rolls back and iteration stops — the function simply stays at its
    last-known-good optimization level.
    """
    import repro.opt as opt

    total = 0
    for _ in range(max_rounds):
        snapshot = copy.deepcopy(fn)
        pass_name = "standard-pipeline"
        try:
            changes = 0
            for pass_name, transform in (
                ("copy-propagation", opt.propagate_copies),
                ("constant-folding", opt.fold_constants),
                ("dce", opt.eliminate_dead_code),
            ):
                changes += transform(fn)
            pass_name = "standard-pipeline-verify"
            verify_function(fn)
        except Exception as exc:
            _restore_in_place(fn, snapshot)
            guard.contain(pass_name, fn.name, exc)
            break
        total += changes
        if changes == 0:
            break
    return total


def guarded_optimize_program(
    program: Program,
    config: Optional[ABCDConfig] = None,
    profile: Optional[Profile] = None,
    functions: Optional[Sequence[str]] = None,
    guard: Optional[PassGuard] = None,
) -> ABCDReport:
    """Run ABCD over every (or the named) functions, each inside the guard.

    A function whose optimization raises or emits malformed IR is rolled
    back wholesale (keeping its checks — sound) and the failure lands in
    ``report.pass_failures``; the remaining functions still get optimized.
    """
    guard = guard or PassGuard(strict=bool(config and config.strict))
    already_recorded = len(guard.failures)
    report = ABCDReport()
    names = list(functions) if functions is not None else list(program.functions)
    for name in names:
        fn = program.functions[name]
        fn_report = guard.run_function_pass(
            "abcd", fn, lambda: optimize_function(fn, program, config, profile)
        )
        if fn_report is not None:
            report.merge(fn_report)
    # Only the failures contained during *this* run (an external guard may
    # already carry compile-time failures).
    report.pass_failures.extend(guard.failures[already_recorded:])
    return report
