"""Fail-safe optimization layer: pass sandboxing, fault injection, and
differential soundness gating.

A dynamic compiler must never let an analysis bug or a pathological input
turn into a wrong answer or a hung compile.  This package provides the
safety net a production JIT would have around ABCD:

* :mod:`repro.robustness.guard` — run every transforming pass against a
  snapshot; verify afterwards; on any exception or verification failure
  roll back and continue with the unoptimized-but-correct function;
* :mod:`repro.robustness.differential` — execute optimized vs. unoptimized
  programs on the same input and require identical outputs, traps, and
  bounds-error behavior (the final soundness gate);
* :mod:`repro.robustness.faults` — an adversarial fault-injection harness
  that deliberately corrupts graphs, solver memos, PRE insertion, and opt
  passes to prove the net actually catches failures.
"""

from repro.core.abcd import PassFailure
from repro.robustness.differential import (
    DifferentialMismatch,
    DifferentialResult,
    GatedResult,
    compare_programs,
    execute_outcome,
    gated_optimize,
    run_corpus_differential,
)
from repro.robustness.guard import (
    PassGuard,
    guarded_optimize_program,
    guarded_standard_pipeline,
)

__all__ = [
    "PassFailure",
    "PassGuard",
    "guarded_optimize_program",
    "guarded_standard_pipeline",
    "DifferentialMismatch",
    "DifferentialResult",
    "GatedResult",
    "compare_programs",
    "execute_outcome",
    "gated_optimize",
    "run_corpus_differential",
]
