"""Differential soundness gating: optimized vs. unoptimized execution.

The ultimate safety property of ABCD is behavioral: on every input the
optimized program must produce the same value, trap at the same bounds
check (same ``check_id``), and raise the same runtime error class as the
unoptimized program.  This module makes that property executable:

* :func:`execute_outcome` runs one program and captures its observable
  outcome (value or trap) in a comparable record;
* :func:`compare_programs` runs base and optimized side by side;
* :func:`gated_optimize` is the fail-safe entry point: clone, optimize
  under pass guards, differentially execute, and **revert to the
  unoptimized program** when behavior diverges — an unsound optimization
  can then never escape the compiler;
* :func:`run_corpus_differential` sweeps the Figure-6 ``.mj`` corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.abcd import ABCDConfig, ABCDReport, PassFailure
from repro.errors import BoundsCheckError, MiniJRuntimeError, SoundnessGateError
from repro.ir.function import Program
from repro.runtime.interpreter import run_program
from repro.runtime.profiler import Profile

#: Differential runs get a bounded fuel so a corrupted optimization that
#: introduces non-termination still lets the gate reach its verdict.
DEFAULT_FUEL = 100_000_000


@dataclass(frozen=True)
class ExecutionOutcome:
    """The observable behavior of one program run.

    ``trap`` is the runtime error class name (``None`` for a normal
    return); for bounds failures ``check_id``/``index``/``length``/``kind``
    pin down *which* check fired and with what values — ABCD must never
    move or change a trap, only remove checks that cannot fire.
    """

    value: object = None
    trap: Optional[str] = None
    trap_message: str = ""
    check_id: Optional[int] = None
    index: Optional[int] = None
    length: Optional[int] = None
    kind: Optional[str] = None

    def describe(self) -> str:
        if self.trap is None:
            return f"returned {self.value!r}"
        if self.check_id is not None:
            return (
                f"trapped {self.trap} at check #{self.check_id} "
                f"({self.kind}, index {self.index}, length {self.length})"
            )
        return f"trapped {self.trap}: {self.trap_message}"


def execute_outcome(
    program: Program,
    entry: str = "main",
    args: Sequence = (),
    fuel: int = DEFAULT_FUEL,
) -> ExecutionOutcome:
    """Run ``program`` and capture its observable outcome, trap included."""
    try:
        result = run_program(program, entry, args, fuel=fuel)
    except BoundsCheckError as exc:
        return ExecutionOutcome(
            trap=type(exc).__name__,
            trap_message=str(exc),
            check_id=exc.check_id,
            index=exc.index,
            length=exc.length,
            kind=exc.kind,
        )
    except MiniJRuntimeError as exc:
        return ExecutionOutcome(trap=type(exc).__name__, trap_message=str(exc))
    return ExecutionOutcome(value=result.value)


@dataclass
class DifferentialResult:
    """Verdict of one base-vs-optimized comparison."""

    entry: str
    args: tuple
    base: ExecutionOutcome
    optimized: ExecutionOutcome

    @property
    def matched(self) -> bool:
        return self.base == self.optimized

    def explain(self) -> str:
        if self.matched:
            return f"{self.entry}{self.args}: identical ({self.base.describe()})"
        return (
            f"{self.entry}{self.args}: DIVERGED — base {self.base.describe()}, "
            f"optimized {self.optimized.describe()}"
        )


class DifferentialMismatch(AssertionError):
    """Raised by :func:`assert_equivalent` when behavior diverges."""


def compare_programs(
    base: Program,
    optimized: Program,
    entry: str = "main",
    args: Sequence = (),
    fuel: int = DEFAULT_FUEL,
) -> DifferentialResult:
    """Execute both programs on one input and compare outcomes."""
    return DifferentialResult(
        entry=entry,
        args=tuple(args),
        base=execute_outcome(base, entry, args, fuel),
        optimized=execute_outcome(optimized, entry, args, fuel),
    )


def assert_equivalent(
    base: Program,
    optimized: Program,
    entry: str = "main",
    inputs: Sequence[Sequence] = ((),),
    fuel: int = DEFAULT_FUEL,
) -> List[DifferentialResult]:
    """Compare on every input; raise :class:`DifferentialMismatch` on the
    first divergence.  Returns all (matching) results."""
    results = []
    for args in inputs:
        result = compare_programs(base, optimized, entry, args, fuel)
        if not result.matched:
            raise DifferentialMismatch(result.explain())
        results.append(result)
    return results


# ----------------------------------------------------------------------
# The gate: optimize, test, keep-or-revert.
# ----------------------------------------------------------------------


@dataclass
class GatedResult:
    """Outcome of one :func:`gated_optimize` call."""

    program: Program
    report: ABCDReport
    differentials: List[DifferentialResult] = field(default_factory=list)
    #: True when the gate found a divergence and reverted to the
    #: unoptimized program.
    reverted: bool = False

    @property
    def sound(self) -> bool:
        return all(result.matched for result in self.differentials)


def gated_optimize(
    program: Program,
    config: Optional[ABCDConfig] = None,
    profile: Optional[Profile] = None,
    entry: str = "main",
    inputs: Sequence[Sequence] = ((),),
    fuel: int = DEFAULT_FUEL,
    strict: bool = False,
    capture=None,
) -> GatedResult:
    """Optimize ``program`` in place behind the full safety net.

    The optimization runs on a clone under pass guards; the clone is then
    differentially executed against the original on every input.  Only
    when all outcomes match is the optimized code committed back into
    ``program`` — otherwise ``program`` is left untouched (the divergence
    is recorded as a ``PassFailure`` in the report, or raised as
    :class:`~repro.errors.SoundnessGateError` in strict mode).
    """
    from repro.pipeline import clone_program
    from repro.robustness.guard import PassGuard, guarded_optimize_program

    if config is None:
        config = ABCDConfig()
    if strict:
        config.strict = True

    candidate = clone_program(program)
    guard = PassGuard(strict=strict)
    report = guarded_optimize_program(
        candidate, config, profile, guard=guard, capture=capture
    )

    differentials = []
    reverted = False
    for args in inputs:
        result = compare_programs(program, candidate, entry, args, fuel)
        differentials.append(result)
        if not result.matched:
            if strict:
                raise SoundnessGateError(result.explain())
            reverted = True
            break

    if reverted:
        report.pass_failures.append(
            PassFailure(
                pass_name="differential-gate",
                function=entry,
                stage="verify",
                error_type="DifferentialMismatch",
                message=differentials[-1].explain(),
            )
        )
    else:
        # Commit: move the optimized bodies into the caller's program
        # without changing the Program object's identity.
        program.__dict__.clear()
        program.__dict__.update(candidate.__dict__)

    return GatedResult(
        program=program,
        report=report,
        differentials=differentials,
        reverted=reverted,
    )


# ----------------------------------------------------------------------
# Corpus sweep.
# ----------------------------------------------------------------------


@dataclass
class CorpusDifferential:
    """Per-corpus-program differential verdict."""

    name: str
    result: DifferentialResult
    report: ABCDReport

    @property
    def matched(self) -> bool:
        return self.result.matched


def run_corpus_differential(
    config: Optional[ABCDConfig] = None,
    pre: bool = True,
    names: Optional[Sequence[str]] = None,
    fuel: int = DEFAULT_FUEL,
) -> List[CorpusDifferential]:
    """Differentially execute every (or the named) Figure-6 corpus
    programs, optimized vs. unoptimized."""
    import dataclasses

    from repro.bench.corpus import CORPUS
    from repro.pipeline import clone_program, compile_source
    from repro.robustness.guard import guarded_optimize_program
    from repro.runtime.profiler import collect_profile

    verdicts = []
    for program_def in CORPUS:
        if names is not None and program_def.name not in names:
            continue
        compiled = compile_source(program_def.source())
        cfg = dataclasses.replace(config) if config is not None else ABCDConfig()
        if pre:
            cfg.pre = True
        profile = (
            collect_profile(compiled, "main", fuel=fuel) if cfg.pre else None
        )
        optimized = clone_program(compiled)
        report = guarded_optimize_program(optimized, cfg, profile)
        result = compare_programs(compiled, optimized, "main", (), fuel)
        verdicts.append(CorpusDifferential(program_def.name, result, report))
    return verdicts
