"""CFG analyses: dominance, liveness, loops, and edge utilities."""

from repro.analysis.cfg_utils import (
    critical_edges,
    edge_list,
    split_critical_edges,
    split_edge,
)
from repro.analysis.dominance import DominatorTree, dominance_frontiers
from repro.analysis.liveness import LivenessInfo, compute_liveness
from repro.analysis.loops import NaturalLoop, find_natural_loops, loop_depths

__all__ = [
    "DominatorTree",
    "dominance_frontiers",
    "LivenessInfo",
    "compute_liveness",
    "NaturalLoop",
    "find_natural_loops",
    "loop_depths",
    "critical_edges",
    "split_critical_edges",
    "split_edge",
    "edge_list",
]
