"""Natural loop detection.

Loops are identified from back edges (``tail -> header`` where the header
dominates the tail).  Used for reporting (loop depth of checks), for the
range-analysis baseline's widening points, and by benchmark statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.dominance import DominatorTree
from repro.ir.function import Function


@dataclass
class NaturalLoop:
    """A natural loop: its header and the set of member blocks."""

    header: str
    body: Set[str] = field(default_factory=set)
    back_edges: List[str] = field(default_factory=list)

    def __contains__(self, label: str) -> bool:
        return label in self.body


def find_natural_loops(fn: Function, domtree: Optional[DominatorTree] = None) -> List[NaturalLoop]:
    """Find all natural loops; loops sharing a header are merged."""
    if domtree is None:
        domtree = DominatorTree.compute(fn)
    loops: Dict[str, NaturalLoop] = {}
    for label in fn.reachable_blocks():
        for succ in fn.blocks[label].successors():
            if domtree.dominates(succ, label):
                loop = loops.setdefault(succ, NaturalLoop(succ, {succ}))
                loop.back_edges.append(label)
                _collect_loop_body(fn, loop, label)
    return list(loops.values())


def _collect_loop_body(fn: Function, loop: NaturalLoop, tail: str) -> None:
    """Walk predecessors backward from the back-edge tail to the header."""
    preds = fn.predecessors()
    stack = [tail]
    while stack:
        label = stack.pop()
        if label in loop.body:
            continue
        loop.body.add(label)
        stack.extend(preds[label])


def loop_depths(fn: Function) -> Dict[str, int]:
    """Nesting depth of each block (0 = not in any loop)."""
    depths = {label: 0 for label in fn.reachable_blocks()}
    for loop in find_natural_loops(fn):
        for label in loop.body:
            depths[label] += 1
    return depths
