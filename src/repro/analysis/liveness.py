"""Backward liveness analysis over the CFG.

Used for pruned SSA construction (φs are only placed for variables live at
the join) and available to other passes.  φ semantics follow the standard
convention: a φ's operands are live-out of the corresponding predecessors,
not live-in to the φ's own block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set

from repro.ir.function import Function
from repro.ir.instructions import Phi, Var


@dataclass
class LivenessInfo:
    """Live-in and live-out variable sets per block."""

    live_in: Dict[str, Set[str]]
    live_out: Dict[str, Set[str]]

    def is_live_in(self, label: str, name: str) -> bool:
        return name in self.live_in.get(label, set())


def compute_liveness(fn: Function) -> LivenessInfo:
    """Iterative worklist liveness over reachable blocks."""
    reachable = fn.reachable_blocks()
    preds = fn.predecessors()

    # Per-block gen (upward-exposed uses) and kill (definitions) sets,
    # φs excluded (handled edge-wise below).
    gen: Dict[str, Set[str]] = {}
    kill: Dict[str, Set[str]] = {}
    # phi_uses[pred][...] = names used by φs of a successor along edge pred->succ.
    phi_out: Dict[str, Set[str]] = {label: set() for label in reachable}
    phi_defs: Dict[str, Set[str]] = {label: set() for label in reachable}

    for label in reachable:
        block = fn.blocks[label]
        block_gen: Set[str] = set()
        block_kill: Set[str] = set()
        for phi in block.phis:
            phi_defs[label].add(phi.dest)
            for pred_label, operand in phi.incomings.items():
                if isinstance(operand, Var) and pred_label in phi_out:
                    phi_out[pred_label].add(operand.name)
        for instr in list(block.body) + (
            [block.terminator] if block.terminator is not None else []
        ):
            for name in instr.used_vars():
                if name not in block_kill:
                    block_gen.add(name)
            dest = instr.defs()
            if dest is not None:
                block_kill.add(dest)
        gen[label] = block_gen
        kill[label] = block_kill

    live_in: Dict[str, Set[str]] = {label: set() for label in reachable}
    live_out: Dict[str, Set[str]] = {label: set() for label in reachable}

    changed = True
    while changed:
        changed = False
        for label in reversed(reachable):
            block = fn.blocks[label]
            new_out: Set[str] = set(phi_out[label])
            for succ in block.successors():
                new_out |= live_in[succ] - phi_defs[succ]
            new_in = gen[label] | (new_out - kill[label] - phi_defs[label])
            if new_out != live_out[label] or new_in != live_in[label]:
                live_out[label] = new_out
                live_in[label] = new_in
                changed = True

    # A φ use is live-out of the predecessor edge; fold it in for
    # consumers that only look at live_out.
    for label in reachable:
        live_out[label] |= phi_out[label]

    del preds
    return LivenessInfo(live_in, live_out)
