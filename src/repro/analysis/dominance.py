"""Dominator tree and dominance frontiers.

Implements the Cooper–Harvey–Kennedy iterative dominator algorithm ("A
Simple, Fast Dominance Algorithm") and Cytron-style dominance frontiers.
Both are prerequisites for SSA construction and for the SSA verifier.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.function import Function


class DominatorTree:
    """Immediate dominators, dominance queries, and dominance frontiers
    for the reachable part of a function's CFG."""

    def __init__(
        self,
        entry: str,
        idom: Dict[str, Optional[str]],
        rpo_index: Dict[str, int],
    ) -> None:
        self.entry = entry
        self.idom = idom
        self._rpo_index = rpo_index
        self.children: Dict[str, List[str]] = {label: [] for label in idom}
        for label, parent in idom.items():
            if parent is not None and label != entry:
                self.children[parent].append(label)
        # Depth of each node for O(depth) dominance queries.
        self._depth: Dict[str, int] = {}
        self._compute_depths()

    @classmethod
    def compute(cls, fn: Function) -> "DominatorTree":
        """Build the dominator tree of ``fn`` (reachable blocks only)."""
        rpo = fn.reachable_blocks()
        rpo_index = {label: index for index, label in enumerate(rpo)}
        preds = fn.predecessors()

        idom: Dict[str, Optional[str]] = {label: None for label in rpo}
        idom[fn.entry] = fn.entry

        def intersect(b1: str, b2: str) -> str:
            while b1 != b2:
                while rpo_index[b1] > rpo_index[b2]:
                    assert idom[b1] is not None
                    b1 = idom[b1]  # type: ignore[assignment]
                while rpo_index[b2] > rpo_index[b1]:
                    assert idom[b2] is not None
                    b2 = idom[b2]  # type: ignore[assignment]
            return b1

        changed = True
        while changed:
            changed = False
            for label in rpo:
                if label == fn.entry:
                    continue
                processed_preds = [
                    p for p in preds[label] if p in rpo_index and idom[p] is not None
                ]
                if not processed_preds:
                    continue
                new_idom = processed_preds[0]
                for pred in processed_preds[1:]:
                    new_idom = intersect(pred, new_idom)
                if idom[label] != new_idom:
                    idom[label] = new_idom
                    changed = True

        # Entry's idom is conventionally None for external consumers.
        result = dict(idom)
        result[fn.entry] = None
        return cls(fn.entry, result, rpo_index)

    def _compute_depths(self) -> None:
        self._depth[self.entry] = 0
        stack = [self.entry]
        while stack:
            node = stack.pop()
            for child in self.children[node]:
                self._depth[child] = self._depth[node] + 1
                stack.append(child)

    def dominates(self, a: str, b: str) -> bool:
        """True iff block ``a`` dominates block ``b`` (reflexive)."""
        while self._depth.get(b, -1) > self._depth.get(a, -1):
            parent = self.idom[b]
            assert parent is not None
            b = parent
        return a == b

    def strictly_dominates(self, a: str, b: str) -> bool:
        return a != b and self.dominates(a, b)

    def immediate_dominator(self, label: str) -> Optional[str]:
        return self.idom[label]

    def depth(self, label: str) -> int:
        return self._depth[label]

    def preorder(self) -> List[str]:
        """Dominator-tree preorder (parents before children)."""
        order: List[str] = []
        stack = [self.entry]
        while stack:
            node = stack.pop()
            order.append(node)
            # Reverse for stable left-to-right ordering.
            stack.extend(reversed(self.children[node]))
        return order


def dominance_frontiers(fn: Function, domtree: Optional[DominatorTree] = None) -> Dict[str, Set[str]]:
    """Compute the dominance frontier of every reachable block.

    ``DF(b)`` = blocks ``y`` such that ``b`` dominates a predecessor of
    ``y`` but does not strictly dominate ``y`` — exactly the φ placement
    points of SSA construction.
    """
    if domtree is None:
        domtree = DominatorTree.compute(fn)
    frontiers: Dict[str, Set[str]] = {label: set() for label in fn.reachable_blocks()}
    preds = fn.predecessors()
    reachable = set(fn.reachable_blocks())
    for label in fn.reachable_blocks():
        block_preds = [p for p in preds[label] if p in reachable]
        if len(block_preds) < 2:
            continue
        idom = domtree.immediate_dominator(label)
        for pred in block_preds:
            runner = pred
            while runner != idom:
                frontiers[runner].add(label)
                next_runner = domtree.immediate_dominator(runner)
                if next_runner is None:
                    break
                runner = next_runner
    return frontiers
