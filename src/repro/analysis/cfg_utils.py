"""CFG surgery helpers: edge splitting and normalization.

ABCD's e-SSA construction inserts π-assignments *on CFG edges* (the exits
of conditional branches).  Splitting critical edges first guarantees every
conditional out-edge leads to a single-predecessor block, so πs can simply
be placed at the head of the target block (paper, Section 3).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Jump


def split_edge(fn: Function, from_label: str, to_label: str) -> BasicBlock:
    """Insert a fresh block on the edge ``from_label -> to_label``.

    Retargets the terminator of ``from_label`` and rewrites φ incomings of
    ``to_label``.  Returns the new block.  If the edge occurs twice (both
    branch arms to the same target), both occurrences are retargeted — MiniJ
    lowering never produces such edges, and the verifier would reject the
    ambiguous φs they create.
    """
    middle = fn.new_block("edge")
    fn.set_terminator(middle.label, Jump(to_label))
    fn.blocks[from_label].replace_successor(to_label, middle.label)
    # Re-keying φ incomings changes labels only, never operands, so the
    # def-use index needs no reconciliation here.
    for phi in fn.blocks[to_label].phis:
        if from_label in phi.incomings:
            phi.incomings[middle.label] = phi.incomings.pop(from_label)
    return middle


def critical_edges(fn: Function) -> List[Tuple[str, str]]:
    """Edges from a multi-successor block to a multi-predecessor block."""
    preds = fn.predecessors()
    found = []
    for label in fn.reachable_blocks():
        block = fn.blocks[label]
        successors = block.successors()
        if len(successors) < 2:
            continue
        for succ in successors:
            if len(preds[succ]) > 1:
                found.append((label, succ))
    return found


def split_critical_edges(fn: Function) -> int:
    """Split every critical edge; returns how many were split."""
    count = 0
    for from_label, to_label in critical_edges(fn):
        split_edge(fn, from_label, to_label)
        count += 1
    return count


def edge_list(fn: Function) -> List[Tuple[str, str]]:
    """All CFG edges of the reachable region as (from, to) pairs."""
    edges = []
    for label in fn.reachable_blocks():
        for succ in fn.blocks[label].successors():
            edges.append((label, succ))
    return edges


def predecessor_map(fn: Function) -> Dict[str, List[str]]:
    """Alias of :meth:`Function.predecessors` for symmetry with edge_list."""
    return fn.predecessors()
