"""Exception hierarchy shared across the repro package.

Every user-facing error raised by the compiler pipeline derives from
:class:`ReproError` so that callers can catch one type.  Runtime (VM) errors
derive from :class:`MiniJRuntimeError`; among these,
:class:`BoundsCheckError` is raised when an array bounds check fails, which
is the observable event the ABCD optimization must preserve.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SourceLocation:
    """A (line, column) pair pointing into MiniJ source text.

    Columns and lines are 1-based, matching what editors display.
    """

    __slots__ = ("line", "column")

    def __init__(self, line: int, column: int) -> None:
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return f"SourceLocation({self.line}, {self.column})"

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SourceLocation):
            return NotImplemented
        return (self.line, self.column) == (other.line, other.column)

    def __hash__(self) -> int:
        return hash((self.line, self.column))


class CompileError(ReproError):
    """An error detected while compiling MiniJ source.

    Carries an optional :class:`SourceLocation` so messages can point at the
    offending token or construct.
    """

    def __init__(self, message: str, location: "SourceLocation | None" = None) -> None:
        self.location = location
        if location is not None:
            message = f"{location}: {message}"
        super().__init__(message)


class LexError(CompileError):
    """Raised by the lexer on malformed input (bad character, bad number)."""


class ParseError(CompileError):
    """Raised by the parser on a syntax error."""


class TypeCheckError(CompileError):
    """Raised by semantic analysis on a type or scoping error."""


class LoweringError(CompileError):
    """Raised when the AST-to-IR lowering meets an unsupported construct."""


class NestingLimitError(CompileError):
    """A frontend stage ran out of Python recursion on a pathologically
    nested program.

    The recursive-descent parser, the type checker, and the lowering walk
    all recurse once per nesting level; without this wrapper a deep enough
    expression escapes them as a raw :class:`RecursionError`, which the
    differential-fuzzing oracle would triage as a compiler crash rather
    than a rejected input.
    """


class IRVerificationError(ReproError):
    """Raised by the IR verifier when a function violates an IR invariant."""


class PassGuardError(ReproError):
    """A sandboxed optimization pass failed while strict mode was on.

    Outside strict mode the pass-guard layer contains the failure: it
    rolls the function back to its pre-pass snapshot and records a
    ``PassFailure`` instead of raising.
    """


class AnalysisInvalidationError(ReproError):
    """A pass's ``preserves`` declaration was wrong (debug mode only).

    Raised by the :class:`~repro.passes.analysis.AnalysisManager` when its
    recompute-and-compare check finds that an analysis a pass claimed to
    preserve no longer matches a fresh computation.  Outside debug mode the
    manager trusts the declarations and the lie would surface as a stale
    cache, so the debug check exists to catch the declaration bug early.
    """


class DefUseIntegrityError(AnalysisInvalidationError):
    """The incremental def-use index disagrees with the IR (debug mode).

    Raised by :meth:`repro.ir.defuse.DefUseChains.assert_consistent` when a
    rebuild-from-scratch finds a dangling use, a stale index entry, or a
    use-list out of sync — i.e. a pass mutated the function without going
    through the chain-maintaining mutators and without invalidating the
    index.  Subclasses :class:`AnalysisInvalidationError` because the
    def-use index is exactly a cached analysis whose declared maintenance
    was violated.
    """


class CertificateError(ReproError):
    """A proof-witness certificate was rejected while strict mode was on.

    Outside strict mode the certificate layer contains the rejection: the
    elimination is revoked (the check stays in the program) and repeated
    rejections quarantine the function to unoptimized compilation.
    """


class SoundnessGateError(ReproError):
    """The differential soundness gate found an optimized program whose
    behavior diverges from its unoptimized baseline (strict mode only;
    otherwise the gate silently reverts to the baseline)."""


class MiniJRuntimeError(ReproError):
    """Base class for errors raised while interpreting a MiniJ program."""


class BoundsCheckError(MiniJRuntimeError):
    """An array access was out of bounds.

    ``check_id`` identifies the failing check instruction; ``index`` and
    ``length`` record the observed values.  The ABCD transformation must
    never change *where* this exception is raised.
    """

    def __init__(self, check_id: int, index: int, length: int, kind: str) -> None:
        self.check_id = check_id
        self.index = index
        self.length = length
        self.kind = kind
        super().__init__(
            f"bounds check #{check_id} failed ({kind}): index {index}, length {length}"
        )


class NegativeArraySizeError(MiniJRuntimeError):
    """``new int[n]`` was executed with a negative ``n``."""


class DivisionByZeroError(MiniJRuntimeError):
    """Integer division or modulo by zero."""


class TrapLimitExceeded(MiniJRuntimeError):
    """The interpreter exceeded its configured fuel (instruction budget)."""


class CallDepthExceeded(MiniJRuntimeError):
    """MiniJ call recursion exhausted the host interpreter's stack.

    A resource limit like :class:`TrapLimitExceeded`, not a program
    error: unbounded MiniJ recursion would otherwise surface as a raw
    :class:`RecursionError` escaping the VM boundary.
    """


class UnknownFunctionError(MiniJRuntimeError):
    """Execution was requested for a function name the program lacks."""
