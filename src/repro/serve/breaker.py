"""Per-function-fingerprint circuit breaking.

The supervisor keys a breaker on each request's *function fingerprint*
(a content hash of the submitted source plus entry function).  A
fingerprint whose optimized compilation keeps failing — crashing
workers, blowing deadlines, exhausting the memory cap — is exactly the
input most likely to keep doing so, and retrying it through the
optimizer burns a worker (and a deadline) every time.  After
``failure_threshold`` *consecutive* failures the breaker **opens**:
subsequent requests for that fingerprint skip the optimizer entirely and
are served *degraded* — compiled without optimization, every bounds
check intact, behaviorally identical to the unoptimized interpreter
(CHOP's stance: bounds-check optimization is best-effort and must fall
back to the checked baseline when its analysis cannot be trusted).

After ``cooldown`` seconds an open breaker lets exactly one optimized
**half-open probe** through; success closes the breaker, failure
re-opens it for a fresh cooldown.  The clock is injected so tests drive
the state machine without sleeping.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List


def function_fingerprint(source: str, fn: str = "main") -> str:
    """Content-addressed identity of one compile request's function.

    Two requests with byte-identical source and entry point hit the same
    breaker (and, later, the same cross-request cache line — ROADMAP
    item 1 promotes this to a content-addressed analysis store).
    """
    digest = hashlib.sha256()
    digest.update(source.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(fn.encode("utf-8"))
    return digest.hexdigest()[:16]


# Breaker states.  Plain strings (not an enum) so they serialize into
# status frames and JSON telemetry without adapters.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass
class BreakerState:
    """One fingerprint's failure history and current verdict."""

    fingerprint: str
    state: str = CLOSED
    consecutive_failures: int = 0
    #: Lifetime tallies, surfaced through ``status`` requests.
    total_failures: int = 0
    total_successes: int = 0
    times_opened: int = 0
    opened_at: float = 0.0
    #: A half-open probe is in flight; further requests stay degraded
    #: until it reports back.
    probing: bool = False

    def to_json(self) -> Dict[str, object]:
        return {
            "fingerprint": self.fingerprint,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "total_failures": self.total_failures,
            "total_successes": self.total_successes,
            "times_opened": self.times_opened,
        }


@dataclass
class CircuitBreaker:
    """The supervisor's breaker table: one :class:`BreakerState` per
    fingerprint, advanced by ``allow_optimized`` / ``record_*`` calls."""

    failure_threshold: int = 3
    cooldown: float = 30.0
    clock: Callable[[], float] = time.monotonic
    _states: Dict[str, BreakerState] = field(default_factory=dict)

    def state_of(self, fingerprint: str) -> BreakerState:
        state = self._states.get(fingerprint)
        if state is None:
            state = self._states[fingerprint] = BreakerState(fingerprint)
        return state

    def allow_optimized(self, fingerprint: str) -> bool:
        """May this request attempt the optimized path right now?

        ``True`` for closed breakers and for the single half-open probe
        after the cooldown; ``False`` (serve degraded) while open or
        while a probe is already in flight.
        """
        state = self.state_of(fingerprint)
        if state.state == CLOSED:
            return True
        if state.state == OPEN:
            if self.clock() - state.opened_at < self.cooldown:
                return False
            state.state = HALF_OPEN
            state.probing = False
        # HALF_OPEN: admit exactly one probe at a time.
        if state.probing:
            return False
        state.probing = True
        return True

    def record_success(self, fingerprint: str) -> None:
        """An optimized attempt succeeded: reset (and close) the breaker."""
        state = self.state_of(fingerprint)
        state.total_successes += 1
        state.consecutive_failures = 0
        state.probing = False
        state.state = CLOSED

    def record_failure(self, fingerprint: str) -> bool:
        """An optimized attempt failed; returns ``True`` when this
        failure opened (or re-opened) the breaker."""
        state = self.state_of(fingerprint)
        state.total_failures += 1
        state.consecutive_failures += 1
        was_probe = state.state == HALF_OPEN
        state.probing = False
        if was_probe or state.consecutive_failures >= self.failure_threshold:
            state.state = OPEN
            state.opened_at = self.clock()
            state.times_opened += 1
            return True
        return False

    def open_fingerprints(self) -> List[str]:
        return sorted(
            fp for fp, s in self._states.items() if s.state != CLOSED
        )

    def to_json(self) -> List[Dict[str, object]]:
        return [
            self._states[fp].to_json() for fp in sorted(self._states)
        ]
