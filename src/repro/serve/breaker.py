"""Per-function-fingerprint circuit breaking.

The supervisor keys a breaker on each request's *function fingerprint*
(a content hash of the submitted source plus entry function).  A
fingerprint whose optimized compilation keeps failing — crashing
workers, blowing deadlines, exhausting the memory cap — is exactly the
input most likely to keep doing so, and retrying it through the
optimizer burns a worker (and a deadline) every time.  After
``failure_threshold`` *consecutive* failures the breaker **opens**:
subsequent requests for that fingerprint skip the optimizer entirely and
are served *degraded* — compiled without optimization, every bounds
check intact, behaviorally identical to the unoptimized interpreter
(CHOP's stance: bounds-check optimization is best-effort and must fall
back to the checked baseline when its analysis cannot be trusted).

After ``cooldown`` seconds an open breaker lets exactly one optimized
**half-open probe** through; success closes the breaker, failure
re-opens it for a fresh cooldown.  The clock is injected so tests drive
the state machine without sleeping.

Cooldown expiry carries **full jitter**: each time a breaker opens it
draws a fresh ``uniform(0, jitter × cooldown)`` extension from a seeded,
injectable RNG.  Without it, every breaker opened by the same burst
expires in the same tick and their probes re-spike a barely recovered
worker pool in lockstep — the synchronized-retry storm that full jitter
(the AWS backoff result) provably de-correlates.
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


def function_fingerprint(source: str, fn: str = "main") -> str:
    """Content-addressed identity of one compile request's function.

    Two requests with byte-identical source and entry point hit the same
    breaker (and, later, the same cross-request cache line — ROADMAP
    item 1 promotes this to a content-addressed analysis store).
    """
    digest = hashlib.sha256()
    digest.update(source.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(fn.encode("utf-8"))
    return digest.hexdigest()[:16]


# Breaker states.  Plain strings (not an enum) so they serialize into
# status frames and JSON telemetry without adapters.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass
class BreakerState:
    """One fingerprint's failure history and current verdict."""

    fingerprint: str
    state: str = CLOSED
    consecutive_failures: int = 0
    #: Lifetime tallies, surfaced through ``status`` requests.
    total_failures: int = 0
    total_successes: int = 0
    times_opened: int = 0
    opened_at: float = 0.0
    #: The full-jitter extension (seconds) drawn when this breaker last
    #: opened; the effective cooldown is ``cooldown + cooldown_jitter``.
    cooldown_jitter: float = 0.0
    #: A half-open probe is in flight; further requests stay degraded
    #: until it reports back.
    probing: bool = False

    def to_json(self) -> Dict[str, object]:
        return {
            "fingerprint": self.fingerprint,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "total_failures": self.total_failures,
            "total_successes": self.total_successes,
            "times_opened": self.times_opened,
        }


@dataclass
class CircuitBreaker:
    """The supervisor's breaker table: one :class:`BreakerState` per
    fingerprint, advanced by ``allow_optimized`` / ``record_*`` calls."""

    failure_threshold: int = 3
    cooldown: float = 30.0
    clock: Callable[[], float] = time.monotonic
    #: Full-jitter fraction: opening draws ``uniform(0, jitter*cooldown)``
    #: extra cooldown so co-opened breakers never probe in the same tick.
    jitter: float = 0.0
    #: The jitter RNG; injectable (and seedable) for deterministic tests.
    rng: Optional[random.Random] = None
    _states: Dict[str, BreakerState] = field(default_factory=dict)

    def _draw_jitter(self) -> float:
        if self.jitter <= 0:
            return 0.0
        rng = self.rng if self.rng is not None else random
        return rng.uniform(0.0, self.jitter * self.cooldown)

    def _effective_cooldown(self, state: BreakerState) -> float:
        return self.cooldown + state.cooldown_jitter

    def state_of(self, fingerprint: str) -> BreakerState:
        state = self._states.get(fingerprint)
        if state is None:
            state = self._states[fingerprint] = BreakerState(fingerprint)
        return state

    def allow_optimized(self, fingerprint: str) -> bool:
        """May this request attempt the optimized path right now?

        ``True`` for closed breakers and for the single half-open probe
        after the cooldown; ``False`` (serve degraded) while open or
        while a probe is already in flight.
        """
        state = self.state_of(fingerprint)
        if state.state == CLOSED:
            return True
        if state.state == OPEN:
            if self.clock() - state.opened_at < self._effective_cooldown(state):
                return False
            state.state = HALF_OPEN
            state.probing = False
        # HALF_OPEN: admit exactly one probe at a time.
        if state.probing:
            return False
        state.probing = True
        return True

    def record_success(self, fingerprint: str) -> None:
        """An optimized attempt succeeded: reset (and close) the breaker."""
        state = self.state_of(fingerprint)
        state.total_successes += 1
        state.consecutive_failures = 0
        state.probing = False
        state.state = CLOSED

    def record_failure(self, fingerprint: str) -> bool:
        """An optimized attempt failed; returns ``True`` when this
        failure opened (or re-opened) the breaker."""
        state = self.state_of(fingerprint)
        state.total_failures += 1
        state.consecutive_failures += 1
        was_probe = state.state == HALF_OPEN
        state.probing = False
        if was_probe or state.consecutive_failures >= self.failure_threshold:
            state.state = OPEN
            state.opened_at = self.clock()
            state.cooldown_jitter = self._draw_jitter()
            state.times_opened += 1
            return True
        return False

    def open_fingerprints(self) -> List[str]:
        return sorted(
            fp for fp, s in self._states.items() if s.state != CLOSED
        )

    def to_json(self) -> List[Dict[str, object]]:
        return [
            self._states[fp].to_json() for fp in sorted(self._states)
        ]

    # ------------------------------------------------------------------
    # Persistence (the cache directory remembers open breakers across
    # supervisor restarts).
    # ------------------------------------------------------------------

    def to_persist(self) -> Dict[str, object]:
        """Restart-safe snapshot of every breaker.

        The clock is monotonic — its absolute values die with the
        process — so an open breaker persists its *remaining cooldown*,
        not ``opened_at``; ``restore`` rebuilds an equivalent deadline
        against the new process's clock.
        """
        now = self.clock()
        states = []
        for fingerprint in sorted(self._states):
            state = self._states[fingerprint]
            payload = state.to_json()
            remaining = 0.0
            if state.state == OPEN:
                remaining = max(
                    0.0, self._effective_cooldown(state) - (now - state.opened_at)
                )
            payload["cooldown_remaining"] = remaining
            states.append(payload)
        return {"states": states}

    def restore(self, payload: Dict[str, object]) -> int:
        """Load a :meth:`to_persist` snapshot; returns breakers restored.

        Zero-trust like everything else read from the cache directory: a
        malformed item is skipped, never raised.  A breaker persisted
        half-open re-opens (its probe never reported back); expiry still
        happens through the normal cooldown check in ``allow_optimized``.
        """
        restored = 0
        for item in payload.get("states", []) if isinstance(payload, dict) else []:
            try:
                fingerprint = item["fingerprint"]
                if not isinstance(fingerprint, str):
                    continue
                state = self.state_of(fingerprint)
                persisted = item.get("state", CLOSED)
                state.state = OPEN if persisted in (OPEN, HALF_OPEN) else CLOSED
                state.consecutive_failures = int(item.get("consecutive_failures", 0))
                state.total_failures = int(item.get("total_failures", 0))
                state.total_successes = int(item.get("total_successes", 0))
                state.times_opened = int(item.get("times_opened", 0))
                state.probing = False
                if state.state == OPEN:
                    # A restored breaker re-arms against the new process's
                    # clock with its remaining (already jittered) cooldown;
                    # the cap bounds a forged/garbage snapshot.
                    cap = self.cooldown * (1.0 + max(0.0, self.jitter))
                    remaining = min(
                        cap, float(item.get("cooldown_remaining", 0.0))
                    )
                    state.cooldown_jitter = 0.0
                    state.opened_at = self.clock() - (self.cooldown - remaining)
                restored += 1
            except (KeyError, TypeError, ValueError):
                continue
        return restored
