"""Wire protocol of the compile service: newline-delimited JSON frames.

One frame is one JSON object on one line.  The same framing is spoken on
both hops — client ↔ supervisor (stdin/stdout or a Unix socket) and
supervisor ↔ worker (the worker's pipes) — so a transcript of either is
replayable against the other.

Client-facing request ops:

``run``       compile ``source`` (optimized by default) and execute
              ``fn(args)``; the response carries the observable outcome
              (value or trap), dynamic check counters, and how the
              request was served (``mode`` optimized/degraded);
``compile``   compile only; the response carries the static elimination
              report, no execution;
``status``    supervisor-side: outcome counters, breaker states, worker
              pool (never dispatched to a worker);
``shutdown``  drain and stop the server.

A ``run``/``compile`` request may carry ``deadline_ms`` — a positive
integer bound on how long the *caller* will wait.  The supervisor sheds
the request (never dispatching it) once that deadline expires while
queued, and threads the remaining budget into the worker as its compile
deadline.

A worker answers with ``status`` ``"ok"`` (request served), ``"error"``
(deterministic user error — e.g. a type error in the submitted source;
*not* a worker failure, never retried), or ``"failure"`` (the worker
contained an internal problem — e.g. the memory cap fired — and the
supervisor should retry or degrade).  Anything else arriving on the
worker pipe — EOF, a truncated line, non-JSON bytes, a mismatched
request id — is a protocol violation: the supervisor kills that worker
and treats the attempt as failed.

The supervisor itself may answer a client with ``status`` ``"shed"`` —
overload backpressure, carrying a ``retry_after`` hint (seconds), the
shed ``reason`` (``queue-full``, ``degrade-level``,
``deadline-expired``, ``shutting-down``), and the degradation-ladder
``degrade_level`` that made the call.  A shed response is an explicit
answer, not a dropped request: the no-lost-request guarantee counts it.

Frames are capped at :data:`MAX_FRAME_BYTES` so a berserk worker cannot
balloon the supervisor's memory through the response pipe.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

#: Upper bound on one encoded frame.  Honest responses are tiny (scalar
#: results plus counters); the cap exists for corrupted/adversarial ones.
MAX_FRAME_BYTES = 4 * 1024 * 1024

#: Request ops a client may send.
CLIENT_OPS = ("run", "compile", "status", "shutdown")

#: Ops the supervisor forwards to workers.
WORKER_OPS = ("run", "compile", "shutdown")


class ProtocolError(Exception):
    """A malformed, oversized, or mismatched frame."""


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """One JSON object → one line of UTF-8 bytes (sorted keys, so equal
    payloads are byte-equal — transcripts diff cleanly)."""
    data = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    encoded = data.encode("utf-8") + b"\n"
    if len(encoded) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(encoded)} bytes exceeds cap")
    return encoded


def decode_frame(line: bytes) -> Dict[str, Any]:
    """One line of bytes → the frame dict, or :class:`ProtocolError`."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(line)} bytes exceeds cap")
    try:
        payload = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def validate_request(frame: Dict[str, Any]) -> Dict[str, Any]:
    """Check a client request frame's shape; returns it normalized.

    ``id`` is optional on the wire (the supervisor assigns one), but when
    present must be a string or integer.  ``run``/``compile`` require a
    string ``source``; ``fn`` defaults to ``"main"`` and ``args`` to
    ``[]`` (integers only — the MiniJ calling convention).
    """
    op = frame.get("op")
    if op not in CLIENT_OPS:
        raise ProtocolError(f"unknown op {op!r} (expected one of {CLIENT_OPS})")
    request_id = frame.get("id")
    if request_id is not None and not isinstance(request_id, (str, int)):
        raise ProtocolError(f"request id must be str/int, got {request_id!r}")
    if op in ("run", "compile"):
        if not isinstance(frame.get("source"), str):
            raise ProtocolError(f"op {op!r} requires a string 'source'")
        fn = frame.get("fn", "main")
        if not isinstance(fn, str):
            raise ProtocolError(f"'fn' must be a string, got {fn!r}")
        frame["fn"] = fn
        args = frame.get("args", [])
        if not isinstance(args, list) or not all(
            isinstance(a, int) and not isinstance(a, bool) for a in args
        ):
            raise ProtocolError(f"'args' must be a list of ints, got {args!r}")
        frame["args"] = args
        deadline_ms = frame.get("deadline_ms")
        if deadline_ms is not None:
            if (
                not isinstance(deadline_ms, int)
                or isinstance(deadline_ms, bool)
                or deadline_ms <= 0
            ):
                raise ProtocolError(
                    f"'deadline_ms' must be a positive integer, got {deadline_ms!r}"
                )
    return frame


def validate_worker_response(
    frame: Dict[str, Any], request_id: Any
) -> Dict[str, Any]:
    """Check a worker response frame against the in-flight request.

    A response that does not echo the request id is as untrustworthy as a
    truncated one — the worker may have skipped or reordered work — so it
    is rejected and the attempt treated as failed.
    """
    status = frame.get("status")
    if status not in ("ok", "error", "failure"):
        raise ProtocolError(f"unknown worker status {status!r}")
    if frame.get("id") != request_id:
        raise ProtocolError(
            f"response id {frame.get('id')!r} does not match "
            f"request id {request_id!r}"
        )
    return frame


def error_response(
    request_id: Any, error: str, message: str, op: Optional[str] = None
) -> Dict[str, Any]:
    """A terminal user-error response (deterministic, never retried)."""
    payload = {
        "id": request_id,
        "status": "error",
        "error": error,
        "message": message,
    }
    if op is not None:
        payload["op"] = op
    return payload


def shed_response(
    request_id: Any,
    reason: str,
    retry_after: float,
    degrade_level: int,
) -> Dict[str, Any]:
    """An overload backpressure response: rejected fast, retry later.

    ``retry_after`` is a hint in seconds; ``degrade_level`` is the
    ladder level that made the shed decision, so clients (and the storm
    verifier) can distinguish admission-control sheds from
    deadline-expiry sheds on an otherwise healthy service.
    """
    return {
        "id": request_id,
        "status": "shed",
        "reason": reason,
        "retry_after": retry_after,
        "degrade_level": degrade_level,
    }
