"""Overload control for the compile service: admission, deadlines, and
the adaptive degradation ladder.

ABCD's premise makes the compile service uniquely brown-out friendly:
optimization effort is *optional* — a bounds check left in is slower,
never wrong — so under overload the service can legally shed
certification, then optimization, then admission itself, and still
answer every admitted request correctly.  This module is that policy,
kept deliberately free of I/O so it is fully deterministic under an
injected clock:

* **Admission control** (:class:`AdmissionQueue`) — a bounded queue of
  pending requests with per-request enqueue timestamps.  When depth hits
  the capacity watermark, or the degradation ladder has reached its shed
  level, new requests are rejected *fast* with a ``retry_after``
  backpressure hint instead of queuing up to time out.

* **Deadline propagation** — a client may attach ``deadline_ms``; the
  queue records the absolute expiry and :meth:`AdmissionQueue.pop` sheds
  requests whose deadline passed while queued, so a worker slot is never
  burned on a caller that already gave up.  The remaining budget is
  threaded into the worker as the solver deadline by the supervisor.

* **The degradation ladder** (:class:`DegradationLadder`) — a
  four-level state machine driven by a sliding-window queue-latency
  signal:

  ====== ==========================================================
  level  service
  ====== ==========================================================
  0      full pipeline (store capture / certification included)
  1      optimized, certification (store capture) dropped
  2      unoptimized, every check intact (the PR 6 degraded mode,
         already proven byte-identical to the reference interpreter)
  3      shed: reject with ``retry_after``
  ====== ==========================================================

  Escalation is immediate — the moment the windowed signal crosses a
  level's watermark the level rises — while recovery is hysteretic: the
  ladder steps down one level at a time, and only after the window has
  stayed clear (signal below ``hysteresis_ratio`` × the entry watermark
  for a full window).  That asymmetry is the classic overload-control
  shape: react fast, relax slowly, never oscillate per-request.

Everything here takes ``now`` as an argument or an injected clock;
nothing reads wall time on its own, which is what makes the burst storm
(:func:`repro.serve.chaos.run_burst_storm`) byte-reproducible.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

#: Ladder levels, named for readability at call sites.
LEVEL_FULL = 0
LEVEL_NO_CERTIFY = 1
LEVEL_UNOPTIMIZED = 2
LEVEL_SHED = 3


@dataclass
class OverloadConfig:
    """Policy knobs of the overload subsystem (surfaced as ``repro
    serve`` flags through :class:`~repro.serve.supervisor.ServeConfig`)."""

    #: Master switch; disabled means the pre-overload behavior — an
    #: unbounded queue, no shedding, ladder pinned at level 0 (the burst
    #: storm's baseline leg runs with this off).
    enabled: bool = True
    #: Depth watermark: a request arriving at a full queue is shed.
    queue_capacity: int = 64
    #: Queue-latency watermarks (seconds) for *entering* levels 1, 2, 3.
    watermarks: Tuple[float, float, float] = (0.5, 2.0, 8.0)
    #: Sliding window (seconds) of the queue-latency signal.
    window: float = 5.0
    #: Step down only when the signal stays below ``hysteresis_ratio`` ×
    #: the current level's entry watermark for a full window.
    hysteresis_ratio: float = 0.5
    #: Base backpressure hint (seconds); scaled by depth and level.
    retry_after: float = 0.25


class VirtualClock:
    """A manually advanced clock for deterministic overload tests.

    The storm harness injects this as the supervisor clock and advances
    it by a fixed per-dispatch cost, so queue latencies — and therefore
    ladder transitions and percentile summaries — are pure functions of
    the seeded schedule, byte-identical across runs and machines.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds > 0:
            self._now += float(seconds)


def percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(fraction * len(ordered))) - 1))
    return ordered[rank]


def latency_summary(values: List[float]) -> Dict[str, Any]:
    """The deterministic p50/p95/p99 block emitted by ``storm --json``.

    Values are rounded to microseconds so the JSON bytes cannot pick up
    platform float-formatting noise.
    """
    return {
        "count": len(values),
        "p50": round(percentile(values, 0.50), 6),
        "p95": round(percentile(values, 0.95), 6),
        "p99": round(percentile(values, 0.99), 6),
        "max": round(max(values), 6) if values else 0.0,
    }


class DegradationLadder:
    """The four-level brown-out state machine.

    Fed queue-latency samples via :meth:`observe`; polled for step-downs
    via :meth:`poll` (e.g. while the queue is idle and no samples
    arrive).  Escalation is immediate, recovery window-gated — see the
    module docstring for the shape and why.
    """

    def __init__(self, config: OverloadConfig) -> None:
        self.config = config
        self.level = LEVEL_FULL
        self.max_level = LEVEL_FULL
        self.transitions = 0
        self._samples: Deque[Tuple[float, float]] = deque()
        self._last_change: Optional[float] = None

    def signal(self, now: float) -> float:
        """The windowed queue-latency signal: max over live samples."""
        self._prune(now)
        return max((latency for _, latency in self._samples), default=0.0)

    def observe(self, latency: float, now: float) -> None:
        """Record one queue-latency sample and advance the ladder."""
        if not self.config.enabled:
            return
        self._samples.append((now, max(0.0, float(latency))))
        self._advance(now)

    def poll(self, now: float) -> int:
        """Advance the ladder on elapsed time alone (no new sample)."""
        if self.config.enabled:
            self._advance(now)
        return self.level

    # -- internals -----------------------------------------------------

    def _prune(self, now: float) -> None:
        horizon = now - self.config.window
        while self._samples and self._samples[0][0] < horizon:
            self._samples.popleft()

    def _advance(self, now: float) -> None:
        signal = self.signal(now)
        while (
            self.level < LEVEL_SHED
            and signal >= self.config.watermarks[self.level]
        ):
            self.level += 1
            self.transitions += 1
            self._last_change = now
        if self.level > self.max_level:
            self.max_level = self.level
        if self.level == LEVEL_FULL:
            return
        # Hysteretic recovery: one step per clear window.
        if (
            self._last_change is not None
            and now - self._last_change < self.config.window
        ):
            return
        threshold = (
            self.config.hysteresis_ratio * self.config.watermarks[self.level - 1]
        )
        if signal < threshold:
            self.level -= 1
            self.transitions += 1
            self._last_change = now


@dataclass
class QueuedRequest:
    """One admitted request waiting for a worker."""

    frame: Dict[str, Any]
    enqueued_at: float
    #: Absolute expiry (supervisor clock) from the client ``deadline_ms``;
    #: ``None`` = the caller waits forever.
    deadline_at: Optional[float] = None

    def expired(self, now: float) -> bool:
        return self.deadline_at is not None and now >= self.deadline_at


class AdmissionQueue:
    """The bounded request queue with per-request enqueue timestamps."""

    def __init__(self, config: OverloadConfig) -> None:
        self.config = config
        self._entries: Deque[QueuedRequest] = deque()

    def depth(self) -> int:
        return len(self._entries)

    def full(self) -> bool:
        return (
            self.config.enabled
            and self.config.queue_capacity > 0
            and len(self._entries) >= self.config.queue_capacity
        )

    def push(
        self,
        frame: Dict[str, Any],
        now: float,
        deadline_at: Optional[float] = None,
    ) -> QueuedRequest:
        entry = QueuedRequest(frame, now, deadline_at)
        self._entries.append(entry)
        return entry

    def pop(
        self, now: float
    ) -> Tuple[Optional[QueuedRequest], List[QueuedRequest]]:
        """Next dispatchable request plus any deadline-expired ones.

        Expired entries are *popped, not dispatched* — the supervisor
        answers each with a shed response so no request is ever silently
        dropped, and no worker slot is spent on a caller that gave up.
        With overload control disabled nothing is ever expired (the
        pre-overload behavior the baseline leg measures).
        """
        expired: List[QueuedRequest] = []
        while self._entries:
            entry = self._entries.popleft()
            if self.config.enabled and entry.expired(now):
                expired.append(entry)
                continue
            return entry, expired
        return None, expired

    def drain(self) -> List[QueuedRequest]:
        """Remove and return everything still queued (shutdown path)."""
        entries = list(self._entries)
        self._entries.clear()
        return entries


class OverloadController:
    """Glue: one queue + one ladder + the counters they publish.

    The supervisor owns exactly one of these.  All state transitions
    funnel through ``admit``/``pop``/``poll`` with explicit ``now``
    values, so a test (or the virtual-clock storm) fully controls time.
    """

    def __init__(self, config: OverloadConfig, stats) -> None:
        self.config = config
        self.stats = stats
        self.queue = AdmissionQueue(config)
        self.ladder = DegradationLadder(config)

    # -- admission -----------------------------------------------------

    def admit(
        self,
        frame: Dict[str, Any],
        now: float,
        deadline_at: Optional[float] = None,
    ) -> Optional[str]:
        """Admission decision: ``None`` = enqueued, else the shed reason."""
        level = self.ladder.poll(now)
        if not self.config.enabled:
            self.queue.push(frame, now, deadline_at)
            self.stats.bump("serve.overload.admitted")
            return None
        if level >= LEVEL_SHED:
            self.stats.bump("serve.overload.shed-level")
            return "degrade-level"
        if self.queue.full():
            self.stats.bump("serve.overload.shed-queue-full")
            return "queue-full"
        self.queue.push(frame, now, deadline_at)
        self.stats.bump("serve.overload.admitted")
        self.stats.bump_peak(
            "serve.overload.queue-depth_peak", self.queue.depth()
        )
        return None

    def pop(
        self, now: float
    ) -> Tuple[Optional[QueuedRequest], List[QueuedRequest]]:
        """Pop for dispatch; feeds the ladder with every observed wait."""
        entry, expired = self.queue.pop(now)
        for stale in expired:
            self.stats.bump("serve.overload.deadline-shed")
            self.ladder.observe(now - stale.enqueued_at, now)
        if entry is not None:
            self.ladder.observe(now - entry.enqueued_at, now)
        return entry, expired

    # -- signals -------------------------------------------------------

    def level(self, now: float) -> int:
        return self.ladder.poll(now)

    def retry_after(self, now: float) -> float:
        """The backpressure hint attached to every shed response.

        Scales with queue depth and ladder level so a deeply overloaded
        service pushes retries further out; rounded so transcripts stay
        byte-stable.
        """
        capacity = max(1, self.config.queue_capacity)
        pressure = 1.0 + self.queue.depth() / capacity + self.ladder.level
        return round(self.config.retry_after * pressure, 6)

    def snapshot(self, now: float) -> Dict[str, Any]:
        """The ``overload`` block of ``status`` responses / telemetry."""
        return {
            "enabled": self.config.enabled,
            "level": self.ladder.poll(now),
            "max_level": self.ladder.max_level,
            "transitions": self.ladder.transitions,
            "queue_depth": self.queue.depth(),
            "queue_capacity": self.config.queue_capacity,
            "signal": round(self.ladder.signal(now), 6),
            "watermarks": list(self.config.watermarks),
            "window": self.config.window,
            "hysteresis_ratio": self.config.hysteresis_ratio,
        }
