"""The compile-service worker subprocess (``python -m repro.serve.worker``).

One worker serves one request at a time: frames arrive on stdin, the
response leaves on stdout, and *everything dangerous happens here* — the
supervisor never compiles, optimizes, or interprets in its own process.
The worker's defenses are layered:

* an ``RLIMIT_AS`` address-space cap (``--mem-mb``) turns allocation
  blowups into a contained ``MemoryError`` → ``"failure"`` response;
* the optimized path runs behind the in-process safety net (pass guards
  plus the differential gate), so a logically wrong optimization
  degrades to the unoptimized program before it can answer wrongly;
* anything still escaping — a genuine crash, a hang, a corrupted frame —
  is the supervisor's problem, by design: it deadline-kills and respawns
  this whole process.

Degraded mode (``"mode": "degraded"``) compiles with no optimization at
all — plain lowering + e-SSA, every bounds check intact — which is
byte-identical in behavior to the unoptimized reference interpreter.
Chaos faults (:data:`repro.robustness.faults.CHAOS_FAULTS`) inject only
on the *optimized* path: they model optimizer bugs, and the degraded
path is exactly the code that must stay trustworthy when the optimizer
is not.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, Optional

from repro.core.abcd import ABCDConfig
from repro.errors import MiniJRuntimeError, ReproError
from repro.limits import HardDeadlineExceeded, address_space_cap, hard_deadline
from repro.robustness.faults import CHAOS_FAULTS, ChaosContext, decide_chaos_fault
from repro.serve import protocol

#: Environment variable carrying the chaos configuration (JSON object
#: with ``rate``/``seed``/``faults``/``slow_seconds`` keys).  Unset or
#: unparsable ⇒ chaos disabled; explicit per-request ``"chaos"`` fields
#: are honored only while this is set, so production servers cannot be
#: fault-injected by a client.
CHAOS_ENV = "REPRO_SERVE_CHAOS"


def _load_chaos_config() -> Optional[Dict[str, Any]]:
    raw = os.environ.get(CHAOS_ENV)
    if not raw:
        return None
    try:
        config = json.loads(raw)
    except ValueError:
        return None
    return config if isinstance(config, dict) else {}


def _execute(program, fn: str, args, fuel: int) -> Dict[str, Any]:
    """Run ``fn(args)`` and capture outcome *and* dynamic counters.

    Uses the :class:`Interpreter` object directly (not ``run_program``)
    so the check/instruction counters survive a trap — a degraded
    response must report its intact checks even when the program traps.
    """
    from repro.errors import BoundsCheckError
    from repro.runtime.interpreter import Interpreter

    interp = Interpreter(program, fuel=fuel)
    outcome: Dict[str, Any] = {
        "value": None,
        "trap": None,
        "trap_message": "",
        "check_id": None,
        "index": None,
        "length": None,
        "kind": None,
    }
    try:
        result = interp.run(fn, tuple(args))
        outcome["value"] = result.value
    except BoundsCheckError as exc:
        outcome.update(
            trap=type(exc).__name__,
            trap_message=str(exc),
            check_id=exc.check_id,
            index=exc.index,
            length=exc.length,
            kind=exc.kind,
        )
    except MiniJRuntimeError as exc:
        outcome.update(trap=type(exc).__name__, trap_message=str(exc))
    stats = interp.stats
    outcome["checks"] = {
        "total": stats.total_checks,
        "lower": stats.lower_checks,
        "upper": stats.upper_checks,
        "speculative": stats.speculative_checks,
    }
    outcome["instructions"] = stats.instructions
    return outcome


def _maybe_inject_chaos(
    chaos: Optional[Dict[str, Any]],
    frame: Dict[str, Any],
    mem_cap_applied: bool,
) -> None:
    """Fire at most one chaos fault at the mid-compile injection point."""
    if chaos is None:
        return
    name = frame.get("chaos")
    if not name:
        name = decide_chaos_fault(
            seed=int(chaos.get("seed", 0)),
            request_id=frame.get("id"),
            attempt=int(frame.get("attempt", 0)),
            rate=float(chaos.get("rate", 0.0)),
            names=chaos.get("faults"),
        )
    spec = CHAOS_FAULTS.get(name) if name else None
    if spec is None:
        return
    context = ChaosContext(
        raw_write=_raw_write,
        slow_seconds=float(chaos.get("slow_seconds", 0.05)),
        mem_cap_applied=mem_cap_applied,
    )
    spec.inject(context)


def _raw_write(data: bytes) -> None:
    sys.stdout.buffer.write(data)
    sys.stdout.buffer.flush()


def _attach_store_entry(
    response: Dict[str, Any],
    capture,
    report,
    frame: Dict[str, Any],
    program,
) -> None:
    """Attach a captured store entry to a capture-requested response.

    The supervisor owns the store handle; the worker only ships the
    entry's payload object back over its response frame.  Uncacheable
    results (gate revert, pass failure, quarantined function, uncertified
    elimination) ship nothing — the store just stays cold for the key.
    Entries that would push the frame past the protocol cap are dropped
    too: losing a cache write must never lose the response.
    """
    from repro.store.entry import entry_payload

    if report.pass_failures:
        capture.mark_uncacheable("pass failures during optimization")
    if report.quarantined_functions:
        capture.mark_uncacheable("certify quarantined a function")
    entry = capture.build_entry(frame.get("fingerprint", ""), program)
    if entry is None:
        response["store_uncacheable"] = capture.reason or "not captured"
        return
    try:
        payload = entry_payload(entry)
        response["store_entry"] = payload
        protocol.encode_frame(response)  # size probe against the frame cap
    except (protocol.ProtocolError, RecursionError, ValueError, TypeError):
        response.pop("store_entry", None)
        response["store_uncacheable"] = "entry exceeds response frame cap"


def _deadline_budget(frame: Dict[str, Any]) -> Optional[float]:
    """The request's remaining deadline budget (seconds), or ``None``.

    Set by the supervisor when the client attached ``deadline_ms`` and
    its remaining budget undercuts the per-attempt deadline — the worker
    then bounds its own effort by what the caller will actually wait for.
    Garbage values (a forged frame) disable the budget rather than crash.
    """
    budget = frame.get("deadline_budget")
    if isinstance(budget, bool) or not isinstance(budget, (int, float)):
        return None
    return float(budget) if budget > 0 else None


def _serve_request(
    frame: Dict[str, Any],
    chaos: Optional[Dict[str, Any]],
    mem_cap_applied: bool,
    served: int,
) -> Dict[str, Any]:
    """One ``run``/``compile`` request → one response payload.

    When the frame carries a ``deadline_budget`` the whole body runs
    under :func:`repro.limits.hard_deadline` for that many seconds — the
    worker-side backstop of deadline layering.  The supervisor's pipe
    deadline uses the *same* minimum, so the two timers agree instead of
    racing; whichever fires first yields the same verdict (a retryable
    ``failure``), and the solver's own ``ABCDConfig.deadline`` is capped
    by the same budget so a proof session lands under both.
    """
    budget = _deadline_budget(frame)
    try:
        with hard_deadline(budget):
            return _serve_request_body(
                frame, chaos, mem_cap_applied, served, budget
            )
    except HardDeadlineExceeded:
        return {
            "id": frame.get("id"),
            "status": "failure",
            "reason": "deadline",
            "message": f"worker exceeded the {budget:.3f}s request budget",
        }


def _serve_request_body(
    frame: Dict[str, Any],
    chaos: Optional[Dict[str, Any]],
    mem_cap_applied: bool,
    served: int,
    budget: Optional[float] = None,
) -> Dict[str, Any]:
    """One ``run``/``compile`` request → one response payload."""
    from repro.passes.session import CompilationSession
    from repro.robustness.differential import gated_optimize

    request_id = frame.get("id")
    op = frame["op"]
    source = frame.get("source", "")  # absent on cached dispatch
    fn = frame.get("fn", "main")
    args = frame.get("args", [])
    mode = frame.get("mode", "optimized")
    fuel = int(frame.get("fuel", 50_000_000))

    response: Dict[str, Any] = {
        "id": request_id,
        "status": "ok",
        "op": op,
        "mode": mode,
        "served": served,
    }

    try:
        if mode == "cached":
            # A store hit: the supervisor already climbed the full load
            # ladder (envelope, fingerprint, IR verify, certificate
            # replay) and pushes the final optimized IR over the frame.
            # This worker only parses and executes it — no source
            # compile, no optimizer, no chaos (chaos models optimizer
            # bugs and the optimizer never ran here).
            from repro.ir.parser import parse_ir_program
            from repro.ir.verifier import verify_program

            program = parse_ir_program(frame.get("ir", ""))
            verify_program(program)
            response["report"] = {
                "analyzed": 0,
                "eliminated": int(frame.get("eliminated", 0)),
                "rollbacks": 0,
            }
        elif mode == "degraded":
            # Pure lowering + e-SSA: no standard opts, no ABCD, every
            # check intact — the unoptimized reference behavior.
            session = CompilationSession()
            program = session.compile(source, standard_opts=False)
            response["report"] = {"analyzed": 0, "eliminated": 0, "rollbacks": 0}
        else:
            _maybe_inject_chaos(chaos, frame, mem_cap_applied)
            capture = None
            config = ABCDConfig(
                solver_backend=str(frame.get("solver", "demand"))
            )
            if budget is not None:
                # The solver's proof-session deadline is capped by the
                # request budget: compile effort bounded by what the
                # caller will wait for (a budget-exhausted session keeps
                # its checks — slower, never wrong).
                config.deadline = (
                    budget
                    if config.deadline is None
                    else min(config.deadline, budget)
                )
            if frame.get("cache") == "capture":
                # The supervisor missed the store on this fingerprint:
                # certify is forced on (stored entries must carry
                # replayable certificates) and the pre-removal state is
                # captured so the response can carry a store entry.
                from repro.store.capture import StoreCapture
                from repro.store.service import certifying_config

                capture = StoreCapture()
                config = certifying_config(config)
            session = CompilationSession(config=config)
            program = session.compile(
                source, standard_opts=True, inline=bool(frame.get("inline", False))
            )
            if op == "run":
                # Optimize behind the differential gate on the request's
                # own input: a divergent optimization reverts to the
                # checked baseline before it can answer.
                gated = gated_optimize(
                    program,
                    session.config,
                    entry=fn,
                    inputs=(tuple(args),),
                    fuel=fuel,
                    capture=capture,
                )
                report = gated.report
                response["gate_reverted"] = gated.reverted
                if capture is not None and gated.reverted:
                    capture.mark_uncacheable("differential gate reverted")
            else:
                report = session.optimize(program, capture=capture)
            response["report"] = {
                "analyzed": report.analyzed,
                "eliminated": report.eliminated_count(),
                "rollbacks": len(report.pass_failures),
            }
            if capture is not None:
                _attach_store_entry(response, capture, report, frame, program)
    except ReproError as exc:
        # Deterministic user error (syntax/type/lowering): terminal, not
        # a worker failure — retrying cannot change the answer.
        return protocol.error_response(
            request_id, type(exc).__name__, str(exc), op=op
        )
    except MemoryError:
        return {
            "id": request_id,
            "status": "failure",
            "reason": "oom",
            "message": "worker memory cap exceeded during compile/optimize",
        }

    if op == "run":
        try:
            response.update(_execute(program, fn, args, fuel))
        except ReproError as exc:
            return protocol.error_response(
                request_id, type(exc).__name__, str(exc), op=op
            )
        except MemoryError:
            return {
                "id": request_id,
                "status": "failure",
                "reason": "oom",
                "message": "worker memory cap exceeded during execution",
            }
    return response


class _DrainRequested(Exception):
    """SIGTERM arrived while idle-reading: exit the serve loop now."""


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.serve.worker")
    parser.add_argument(
        "--mem-mb",
        type=int,
        default=0,
        help="RLIMIT_AS address-space cap in MiB (0 = uncapped)",
    )
    args = parser.parse_args(argv)

    mem_cap_applied = False
    if args.mem_mb > 0:
        mem_cap_applied = address_space_cap(args.mem_mb * 1024 * 1024)
    chaos = _load_chaos_config()

    # SIGTERM = drain, not drop: finish the in-flight request, write and
    # flush its response (which may carry a captured store entry — the
    # supervisor must never receive half a frame), then exit.  Only when
    # idle in readline does the handler interrupt immediately.
    drain = {"reading": False, "stop": False}

    def _on_sigterm(signum, _frame):
        drain["stop"] = True
        if drain["reading"]:
            raise _DrainRequested()

    try:
        import signal

        signal.signal(signal.SIGTERM, _on_sigterm)
    except (ValueError, OSError):
        pass  # non-main thread (tests driving main() directly)

    stdin = sys.stdin.buffer
    served = 0
    while True:
        drain["reading"] = True
        try:
            line = stdin.readline()
        except _DrainRequested:
            return 0
        finally:
            drain["reading"] = False
        if not line:
            return 0  # supervisor closed our stdin: drain complete
        try:
            frame = protocol.decode_frame(line)
            op = frame.get("op")
            if op == "shutdown":
                return 0
            if op not in ("run", "compile"):
                raise protocol.ProtocolError(f"worker cannot serve op {op!r}")
        except protocol.ProtocolError as exc:
            _raw_write(
                protocol.encode_frame(
                    {
                        "id": None,
                        "status": "failure",
                        "reason": "protocol",
                        "message": str(exc),
                    }
                )
            )
            continue
        served += 1
        try:
            response = _serve_request(frame, chaos, mem_cap_applied, served)
        except Exception as exc:  # last-ditch: report, let supervisor retry
            response = {
                "id": frame.get("id"),
                "status": "failure",
                "reason": "internal",
                "message": f"{type(exc).__name__}: {exc}",
            }
        _raw_write(protocol.encode_frame(response))
        if drain["stop"]:
            return 0  # drained: response flushed, exit cleanly


if __name__ == "__main__":
    sys.exit(main())
