"""The crash-isolated compile service (``repro serve``).

A long-running supervisor process dispatches each compile/run request to
a pool of worker subprocesses, so a segfault, hang, or memory blowup in
any optimization pass is a recoverable event — the paper's Jalapeño
setting, where the optimizer lives inside a VM that must never die.

Layers (each its own module):

* :mod:`repro.serve.protocol` — newline-delimited JSON framing shared by
  clients, the supervisor, and workers;
* :mod:`repro.serve.worker` — the sandboxed subprocess that actually
  compiles, optimizes (behind the differential gate), and executes;
* :mod:`repro.serve.breaker` — the per-function-fingerprint circuit
  breaker that routes repeatedly failing fingerprints to degraded
  (unoptimized, checks-intact) compilation;
* :mod:`repro.serve.supervisor` — worker lifecycle (spawn/recycle/kill),
  per-request deadlines, retry with full-jitter exponential backoff, and
  the stdio / Unix-socket serve loops;
* :mod:`repro.serve.overload` — admission control (bounded queue +
  ``retry_after`` backpressure), client deadline propagation, and the
  adaptive degradation ladder that sheds certification, then
  optimization, then admission as queue latency climbs;
* :mod:`repro.serve.chaos` — the storm harness that drives the service
  under injected process-level faults (and, with ``--burst``, open-loop
  overload) and verifies the no-lost-request / degraded-but-correct
  guarantees.
"""

from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.serve.overload import (
    DegradationLadder,
    OverloadConfig,
    OverloadController,
    VirtualClock,
)
from repro.serve.supervisor import ServeConfig, Supervisor

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "DegradationLadder",
    "OverloadConfig",
    "OverloadController",
    "ServeConfig",
    "Supervisor",
    "VirtualClock",
]
