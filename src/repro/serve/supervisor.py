"""The compile-service supervisor: worker pool, deadlines, retries,
circuit breaking, and graceful degradation.

The supervisor is the process that must never die.  It therefore does no
compilation work itself: every ``run``/``compile`` request is written to
a worker subprocess and the response read back under a **supervisor-side
wall-clock deadline** (a ``select`` timeout on the worker's pipe — not
``SIGALRM``, which fires in whichever process armed it and so cannot
bound a *different* process's hang).  A worker that misses its deadline,
dies, or answers with a malformed frame is SIGKILLed and replaced; the
request is retried on a fresh worker with bounded exponential backoff.

When a request's optimized attempts are exhausted, or its function
fingerprint's circuit breaker is open, the request is served *degraded*:
compiled without optimization, every bounds check intact, behaviorally
identical to the unoptimized interpreter.  Degradation is the floor the
service can always reach — if even degraded dispatch fails (the pool is
being actively massacred), the supervisor compiles degraded *in-process*
as the final fallback, so no request is ever lost.

Workers are recycled after ``recycle_after`` requests (a leaking or
fragmenting worker has a bounded lifetime) and drained cleanly on
SIGTERM/SIGINT: the in-flight request finishes, workers get a shutdown
frame, stragglers are killed, telemetry is flushed.

All per-request outcomes fold into ``SessionStats.counters`` under the
``serve.*`` prefix, surfaced by ``status`` requests and ``repro serve
--json`` telemetry.
"""

from __future__ import annotations

import os
import random
import select
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.passes.manager import SessionStats
from repro.serve import protocol
from repro.serve.breaker import CircuitBreaker, function_fingerprint
from repro.serve.overload import (
    LEVEL_FULL,
    LEVEL_NO_CERTIFY,
    LEVEL_SHED,
    LEVEL_UNOPTIMIZED,
    OverloadConfig,
    OverloadController,
)
from repro.serve.worker import CHAOS_ENV


@dataclass
class ServeConfig:
    """Supervisor policy knobs (all surfaced as ``repro serve`` flags)."""

    workers: int = 2
    #: Wall-clock deadline per worker attempt (compile + execute).
    deadline: float = 10.0
    #: Worker address-space cap in MiB (0 = uncapped).
    mem_mb: int = 512
    #: Optimized attempts per request beyond the first.
    retries: int = 2
    #: Exponential backoff between retries: ``base * 2**(attempt-1)``,
    #: capped at ``backoff_cap``.
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    #: Recycle a worker after this many requests (0 = never).
    recycle_after: int = 64
    #: Consecutive request-level failures that open a fingerprint's breaker.
    breaker_threshold: int = 3
    #: Seconds an open breaker waits before admitting a half-open probe.
    breaker_cooldown: float = 30.0
    #: Interpreter fuel forwarded to workers.
    fuel: int = 50_000_000
    #: Compile degraded in-process when even degraded dispatch fails.
    inline_fallback: bool = True
    #: Solver backend workers analyze with (``demand``/``closure``/
    #: ``hybrid``); part of the store fingerprint, so cached entries
    #: produced under one setting never answer requests under another.
    solver: str = "demand"
    #: Chaos configuration forwarded to workers via the environment
    #: (``None`` in production: workers then ignore ``"chaos"`` fields).
    chaos: Optional[Dict[str, Any]] = None
    #: Root of the persistent certificate store (``None`` = no cache).
    #: The supervisor owns the store handle: it loads (and certificate-
    #: replays) entries, pushes hits to workers for execution, and writes
    #: entries captured by workers on misses.  Open circuit breakers are
    #: persisted here too, so a supervisor restart does not forget them.
    cache_dir: Optional[str] = None
    #: Overload control (see :mod:`repro.serve.overload`): admission
    #: queue bound, ladder watermarks/window/hysteresis, backpressure
    #: hint.  ``overload_enabled=False`` restores the pre-overload
    #: unbounded-queue behavior (the burst storm's baseline leg).
    overload_enabled: bool = True
    queue_capacity: int = 64
    overload_watermarks: Tuple[float, float, float] = (0.5, 2.0, 8.0)
    overload_window: float = 5.0
    overload_hysteresis: float = 0.5
    retry_after: float = 0.25
    #: Seed of the supervisor's jitter RNG (retry backoff + breaker
    #: cooldown jitter); injectable so storms are byte-reproducible.
    jitter_seed: int = 0
    #: Breaker cooldown full-jitter fraction (0 disables).
    breaker_jitter: float = 0.1
    #: Thread per-request ``deadline_ms`` remaining budgets into worker
    #: read timeouts and worker-side hard deadlines.  The virtual-clock
    #: burst storm turns this off: its "seconds" are simulated, and an
    #: alarm armed with a simulated budget would race real compile time
    #: nondeterministically.  Queue-side expiry shedding stays on either
    #: way — it only compares supervisor-clock timestamps.
    propagate_deadlines: bool = True


class WorkerDied(Exception):
    """The worker exited / closed its pipe before answering."""


class WorkerTimeout(Exception):
    """The worker missed the supervisor-side deadline."""


class WorkerHandle:
    """One worker subprocess plus its framed pipes."""

    def __init__(self, config: ServeConfig) -> None:
        argv = [sys.executable, "-m", "repro.serve.worker"]
        if config.mem_mb > 0:
            argv += ["--mem-mb", str(config.mem_mb)]
        env = dict(os.environ)
        # Workers must import repro regardless of how the supervisor was
        # launched (installed package or PYTHONPATH=src checkout).
        package_root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing else package_root + os.pathsep + existing
        )
        if config.chaos is not None:
            import json

            env[CHAOS_ENV] = json.dumps(config.chaos)
        else:
            env.pop(CHAOS_ENV, None)
        self.proc = subprocess.Popen(
            argv,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
        )
        self.served = 0
        self._buffer = b""

    @property
    def pid(self) -> int:
        return self.proc.pid

    def alive(self) -> bool:
        return self.proc.poll() is None

    def send(self, frame: Dict[str, Any]) -> None:
        try:
            self.proc.stdin.write(protocol.encode_frame(frame))
            self.proc.stdin.flush()
        except (BrokenPipeError, OSError, ValueError) as exc:
            raise WorkerDied(f"worker {self.pid} pipe closed: {exc}") from None

    def read_frame(self, timeout: float, clock=time.monotonic) -> Dict[str, Any]:
        """Read one response frame, bounded by ``timeout`` seconds.

        Raises :class:`WorkerTimeout` when the deadline passes,
        :class:`WorkerDied` on EOF, and
        :class:`~repro.serve.protocol.ProtocolError` on garbage.
        """
        fd = self.proc.stdout.fileno()
        deadline = clock() + timeout
        while b"\n" not in self._buffer:
            if len(self._buffer) > protocol.MAX_FRAME_BYTES:
                raise protocol.ProtocolError(
                    f"worker {self.pid} response exceeds the frame cap"
                )
            remaining = deadline - clock()
            if remaining <= 0:
                raise WorkerTimeout(
                    f"worker {self.pid} exceeded the {timeout:.1f}s deadline"
                )
            readable, _, _ = select.select([fd], [], [], remaining)
            if not readable:
                continue  # re-check the clock; EINTR also lands here
            chunk = os.read(fd, 65536)
            if not chunk:
                raise WorkerDied(f"worker {self.pid} closed its pipe mid-request")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return protocol.decode_frame(line)

    def kill(self) -> None:
        if self.alive():
            try:
                self.proc.kill()
            except OSError:
                pass
        self._close_pipes()
        try:
            self.proc.wait(timeout=5)
        except subprocess.TimeoutExpired:  # pragma: no cover - kernel lag
            pass

    def shutdown(self, grace: float = 1.0) -> None:
        """Polite drain: shutdown frame, short wait, then the hammer."""
        if self.alive():
            try:
                self.send({"op": "shutdown"})
            except WorkerDied:
                pass
            try:
                self.proc.wait(timeout=grace)
            except subprocess.TimeoutExpired:
                pass
        self.kill()

    def _close_pipes(self) -> None:
        for pipe in (self.proc.stdin, self.proc.stdout):
            if pipe is not None:
                try:
                    pipe.close()
                except OSError:
                    pass


class _DrainRequested(Exception):
    """Raised inside a blocking client read when SIGTERM/SIGINT arrives."""


class Supervisor:
    """Owns the worker pool and serves requests through it."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        stats: Optional[SessionStats] = None,
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self.stats = stats if stats is not None else SessionStats()
        #: Seeded jitter source shared by retry backoff and the breaker
        #: cooldown extension (one seed, one deterministic draw order).
        self.rng = random.Random(self.config.jitter_seed)
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            cooldown=self.config.breaker_cooldown,
            clock=clock,
            jitter=self.config.breaker_jitter,
            rng=self.rng,
        )
        self.overload = OverloadController(
            OverloadConfig(
                enabled=self.config.overload_enabled,
                queue_capacity=self.config.queue_capacity,
                watermarks=self.config.overload_watermarks,
                window=self.config.overload_window,
                hysteresis_ratio=self.config.overload_hysteresis,
                retry_after=self.config.retry_after,
            ),
            stats=self.stats,
        )
        #: Optional per-dispatch hook (outcome: "response" | "timeout" |
        #: "failure").  The burst storm injects a virtual-clock advance
        #: here so service time is deterministic simulated time.
        self.dispatch_tick: Optional[Callable[[str], None]] = None
        self.pool: List[WorkerHandle] = []
        #: The persistent certificate store (opened by :meth:`start` when
        #: ``config.cache_dir`` is set; ``None`` = caching disabled).
        self.store = None
        self._clock = clock
        self._sleep = sleep
        self._next_slot = 0
        self._request_counter = 0
        self._stop = False
        self._reading_client = False
        self._started = False

    # ------------------------------------------------------------------
    # Pool lifecycle.
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        if self.config.cache_dir and self.store is None:
            try:
                from repro.store.store import CertStore

                # Opening runs the recovery scan: stray temporaries from a
                # worker SIGKILLed (or supervisor crashed) mid-write are
                # deleted before the first request.
                self.store = CertStore(self.config.cache_dir)
                self._load_breakers()
            except OSError:
                # An unusable cache directory degrades to no caching —
                # never to a supervisor that cannot start.
                self.store = None
                self.stats.bump("serve.cache.disabled")
        for _ in range(max(1, self.config.workers)):
            self.pool.append(WorkerHandle(self.config))
        self._started = True

    def shutdown(self) -> None:
        """Drain the pool: polite shutdown frames, then SIGKILL.

        Breaker state is persisted first; the store itself needs no
        flush — every committed entry was already fsynced into place by
        the atomic write protocol."""
        self._persist_breakers()
        for worker in self.pool:
            worker.shutdown()
        self.pool.clear()
        self._started = False

    # ------------------------------------------------------------------
    # Breaker persistence (rides in the cache directory).
    # ------------------------------------------------------------------

    def _breaker_path(self) -> str:
        return os.path.join(self.config.cache_dir, "breakers.json")

    def _load_breakers(self) -> None:
        import json

        try:
            with open(self._breaker_path(), "rb") as handle:
                payload = json.loads(handle.read().decode("utf-8"))
        except (OSError, ValueError):
            return  # absent or unreadable snapshot: start fresh
        restored = self.breaker.restore(payload)
        if restored:
            self.stats.bump("serve.breakers-restored", restored)

    def _persist_breakers(self) -> None:
        if self.store is None:
            return
        import json

        from repro.store import atomic

        try:
            data = json.dumps(
                self.breaker.to_persist(), sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
            atomic.atomic_write_bytes(
                self._breaker_path(), data, tmp_dir=str(self.store.tmp_dir)
            )
        except (OSError, ValueError, TypeError):
            self.stats.bump("serve.breaker-persist-errors")

    def _checkout_worker(self) -> WorkerHandle:
        """Round-robin over the pool, replacing dead workers on the way."""
        self.start()
        slot = self._next_slot % len(self.pool)
        self._next_slot += 1
        worker = self.pool[slot]
        if not worker.alive():
            worker = self._replace_worker(slot)
        return worker

    def _replace_worker(self, slot: int) -> WorkerHandle:
        self.pool[slot].kill()
        self.pool[slot] = WorkerHandle(self.config)
        self.stats.bump("serve.respawned")
        return self.pool[slot]

    def _slot_of(self, worker: WorkerHandle) -> int:
        return self.pool.index(worker)

    def _maybe_recycle(self, worker: WorkerHandle) -> None:
        limit = self.config.recycle_after
        if limit > 0 and worker.served >= limit and worker in self.pool:
            slot = self._slot_of(worker)
            worker.shutdown(grace=0.5)
            self.pool[slot] = WorkerHandle(self.config)
            self.stats.bump("serve.recycled")

    # ------------------------------------------------------------------
    # Request handling.
    # ------------------------------------------------------------------

    def handle_request(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Serve one client frame synchronously; always returns a frame.

        Convenience wrapper over the queued path: admission control runs
        (so overload policy applies even to synchronous callers), then
        the queue is drained.  The last response produced belongs to this
        frame — either its service result, or its own shed response.
        """
        immediate = self.submit(frame)
        if immediate is not None:
            return immediate
        results = self.process_queue()
        return results[-1][1]

    def submit(
        self, frame: Dict[str, Any], arrived_at: Optional[float] = None
    ) -> Optional[Dict[str, Any]]:
        """Admission control for one client frame.

        Returns a response to send *now* — a protocol error, a
        ``status``/``shutdown`` result, or an overload shed with a
        ``retry_after`` hint — or ``None`` when the request was admitted
        to the bounded queue.  ``arrived_at`` lets open-loop drivers
        stamp the true arrival time (supervisor clock) even when they
        pour a backlog of due arrivals in after a service step.
        """
        self.stats.bump("serve.requests")
        try:
            if not isinstance(frame, dict):
                raise protocol.ProtocolError(
                    f"request must be a JSON object, got {type(frame).__name__}"
                )
            frame = protocol.validate_request(dict(frame))
        except protocol.ProtocolError as exc:
            self.stats.bump("serve.protocol-errors")
            return protocol.error_response(
                frame.get("id") if isinstance(frame, dict) else None,
                "ProtocolError",
                str(exc),
            )
        if frame.get("id") is None:
            self._request_counter += 1
            frame["id"] = f"r{self._request_counter}"

        op = frame["op"]
        if op == "status":
            return self.status_payload(frame["id"])
        if op == "shutdown":
            self._stop = True
            return {"id": frame["id"], "status": "ok", "op": "shutdown"}

        now = arrived_at if arrived_at is not None else self._clock()
        deadline_at = None
        if frame.get("deadline_ms") is not None:
            deadline_at = now + frame["deadline_ms"] / 1000.0
            frame["_deadline_at"] = deadline_at
        reason = self.overload.admit(frame, now, deadline_at)
        if reason is not None:
            return self._shed_response(frame, reason)
        return None

    def pending(self) -> int:
        """Requests admitted but not yet served."""
        return self.overload.queue.depth()

    def process_one(self) -> List[Tuple[Dict[str, Any], Dict[str, Any]]]:
        """Serve the next queued request.

        Returns ``(frame, response)`` pairs: a shed response for every
        deadline-expired entry popped on the way (never dispatched — no
        worker slot is spent on a caller that gave up) and at most one
        service response.  Empty when the queue is empty.
        """
        out: List[Tuple[Dict[str, Any], Dict[str, Any]]] = []
        entry, expired = self.overload.pop(self._clock())
        for stale in expired:
            out.append(
                (stale.frame, self._shed_response(stale.frame, "deadline-expired"))
            )
        if entry is not None:
            out.append((entry.frame, self._serve_compile_or_run(entry.frame)))
        return out

    def process_queue(self) -> List[Tuple[Dict[str, Any], Dict[str, Any]]]:
        """Drain the queue completely (synchronous serving, shutdown)."""
        out: List[Tuple[Dict[str, Any], Dict[str, Any]]] = []
        while self.pending():
            out.extend(self.process_one())
        return out

    def shed_queued(self, reason: str) -> List[Tuple[Dict[str, Any], Dict[str, Any]]]:
        """Answer everything still queued with a shed response (drain on
        SIGTERM/EOF: an admitted request is never silently dropped)."""
        return [
            (entry.frame, self._shed_response(entry.frame, reason))
            for entry in self.overload.queue.drain()
        ]

    def _shed_response(self, frame: Dict[str, Any], reason: str) -> Dict[str, Any]:
        now = self._clock()
        self.stats.bump("serve.overload.shed")
        return protocol.shed_response(
            frame.get("id"),
            reason,
            self.overload.retry_after(now),
            self.overload.level(now),
        )

    def _deadline_expired(self, frame: Dict[str, Any]) -> bool:
        if not self.config.overload_enabled:
            return False  # pre-overload behavior: deadlines are ignored
        deadline_at = frame.get("_deadline_at")
        return deadline_at is not None and self._clock() >= deadline_at

    def _serve_compile_or_run(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Serve one admitted ``run``/``compile`` frame at the current
        degradation level; every response is tagged with that level."""
        level = self.overload.level(self._clock())
        self.stats.bump(f"serve.overload.served-level{min(level, LEVEL_UNOPTIMIZED)}")
        response = self._serve_at_level(frame, level)
        response.setdefault("degrade_level", level)
        return response

    def _serve_at_level(
        self, frame: Dict[str, Any], level: int
    ) -> Dict[str, Any]:
        # Lazy start before the cache lookup, not at worker checkout: the
        # store handle is opened by start(), and the first request must be
        # able to hit (or capture into) it.
        self.start()
        fingerprint = function_fingerprint(frame["source"], frame["fn"])
        want_optimized = bool(frame.get("optimize", True))

        if level >= LEVEL_SHED:
            # Defensive: admission sheds before anything queues at level
            # 3; a request that raced an escalation still gets the hint.
            return self._shed_response(frame, "degrade-level")
        if level >= LEVEL_UNOPTIMIZED:
            return self._serve_degraded(frame, fingerprint, "overload")
        if not want_optimized:
            return self._serve_degraded(frame, fingerprint, "requested")

        # The store is consulted before the breaker: a hit executes code
        # whose every certificate just re-replayed, without touching the
        # optimizer — the machinery the breaker distrusts.  At level 1
        # (certification dropped) hits are still served — they are pure
        # savings — but misses skip capture: the forced certify compile
        # is exactly the optional effort this level sheds.
        if self.store is not None:
            store_fp = self._store_fingerprint(frame)
            if store_fp is not None:
                cached = self._serve_cached(frame, fingerprint, store_fp)
                if cached is not None:
                    return cached
                if level < LEVEL_NO_CERTIFY:
                    # Miss: ask the worker to capture a store entry
                    # alongside the normal optimized response.
                    frame["_cache_fp"] = store_fp
                else:
                    self.stats.bump("serve.overload.capture-dropped")

        if not self.breaker.allow_optimized(fingerprint):
            self.stats.bump("serve.breaker-open")
            return self._serve_degraded(frame, fingerprint, "breaker-open")
        if self.breaker.state_of(fingerprint).probing:
            self.stats.bump("serve.breaker-probes")

        attempts = 0
        last_failure = ""
        for attempt in range(self.config.retries + 1):
            if attempt:
                if self._deadline_expired(frame):
                    # The caller's budget ran out mid-retry: stop burning
                    # workers on an answer nobody is waiting for.
                    self.stats.bump("serve.overload.deadline-shed")
                    return self._shed_response(frame, "deadline-expired")
                self.stats.bump("serve.retried")
                self._sleep(self._backoff(attempt))
            attempts += 1
            kind, payload = self._dispatch(frame, "optimized", attempt)
            if kind == "response":
                if payload["status"] == "error":
                    # Deterministic user error: terminal, and says nothing
                    # about the optimizer's health — the breaker is not
                    # advanced in either direction.
                    self.stats.bump("serve.errors")
                    payload["fingerprint"] = fingerprint
                    return payload
                self.breaker.record_success(fingerprint)
                self.stats.bump("serve.optimized")
                self._absorb_store_entry(payload, frame.get("_cache_fp"))
                payload.update(
                    fingerprint=fingerprint, attempts=attempts, retried=attempt > 0
                )
                return payload
            last_failure = payload
            self.stats.bump("serve.worker-failures")

        # Optimized service failed outright: advance the breaker once per
        # *request* (its unit of "consecutive failures") and degrade.
        if self.breaker.record_failure(fingerprint):
            self.stats.bump("serve.breaker-opened")
            # An open breaker must survive a supervisor restart.
            self._persist_breakers()
        if self._deadline_expired(frame):
            self.stats.bump("serve.overload.deadline-shed")
            return self._shed_response(frame, "deadline-expired")
        response = self._serve_degraded(frame, fingerprint, "retries-exhausted")
        response["attempts"] = attempts + response.get("attempts", 0)
        response["last_failure"] = last_failure
        return response

    def _serve_degraded(
        self, frame: Dict[str, Any], fingerprint: str, reason: str
    ) -> Dict[str, Any]:
        """Unoptimized, checks-intact service — the always-available floor."""
        attempts = 0
        for attempt in range(self.config.retries + 1):
            if attempt:
                if self._deadline_expired(frame):
                    self.stats.bump("serve.overload.deadline-shed")
                    return self._shed_response(frame, "deadline-expired")
                self._sleep(self._backoff(attempt))
            attempts += 1
            kind, payload = self._dispatch(frame, "degraded", attempt)
            if kind == "response":
                if payload["status"] == "ok":
                    self.stats.bump("serve.degraded")
                payload.update(
                    fingerprint=fingerprint,
                    attempts=attempts,
                    degraded_reason=reason,
                )
                return payload
            self.stats.bump("serve.worker-failures")

        if not self.config.inline_fallback:
            self.stats.bump("serve.failed")
            return {
                "id": frame["id"],
                "status": "failure",
                "reason": "pool-exhausted",
                "message": "degraded dispatch failed and inline fallback is off",
                "fingerprint": fingerprint,
            }

        # The pool is being massacred: serve degraded in-process.  This
        # reuses the worker's own request handler as a plain library call
        # — same compile path, same response shape, no subprocess.
        from repro.serve import worker as worker_module

        self.stats.bump("serve.inline-fallback")
        inline_frame = dict(frame)
        inline_frame["mode"] = "degraded"
        payload = worker_module._serve_request(inline_frame, None, False, 0)
        if payload.get("status") == "ok":
            self.stats.bump("serve.degraded")
        payload.update(
            fingerprint=fingerprint,
            attempts=attempts,
            degraded_reason=reason,
            inline_fallback=True,
        )
        return payload

    # ------------------------------------------------------------------
    # The persistent certificate store (supervisor-owned).
    # ------------------------------------------------------------------

    def _store_fingerprint(self, frame: Dict[str, Any]) -> Optional[str]:
        """The request's store key; ``None`` when it cannot be computed
        (e.g. unlexable source — the worker will report the user error)."""
        try:
            from repro.core.abcd import ABCDConfig
            from repro.store.fingerprint import store_fingerprint

            return store_fingerprint(
                frame["source"],
                ABCDConfig(solver_backend=self.config.solver),
                standard_opts=True,
                inline=bool(frame.get("inline", False)),
            )
        except Exception:
            return None

    def _serve_cached(
        self, frame: Dict[str, Any], fingerprint: str, store_fp: str
    ) -> Optional[Dict[str, Any]]:
        """Try to answer from the store; ``None`` means miss (or a hit
        whose execution dispatch failed) — serve the normal path.

        ``load`` climbs the full zero-trust ladder in the supervisor:
        pure analysis of durable bytes (parse, verify, certificate
        replay), no user-program execution — that is still pushed to a
        worker over the request frame as mode ``"cached"``.
        """
        from repro.core.abcd import ABCDConfig

        self.stats.bump("serve.cache.lookups")
        loaded = self.store.load(
            store_fp, ABCDConfig(solver_backend=self.config.solver)
        )
        if not loaded.hit:
            self.stats.bump("serve.cache.misses")
            if loaded.reason is not None:
                # Present-but-wrong bytes: quarantined by the store, and
                # this request falls back to a fresh compile.
                self.stats.bump("serve.cache.rejected")
            return None
        wire_extra = {
            "mode": "cached",
            "ir": loaded.ir_text,
            "eliminated": loaded.eliminations,
        }
        kind, payload = self._dispatch(frame, "cached", 0, wire_extra=wire_extra)
        if kind != "response" or payload.get("status") != "ok":
            # The hit was sound but its execution dispatch failed (worker
            # death, deadline, ...): never lose the request — fall back
            # to the ordinary optimized path.
            self.stats.bump("serve.cache.dispatch-failures")
            return None
        self.stats.bump("serve.cache.hits")
        payload.update(
            fingerprint=fingerprint,
            attempts=1,
            cache="hit",
            store_fingerprint=store_fp,
        )
        return payload

    def _absorb_store_entry(
        self, payload: Dict[str, Any], store_fp: Optional[str]
    ) -> None:
        """Strip a capture-mode response's store fields and commit the
        captured entry (the supervisor owns the only store handle)."""
        entry_obj = payload.pop("store_entry", None)
        uncacheable = payload.pop("store_uncacheable", None)
        if self.store is None or store_fp is None:
            return
        if entry_obj is None:
            self.stats.bump("serve.cache.uncacheable")
            payload["cache"] = f"miss-unstored: {uncacheable or 'not captured'}"
            return
        from repro.store.entry import EntryError, entry_from_payload

        try:
            entry = entry_from_payload(entry_obj)
            if entry.fingerprint != store_fp:
                raise EntryError("fingerprint", "captured entry key mismatch")
        except EntryError as exc:
            self.stats.bump("serve.cache.bad-entry")
            payload["cache"] = f"miss-unstored: {exc.reason}"
            return
        if self.store.put(entry):
            self.stats.bump("serve.cache.stored")
            payload["cache"] = "miss-stored"
        else:
            self.stats.bump("serve.cache.store-errors")
            payload["cache"] = "miss-unstored: store write failed"

    def _dispatch(
        self,
        frame: Dict[str, Any],
        mode: str,
        attempt: int,
        wire_extra: Optional[Dict[str, Any]] = None,
    ) -> Tuple[str, Any]:
        """One attempt on one worker.

        Returns ``("response", payload)`` for a terminal worker answer
        (``ok`` or ``error``) and ``("failure", detail)`` when the
        attempt must be retried — worker death, deadline, protocol
        violation, or a worker-contained ``failure`` report.
        """
        worker = self._checkout_worker()
        wire = {
            "op": frame["op"],
            "id": frame["id"],
            "source": frame["source"],
            "fn": frame["fn"],
            "args": frame["args"],
            "mode": mode,
            "attempt": attempt,
            "fuel": self.config.fuel,
            "solver": self.config.solver,
        }
        for optional in ("inline", "chaos"):
            if optional in frame:
                wire[optional] = frame[optional]
        if mode == "optimized" and frame.get("_cache_fp"):
            # Store miss in flight: ask the worker to certify + capture.
            wire["cache"] = "capture"
            wire["fingerprint"] = frame["_cache_fp"]
        if wire_extra:
            wire.update(wire_extra)
        # Deadline layering: one effective per-attempt deadline, the
        # minimum of the supervisor default and the request's remaining
        # ``deadline_ms`` budget — never two racing timers.  The same
        # budget rides the wire so the worker caps its own solver effort
        # (and arms ``limits.hard_deadline``) by what the caller will
        # actually wait for.
        timeout = self.config.deadline
        deadline_at = frame.get("_deadline_at")
        if self.config.propagate_deadlines and deadline_at is not None:
            remaining = deadline_at - self._clock()
            if remaining < timeout:
                timeout = max(0.001, remaining)
                wire["deadline_budget"] = round(timeout, 6)
        try:
            worker.send(wire)
            # The read deadline runs on the *real* clock even when the
            # supervisor clock is injected: a hung worker must be killed
            # in real seconds, and a frozen test clock would wait forever.
            response = worker.read_frame(timeout, time.monotonic)
            response = protocol.validate_worker_response(response, frame["id"])
        except WorkerTimeout as exc:
            self.stats.bump("serve.deadline-kills")
            self._replace_worker(self._slot_of(worker))
            self._tick("timeout")
            return ("failure", f"deadline: {exc}")
        except (WorkerDied, protocol.ProtocolError) as exc:
            self._replace_worker(self._slot_of(worker))
            self._tick("failure")
            return ("failure", f"{type(exc).__name__}: {exc}")
        self._tick("response")
        worker.served += 1
        self._maybe_recycle(worker)
        if response["status"] == "failure":
            return ("failure", f"{response.get('reason')}: {response.get('message')}")
        return ("response", response)

    def _tick(self, outcome: str) -> None:
        if self.dispatch_tick is not None:
            self.dispatch_tick(outcome)

    def _backoff(self, attempt: int) -> float:
        """Full-jitter exponential backoff: ``uniform(0, min(cap, base·2ⁿ))``.

        Deterministic backoff means every client of a just-died worker
        retries in the same tick; drawing uniformly from the whole
        interval (the AWS "full jitter" result) de-correlates them at no
        cost in expected delay.  The RNG is the supervisor's seeded
        jitter source, so tests and storms replay the exact draws.
        """
        ceiling = min(
            self.config.backoff_cap,
            self.config.backoff_base * (2 ** (attempt - 1)),
        )
        return self.rng.uniform(0.0, ceiling)

    # ------------------------------------------------------------------
    # Telemetry.
    # ------------------------------------------------------------------

    def status_payload(self, request_id: Any = None) -> Dict[str, Any]:
        payload = {
            "id": request_id,
            "status": "ok",
            "op": "status",
            "counters": dict(sorted(self.stats.counters.items())),
            "breakers": self.breaker.to_json(),
            "open_fingerprints": self.breaker.open_fingerprints(),
            "workers": [
                {"pid": worker.pid, "served": worker.served, "alive": worker.alive()}
                for worker in self.pool
            ],
            "overload": self.overload.snapshot(self._clock()),
        }
        if self.store is not None:
            payload["cache"] = {
                "store": self.store.stats_payload(),
                "invariant_violations": self.store.invariant_violations(),
            }
        return payload

    # ------------------------------------------------------------------
    # Serve loops (stdio and Unix socket).
    # ------------------------------------------------------------------

    def _install_drain_handlers(self):
        """SIGTERM/SIGINT → finish the in-flight request, then drain.

        The handler only *raises* while the loop is blocked reading the
        next client frame; mid-request it just sets the stop flag, so the
        response already being computed is still written back.
        """
        def on_signal(signum, frame):
            self._stop = True
            if self._reading_client:
                raise _DrainRequested()

        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[signum] = signal.signal(signum, on_signal)
            except (ValueError, OSError):  # pragma: no cover - non-main thread
                pass
        return previous

    @staticmethod
    def _restore_handlers(previous) -> None:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass

    def serve_stdio(self, infile=None, outfile=None) -> Dict[str, Any]:
        """NDJSON server over stdin/stdout; returns final telemetry."""
        infile = infile if infile is not None else sys.stdin.buffer
        outfile = outfile if outfile is not None else sys.stdout.buffer
        self.start()
        previous = self._install_drain_handlers()
        try:
            while not self._stop:
                try:
                    self._reading_client = True
                    line = infile.readline()
                finally:
                    self._reading_client = False
                if not line:
                    break  # client EOF: drain
                if not line.strip():
                    continue
                response = self._serve_line(line)
                outfile.write(protocol.encode_frame(response))
                outfile.flush()
        except _DrainRequested:
            pass
        finally:
            self._restore_handlers(previous)
            # Anything still queued is answered, never dropped: the
            # no-lost-request invariant holds through a drain too.
            try:
                for _, shed in self.shed_queued("shutting-down"):
                    outfile.write(protocol.encode_frame(shed))
                outfile.flush()
            except (OSError, ValueError):  # pragma: no cover - client gone
                pass
            self.shutdown()
        return self.status_payload()

    def serve_socket(self, path: str) -> Dict[str, Any]:
        """NDJSON server on a Unix socket (one client at a time)."""
        import socket

        if os.path.exists(path):
            os.unlink(path)
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        server.bind(path)
        server.listen(1)
        self.start()
        previous = self._install_drain_handlers()
        try:
            while not self._stop:
                try:
                    self._reading_client = True
                    conn, _ = server.accept()
                finally:
                    self._reading_client = False
                with conn:
                    reader = conn.makefile("rb")
                    writer = conn.makefile("wb")
                    while not self._stop:
                        try:
                            self._reading_client = True
                            line = reader.readline()
                        finally:
                            self._reading_client = False
                        if not line:
                            break
                        if not line.strip():
                            continue
                        response = self._serve_line(line)
                        writer.write(protocol.encode_frame(response))
                        writer.flush()
                    try:
                        for _, shed in self.shed_queued("shutting-down"):
                            writer.write(protocol.encode_frame(shed))
                        writer.flush()
                    except (OSError, ValueError):  # pragma: no cover
                        pass
        except _DrainRequested:
            pass
        finally:
            self._restore_handlers(previous)
            self.shed_queued("shutting-down")
            self.shutdown()
            server.close()
            if os.path.exists(path):
                os.unlink(path)
        return self.status_payload()

    def _serve_line(self, line: bytes) -> Dict[str, Any]:
        try:
            frame = protocol.decode_frame(line)
        except protocol.ProtocolError as exc:
            self.stats.bump("serve.protocol-errors")
            return protocol.error_response(None, "ProtocolError", str(exc))
        return self.handle_request(frame)
