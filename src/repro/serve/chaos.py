"""The chaos storm: drive the compile service under injected process
faults and verify its two hard guarantees.

For every request in a seeded storm the harness knows the ground truth
*before* the service answers: each template is compiled unoptimized and
executed in the harness process (the same checked-baseline path a
degraded worker runs).  The service may then answer a request in exactly
two acceptable ways:

* **optimized-and-gated** — behaviorally identical outcome (value, trap
  class, and failing check identity all equal to the baseline); or
* **degraded-but-correct** — additionally byte-identical dynamic check
  and instruction counters, because degraded compilation *is* the
  baseline.

A storm fails on any lost request (no response), any incorrect response,
any fatally-faulted request that still claims optimized service, or any
exception escaping the supervisor (supervisor death).  A ``shed``
response is an explicit answer — overload backpressure — and is never
classified as lost.  ``repro storm`` is the CLI entry; the CI
chaos-smoke job runs a 200-request storm at a 10% fault rate with a
fixed seed.

**Time is virtual.** Every storm injects a :class:`VirtualClock` as the
supervisor clock and advances it by a fixed cost per worker dispatch
(:data:`SERVICE_TICK`; a timeout costs the full deadline), so queue
latencies, ladder transitions, and the p50/p95/p99 summaries are pure
functions of the seeded schedule — byte-identical across runs and
machines, which is what lets CI gate on them.  Only the worker *pipe*
deadline stays on the real clock (a hung worker must be killed in real
seconds).

The **burst storm** (``repro storm --burst``) is the overload sibling:
an open-loop seeded arrival schedule at a configured multiple of the
measured service rate, driven through admission control, deadline
expiry, and the degradation ladder, then replayed against an
unbounded-queue baseline (``overload_enabled=False``) under the *same*
schedule to prove the p99 admission-to-response bound.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.robustness.faults import CHAOS_FAULTS, FATAL_CHAOS_FAULTS
from repro.serve.overload import (
    LEVEL_FULL,
    LEVEL_UNOPTIMIZED,
    VirtualClock,
    latency_summary,
)
from repro.serve.supervisor import ServeConfig, Supervisor

#: Virtual seconds one worker dispatch costs in a storm simulation.  The
#: storm's notion of "service time" is this constant, not wall time —
#: that is the whole determinism trick.  A dispatch that *times out*
#: costs the configured deadline instead.
SERVICE_TICK = 0.05

# ----------------------------------------------------------------------
# Request templates.  Each template instantiates to MiniJ source whose
# expected behavior the harness derives by running the checked baseline.
# ----------------------------------------------------------------------


def _template_sum_loop(n: int) -> str:
    """Clean counted loop — fully optimizable, returns a value."""
    return f"""
fn main(): int {{
  let a: int[] = new int[{n}];
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) {{
    a[i] = i;
    s = s + a[i];
  }}
  return s;
}}
"""


def _template_trap(n: int, idx: int) -> str:
    """Reads ``a[idx]`` with ``len(a) == n`` — traps when ``idx >= n``."""
    return f"""
fn main(): int {{
  let a: int[] = new int[{n}];
  let j: int = {idx};
  return a[j];
}}
"""


def _template_off_by_one(n: int) -> str:
    """``i <= len(a)`` loop: the final iteration's check must fire."""
    return f"""
fn main(): int {{
  let a: int[] = new int[{n}];
  let s: int = 0;
  let i: int = 0;
  while (i <= len(a)) {{
    a[i] = i;
    s = s + a[i];
    i = i + 1;
  }}
  return s;
}}
"""


_USER_ERROR_SOURCE = """
fn main(): int {
  let a: int[] = new int[4];
  return a + 1;
}
"""


def _instantiate(rng: random.Random) -> Dict[str, Any]:
    """Draw one request: source plus what class of answer is expected."""
    roll = rng.random()
    if roll < 0.45:
        return {"source": _template_sum_loop(rng.randrange(2, 12)), "expect": "ok"}
    if roll < 0.70:
        n = rng.randrange(2, 8)
        idx = rng.randrange(0, n + 3)  # may or may not trap
        return {"source": _template_trap(n, idx), "expect": "ok"}
    if roll < 0.92:
        return {"source": _template_off_by_one(rng.randrange(2, 8)), "expect": "ok"}
    return {"source": _USER_ERROR_SOURCE, "expect": "error"}


# The fields an optimized answer must reproduce exactly (the gate's
# contract), and the extra fields a degraded answer must also match (the
# degraded compile IS the baseline, counters included).
_OUTCOME_FIELDS = ("value", "trap", "kind", "index", "length", "check_id")
_BASELINE_FIELDS = ("checks", "instructions")


def _baseline(source: str, cache: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Ground truth: the worker's own degraded path, run in-process."""
    from repro.serve import worker as worker_module

    cached = cache.get(source)
    if cached is None:
        cached = cache[source] = worker_module._serve_request(
            {"op": "run", "id": "baseline", "source": source,
             "fn": "main", "args": [], "mode": "degraded"},
            None, False, 0,
        )
    return cached


# ----------------------------------------------------------------------
# Storm driver.
# ----------------------------------------------------------------------


@dataclass
class StormResult:
    """Everything a storm observed, plus its verdict."""

    requests: int
    seed: int
    fault_rate: float
    responses: int = 0
    optimized: int = 0
    degraded: int = 0
    errors: int = 0
    injected_faults: Dict[str, int] = field(default_factory=dict)
    breaker_open_served: int = 0
    violations: List[str] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    breakers: List[Dict[str, Any]] = field(default_factory=list)
    supervisor_alive: bool = True
    #: Overload backpressure answers (explicit responses, never lost).
    shed: int = 0
    #: Virtual admission-to-response latency of every answered request.
    latencies: List[float] = field(default_factory=list)

    @property
    def lost(self) -> int:
        return self.requests - self.responses

    @property
    def passed(self) -> bool:
        return self.supervisor_alive and self.lost == 0 and not self.violations

    def to_json(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "seed": self.seed,
            "fault_rate": self.fault_rate,
            "responses": self.responses,
            "lost": self.lost,
            "optimized": self.optimized,
            "degraded": self.degraded,
            "errors": self.errors,
            "injected_faults": dict(sorted(self.injected_faults.items())),
            "breaker_open_served": self.breaker_open_served,
            "shed": self.shed,
            "latency": latency_summary(self.latencies),
            "violations": self.violations,
            "supervisor_alive": self.supervisor_alive,
            "counters": dict(sorted(self.counters.items())),
            "passed": self.passed,
        }


def storm_config(workers: int = 2, deadline: float = 3.0) -> ServeConfig:
    """A :class:`ServeConfig` tuned for storms: short deadlines and
    backoffs (faults resolve fast), frequent recycling (so the recycle
    path is exercised within one storm), and a cooldown longer than any
    storm (an opened breaker stays observably open)."""
    return ServeConfig(
        workers=workers,
        deadline=deadline,
        mem_mb=512,
        retries=1,
        backoff_base=0.01,
        backoff_cap=0.1,
        recycle_after=25,
        breaker_threshold=3,
        breaker_cooldown=300.0,
        chaos={"rate": 0.0, "seed": 0},  # enables explicit per-request faults
    )


def _virtual_supervisor(config: ServeConfig) -> Tuple[Supervisor, VirtualClock]:
    """A supervisor on simulated time: the storm determinism harness.

    The virtual clock is injected as the supervisor clock *and* sleep
    (backoffs advance simulation time, not wall time), and every worker
    dispatch advances it by :data:`SERVICE_TICK` (a timeout by the full
    deadline) through the ``dispatch_tick`` hook.  ``propagate_deadlines``
    is forced off: a virtual deadline budget armed as a *real* alarm
    would race actual compile time nondeterministically — queue-side
    expiry shedding, which only compares virtual timestamps, stays on.
    """
    config.propagate_deadlines = False
    vclock = VirtualClock()
    supervisor = Supervisor(config=config, clock=vclock.now, sleep=vclock.advance)

    def tick(outcome: str) -> None:
        vclock.advance(config.deadline if outcome == "timeout" else SERVICE_TICK)

    supervisor.dispatch_tick = tick
    return supervisor, vclock


def _plan_requests(
    requests: int, fault_rate: float, seed: int, breaker_block: bool
) -> List[Dict[str, Any]]:
    """The deterministic request schedule for one storm.

    With ``breaker_block`` the schedule opens with one fingerprint hit by
    ``breaker_threshold`` consecutive fatal faults followed by clean
    requests on the same source — the storm can then assert the breaker
    opened and that breaker-open service is degraded with checks intact.
    """
    rng = random.Random(seed)
    plan: List[Dict[str, Any]] = []
    if breaker_block and requests >= 8:
        block_source = _template_sum_loop(9)
        for _ in range(3):
            plan.append(
                {"source": block_source, "expect": "ok", "chaos": "worker-crash"}
            )
        for _ in range(3):
            plan.append({"source": block_source, "expect": "ok"})
    while len(plan) < requests:
        request = _instantiate(rng)
        if rng.random() < fault_rate:
            request["chaos"] = rng.choice(sorted(CHAOS_FAULTS))
        plan.append(request)
    return plan[:requests]


def run_storm(
    requests: int = 200,
    fault_rate: float = 0.1,
    seed: int = 0,
    workers: int = 2,
    deadline: float = 3.0,
    config: Optional[ServeConfig] = None,
    breaker_block: bool = True,
    progress=None,
) -> StormResult:
    """Storm the service and verify every response against ground truth."""
    result = StormResult(requests=requests, seed=seed, fault_rate=fault_rate)
    plan = _plan_requests(requests, fault_rate, seed, breaker_block)
    baseline_cache: Dict[str, Dict[str, Any]] = {}
    if config is None:
        config = storm_config(workers=workers, deadline=deadline)

    supervisor, vclock = _virtual_supervisor(config)
    supervisor.start()
    try:
        for position, request in enumerate(plan):
            frame = {
                "op": "run",
                "id": f"storm-{position}",
                "source": request["source"],
            }
            fault = request.get("chaos")
            if fault:
                frame["chaos"] = fault
                result.injected_faults[fault] = (
                    result.injected_faults.get(fault, 0) + 1
                )
            started = vclock.now()
            try:
                response = supervisor.handle_request(frame)
            except Exception as exc:  # supervisor death — the cardinal sin
                result.supervisor_alive = False
                result.violations.append(
                    f"request {position}: supervisor died: "
                    f"{type(exc).__name__}: {exc}"
                )
                break
            result.responses += 1
            result.latencies.append(round(vclock.now() - started, 6))
            _verify_response(result, position, request, response, baseline_cache)
            if progress is not None:
                progress(position, response)
    finally:
        try:
            supervisor.shutdown()
        except Exception as exc:  # pragma: no cover - drain must not throw
            result.supervisor_alive = False
            result.violations.append(
                f"shutdown: {type(exc).__name__}: {exc}"
            )

    if breaker_block and requests >= 8:
        if not supervisor.stats.counters.get("serve.breaker-opened"):
            result.violations.append(
                "breaker block never opened a circuit breaker"
            )
        if result.breaker_open_served == 0:
            result.violations.append(
                "no request was served through an open breaker"
            )

    result.counters = dict(supervisor.stats.counters)
    result.breakers = supervisor.breaker.to_json()
    return result


def _verify_response(
    result: StormResult,
    position: int,
    request: Dict[str, Any],
    response: Dict[str, Any],
    baseline_cache: Dict[str, Dict[str, Any]],
) -> None:
    def violate(message: str) -> None:
        result.violations.append(f"request {position}: {message}")

    status = response.get("status")
    if status == "shed":
        # Overload backpressure is an explicit, well-formed answer — by
        # contract never a violation and never lost — whatever answer
        # class the request would otherwise have earned.
        result.shed += 1
        if response.get("reason") not in (
            "queue-full", "degrade-level", "deadline-expired", "shutting-down"
        ):
            violate(f"shed response has unknown reason {response.get('reason')!r}")
        if not isinstance(response.get("retry_after"), (int, float)):
            violate("shed response lacks a retry_after hint")
        return
    if request["expect"] == "error":
        if status == "error":
            result.errors += 1
        else:
            violate(f"expected a user error, got status {status!r}")
        return
    if status != "ok":
        violate(
            f"expected ok, got {status!r}: {response.get('message', '')!r}"
        )
        return

    expected = _baseline(request["source"], baseline_cache)
    mode = response.get("mode")
    if mode in ("optimized", "cached"):
        # Cached service carries the optimized contract: the stored IR's
        # every certificate re-replayed before it was pushed to a worker.
        result.optimized += 1
    elif mode == "degraded":
        result.degraded += 1
    else:
        violate(f"response has unknown mode {mode!r}")
        return

    fault = request.get("chaos")
    if fault in FATAL_CHAOS_FAULTS and mode == "optimized":
        violate(f"fatal fault {fault!r} was answered as optimized service")

    for field_name in _OUTCOME_FIELDS:
        if response.get(field_name) != expected.get(field_name):
            violate(
                f"{mode} answer diverges from checked baseline on "
                f"{field_name}: {response.get(field_name)!r} != "
                f"{expected.get(field_name)!r}"
            )
            return
    if mode == "degraded":
        if response.get("degraded_reason") == "breaker-open":
            result.breaker_open_served += 1
        for field_name in _BASELINE_FIELDS:
            if response.get(field_name) != expected.get(field_name):
                violate(
                    f"degraded answer lost checks: {field_name} "
                    f"{response.get(field_name)!r} != "
                    f"{expected.get(field_name)!r}"
                )
                return


# ----------------------------------------------------------------------
# The burst storm: open-loop overload at a multiple of measured capacity.
#
# Phase A calibrates the (virtual) service time on clean requests.
# Phase B pours a seeded open-loop arrival schedule at ``burst_multiple``
# times the measured service rate — with process faults and client
# deadlines in the mix — through admission control and the degradation
# ladder, then polls the drained service back down to level 0.  Phase C
# replays the *same* schedule against an unbounded-queue baseline
# (``overload_enabled=False``) and the verdict compares the two p99
# admission-to-response latencies.  Open-loop is the point: arrivals do
# not slow down because the service is slow, which is exactly the load
# shape that collapses an unbounded queue.
# ----------------------------------------------------------------------


@dataclass
class BurstStormResult:
    """Verdict of one :func:`run_burst_storm`."""

    requests: int
    seed: int
    fault_rate: float
    burst_multiple: float
    min_p99_improvement: float = 5.0
    #: Calibrated virtual service time per request (phase A).
    service_time: float = 0.0
    # Phase B (overload leg).
    responses: int = 0
    optimized: int = 0
    degraded: int = 0
    errors: int = 0
    shed: int = 0
    shed_queue_full: int = 0
    shed_deadline: int = 0
    deadline_attached: int = 0
    injected_faults: Dict[str, int] = field(default_factory=dict)
    max_level: int = 0
    final_level: int = 0
    transitions: int = 0
    queue_depth_peak: int = 0
    queue_capacity: int = 0
    recovery_virtual_seconds: float = 0.0
    overload_latency: Dict[str, Any] = field(default_factory=dict)
    # Phase C (unbounded-queue baseline under the same schedule).
    baseline_responses: int = 0
    baseline_latency: Dict[str, Any] = field(default_factory=dict)
    p99_improvement: float = 0.0
    violations: List[str] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    supervisor_alive: bool = True

    @property
    def lost(self) -> int:
        return self.requests - self.responses

    @property
    def baseline_lost(self) -> int:
        return self.requests - self.baseline_responses

    @property
    def passed(self) -> bool:
        return (
            self.supervisor_alive
            and self.lost == 0
            and self.baseline_lost == 0
            and not self.violations
            and self.shed > 0
            and self.max_level >= LEVEL_UNOPTIMIZED
            and self.final_level == LEVEL_FULL
            and self.p99_improvement >= self.min_p99_improvement
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "seed": self.seed,
            "fault_rate": self.fault_rate,
            "burst_multiple": self.burst_multiple,
            "min_p99_improvement": self.min_p99_improvement,
            "service_time": round(self.service_time, 6),
            "responses": self.responses,
            "lost": self.lost,
            "optimized": self.optimized,
            "degraded": self.degraded,
            "errors": self.errors,
            "shed": self.shed,
            "shed_queue_full": self.shed_queue_full,
            "shed_deadline": self.shed_deadline,
            "deadline_attached": self.deadline_attached,
            "injected_faults": dict(sorted(self.injected_faults.items())),
            "max_level": self.max_level,
            "final_level": self.final_level,
            "transitions": self.transitions,
            "queue_depth_peak": self.queue_depth_peak,
            "queue_capacity": self.queue_capacity,
            "recovery_virtual_seconds": round(self.recovery_virtual_seconds, 6),
            "overload_latency": self.overload_latency,
            "baseline_responses": self.baseline_responses,
            "baseline_lost": self.baseline_lost,
            "baseline_latency": self.baseline_latency,
            "p99_improvement": self.p99_improvement,
            "violations": self.violations,
            "supervisor_alive": self.supervisor_alive,
            "counters": dict(sorted(self.counters.items())),
            "passed": self.passed,
        }


def burst_storm_config(
    workers: int = 2, deadline: float = 3.0, queue_capacity: int = 32
) -> ServeConfig:
    """The overload leg's :class:`ServeConfig`.

    Watermarks are expressed in service ticks so the ladder's geometry
    is invariant under the calibration: level 1 at 4 ticks of queueing,
    level 2 at 20, level 3 at 60 — with ``queue_capacity`` ticks the
    worst admissible wait, a sustained 4× burst provably climbs past
    level 2.  The window is short (2 virtual seconds) so the storm can
    watch full recovery without simulating minutes.
    """
    config = storm_config(workers=workers, deadline=deadline)
    config.queue_capacity = queue_capacity
    config.overload_watermarks = (
        4 * SERVICE_TICK,
        20 * SERVICE_TICK,
        60 * SERVICE_TICK,
    )
    config.overload_window = 2.0
    return config


def _plan_burst(
    requests: int,
    fault_rate: float,
    seed: int,
    mean_interarrival: float,
) -> List[Dict[str, Any]]:
    """The seeded open-loop arrival schedule (due time, frame, oracle)."""
    rng = random.Random(seed ^ 0xB0B5)
    plan: List[Dict[str, Any]] = []
    due = 0.0
    for position in range(requests):
        due += rng.uniform(0.5, 1.5) * mean_interarrival
        request = _instantiate(rng)
        if rng.random() < fault_rate:
            request["chaos"] = rng.choice(sorted(CHAOS_FAULTS))
        if rng.random() < 0.3:
            # A slice of callers with real patience budgets (virtual ms):
            # deep queueing must shed these, not serve them post-mortem.
            request["deadline_ms"] = rng.randrange(200, 2001)
        frame = {
            "op": "run",
            "id": f"burst-{position}",
            "source": request["source"],
        }
        if request.get("chaos"):
            frame["chaos"] = request["chaos"]
        if request.get("deadline_ms"):
            frame["deadline_ms"] = request["deadline_ms"]
        plan.append({"due": round(due, 6), "frame": frame, "request": request})
    return plan


def _drive_open_loop(
    supervisor: Supervisor,
    vclock: VirtualClock,
    plan: List[Dict[str, Any]],
    violations: List[str],
    leg: str,
) -> Tuple[List[Tuple[Dict[str, Any], Dict[str, Any], float]], bool]:
    """Pour the schedule open-loop; returns completions and liveness.

    Arrivals are submitted the moment simulated time reaches their due
    time — timestamped with the *due* time, so queueing that happened
    while the supervisor was busy serving counts against latency — and
    the queue is served one request per iteration.  Every schedule item
    must come back exactly once; duplicates and leftovers are violations.
    """
    completed: List[Tuple[Dict[str, Any], Dict[str, Any], float]] = []
    arrivals: Dict[Any, Dict[str, Any]] = {}

    def finish(request_id: Any, response: Dict[str, Any]) -> None:
        item = arrivals.pop(request_id, None)
        if item is None:
            violations.append(
                f"{leg}: duplicate or unknown response id {request_id!r}"
            )
            return
        latency = round(vclock.now() - item["due"], 6)
        completed.append((item, response, latency))

    index = 0
    try:
        while index < len(plan) or supervisor.pending():
            now = vclock.now()
            while index < len(plan) and plan[index]["due"] <= now:
                item = plan[index]
                index += 1
                frame = dict(item["frame"])
                arrivals[frame["id"]] = item
                immediate = supervisor.submit(frame, arrived_at=item["due"])
                if immediate is not None:
                    finish(frame["id"], immediate)
            if supervisor.pending():
                for frame, response in supervisor.process_one():
                    finish(frame["id"], response)
            elif index < len(plan):
                vclock.advance(plan[index]["due"] - now)
    except Exception as exc:  # supervisor death — the cardinal sin
        violations.append(
            f"{leg}: supervisor died: {type(exc).__name__}: {exc}"
        )
        return completed, False
    for request_id in sorted(arrivals, key=str):
        violations.append(f"{leg}: request {request_id!r} got no response")
    return completed, True


def run_burst_storm(
    requests: int = 500,
    burst_multiple: float = 4.0,
    fault_rate: float = 0.05,
    seed: int = 0,
    workers: int = 2,
    deadline: float = 3.0,
    queue_capacity: int = 32,
    min_p99_improvement: float = 5.0,
    calibration_requests: int = 10,
    progress=None,
) -> BurstStormResult:
    """Overload the service open-loop and prove the brown-out contract:
    zero lost requests, correct non-shed answers, a ladder that climbs
    and fully recovers, and a p99 bounded against the unbounded-queue
    baseline under the identical schedule."""
    result = BurstStormResult(
        requests=requests,
        seed=seed,
        fault_rate=fault_rate,
        burst_multiple=burst_multiple,
        min_p99_improvement=min_p99_improvement,
        queue_capacity=queue_capacity,
    )
    baseline_cache: Dict[str, Dict[str, Any]] = {}

    # Phase A: calibrate the virtual service time on clean requests.
    supervisor, vclock = _virtual_supervisor(
        burst_storm_config(workers, deadline, queue_capacity)
    )
    supervisor.start()
    try:
        started = vclock.now()
        for position in range(max(1, calibration_requests)):
            supervisor.handle_request(
                {
                    "op": "run",
                    "id": f"calibrate-{position}",
                    "source": _template_sum_loop(4 + position % 5),
                }
            )
        result.service_time = (vclock.now() - started) / max(
            1, calibration_requests
        )
    finally:
        supervisor.shutdown()
    if result.service_time <= 0:
        result.violations.append("calibration measured a zero service time")
        return result

    mean_interarrival = result.service_time / max(1.0, burst_multiple)
    plan = _plan_burst(requests, fault_rate, seed, mean_interarrival)
    for item in plan:
        fault = item["request"].get("chaos")
        if fault:
            result.injected_faults[fault] = (
                result.injected_faults.get(fault, 0) + 1
            )
        if item["request"].get("deadline_ms"):
            result.deadline_attached += 1

    # Phase B: the overload leg.
    config = burst_storm_config(workers, deadline, queue_capacity)
    supervisor, vclock = _virtual_supervisor(config)
    supervisor.start()
    latencies: List[float] = []
    try:
        completed, alive = _drive_open_loop(
            supervisor, vclock, plan, result.violations, "overload"
        )
        result.supervisor_alive = alive
        for position, (item, response, latency) in enumerate(completed):
            result.responses += 1
            latencies.append(latency)
            probe = StormResult(requests=0, seed=seed, fault_rate=fault_rate)
            _verify_response(
                probe, position, item["request"], response, baseline_cache
            )
            for violation in probe.violations:
                result.violations.append(f"overload {violation}")
            result.optimized += probe.optimized
            result.degraded += probe.degraded
            result.errors += probe.errors
            result.shed += probe.shed
            if response.get("status") == "shed":
                if response.get("reason") == "queue-full":
                    result.shed_queue_full += 1
                elif response.get("reason") == "deadline-expired":
                    result.shed_deadline += 1
            if progress is not None:
                progress(position, response)
        # Drained: poll the ladder back down to level 0 on elapsed
        # virtual time alone (recovery is window-gated, one step each).
        result.max_level = supervisor.overload.ladder.max_level
        recovery_started = vclock.now()
        polls = 0
        while (
            supervisor.overload.level(vclock.now()) > LEVEL_FULL and polls < 64
        ):
            vclock.advance(config.overload_window / 2)
            polls += 1
        result.final_level = supervisor.overload.level(vclock.now())
        result.recovery_virtual_seconds = vclock.now() - recovery_started
        result.transitions = supervisor.overload.ladder.transitions
        result.queue_depth_peak = supervisor.stats.counters.get(
            "serve.overload.queue-depth_peak", 0
        )
        if result.queue_depth_peak > queue_capacity:
            result.violations.append(
                f"queue depth {result.queue_depth_peak} exceeded the "
                f"{queue_capacity} capacity bound"
            )
        result.counters = dict(supervisor.stats.counters)
    finally:
        try:
            supervisor.shutdown()
        except Exception as exc:  # pragma: no cover - drain must not throw
            result.supervisor_alive = False
            result.violations.append(f"shutdown: {type(exc).__name__}: {exc}")
    result.overload_latency = latency_summary(latencies)
    if not result.supervisor_alive:
        return result

    # Phase C: the unbounded-queue baseline — the same schedule with
    # overload control off (nothing shed, nothing expired, every request
    # queued and served), which is exactly the pre-PR behavior.
    config = burst_storm_config(workers, deadline, queue_capacity)
    config.overload_enabled = False
    baseline, vclock = _virtual_supervisor(config)
    baseline.start()
    baseline_latencies: List[float] = []
    try:
        completed, alive = _drive_open_loop(
            baseline, vclock, plan, result.violations, "baseline"
        )
        result.supervisor_alive = result.supervisor_alive and alive
        for position, (item, response, latency) in enumerate(completed):
            result.baseline_responses += 1
            baseline_latencies.append(latency)
            probe = StormResult(requests=0, seed=seed, fault_rate=fault_rate)
            _verify_response(
                probe, position, item["request"], response, baseline_cache
            )
            for violation in probe.violations:
                result.violations.append(f"baseline {violation}")
            if probe.shed:
                result.violations.append(
                    f"baseline request {position} was shed with overload "
                    "control disabled"
                )
    finally:
        try:
            baseline.shutdown()
        except Exception as exc:  # pragma: no cover
            result.supervisor_alive = False
            result.violations.append(
                f"baseline shutdown: {type(exc).__name__}: {exc}"
            )
    result.baseline_latency = latency_summary(baseline_latencies)

    overload_p99 = result.overload_latency.get("p99", 0.0)
    baseline_p99 = result.baseline_latency.get("p99", 0.0)
    if overload_p99 > 0:
        result.p99_improvement = round(baseline_p99 / overload_p99, 6)
    return result


def format_burst_storm(result: BurstStormResult) -> str:
    overload_p99 = result.overload_latency.get("p99", 0.0)
    baseline_p99 = result.baseline_latency.get("p99", 0.0)
    lines = [
        f"burst storm: {result.requests} request(s) at "
        f"{result.burst_multiple:g}x capacity, seed {result.seed}, "
        f"fault rate {result.fault_rate:.0%}",
        f"  calibrated service time: {result.service_time:.3f}s (virtual)",
        f"  responses: {result.responses}  lost: {result.lost}  "
        f"baseline lost: {result.baseline_lost}",
        f"  optimized: {result.optimized}  degraded: {result.degraded}  "
        f"user-errors: {result.errors}",
        f"  shed: {result.shed} "
        f"(queue-full {result.shed_queue_full}, "
        f"deadline-expired {result.shed_deadline}) of "
        f"{result.deadline_attached} deadline-carrying request(s)",
        f"  ladder: max level {result.max_level}, final level "
        f"{result.final_level}, {result.transitions} transition(s), "
        f"recovered in {result.recovery_virtual_seconds:.1f} virtual s",
        f"  queue depth peak: {result.queue_depth_peak} "
        f"(capacity {result.queue_capacity})",
        f"  p99 admission-to-response: {overload_p99:.3f}s overloaded vs "
        f"{baseline_p99:.3f}s unbounded baseline "
        f"({result.p99_improvement:g}x, floor "
        f"{result.min_p99_improvement:g}x)",
        f"  supervisor alive: {result.supervisor_alive}",
    ]
    if result.violations:
        lines.append(f"  VIOLATIONS ({len(result.violations)}):")
        lines.extend(f"    {violation}" for violation in result.violations)
    else:
        lines.append(
            "  no violations: every request answered exactly once — served "
            "correctly or shed with backpressure"
        )
    lines.append(f"  verdict: {'PASS' if result.passed else 'FAIL'}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# The corruption storm: the chaos storm's disk-durability sibling.
#
# Phase A (cold) storms a cache-enabled service while, between requests,
# a seeded adversary corrupts committed entries at rest (every at-rest
# fault in DISK_FAULTS, forged certificates included), SIGKILLs random
# workers, and restarts the whole supervisor mid-storm with a planted
# half-written temporary (a killed writer).  Every response is verified
# against the checked baseline — a corrupted or forged entry must never
# influence an answer; it must quarantine and fall back to a fresh
# compile.  Phase B restarts the supervisor warm on the surviving store
# and replays the schedule with no faults: hits must be plentiful and,
# sampled per source, byte-identical to a fresh certified compile.
# ----------------------------------------------------------------------


@dataclass
class CorruptionStormResult:
    """Verdict of one :func:`run_corruption_storm`."""

    requests: int
    seed: int
    disk_fault_rate: float
    min_warm_hit_rate: float = 0.5
    # Phase A (cold, faulted).
    responses: int = 0
    stored: int = 0
    cold_hits: int = 0
    injected_disk_faults: Dict[str, int] = field(default_factory=dict)
    worker_kills: int = 0
    supervisor_restarts: int = 0
    recovered_tmp: int = 0
    # Post-phase-A verify: the first pass quarantines what the adversary
    # corrupted but nobody re-requested; the second must find nothing.
    verify_quarantined: int = 0
    verify_rejections: int = 0
    # Phase B (warm, clean).
    warm_requests: int = 0
    warm_responses: int = 0
    warm_hits: int = 0
    byte_identical_checked: int = 0
    invariant_violations: int = 0
    violations: List[str] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    supervisor_alive: bool = True

    @property
    def lost(self) -> int:
        return (self.requests - self.responses) + (
            self.warm_requests - self.warm_responses
        )

    @property
    def warm_hit_rate(self) -> float:
        return self.warm_hits / self.warm_requests if self.warm_requests else 0.0

    @property
    def passed(self) -> bool:
        return (
            self.supervisor_alive
            and self.lost == 0
            and not self.violations
            and self.verify_rejections == 0
            and self.invariant_violations == 0
            and self.warm_hit_rate >= self.min_warm_hit_rate
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "seed": self.seed,
            "disk_fault_rate": self.disk_fault_rate,
            "responses": self.responses,
            "lost": self.lost,
            "stored": self.stored,
            "cold_hits": self.cold_hits,
            "injected_disk_faults": dict(sorted(self.injected_disk_faults.items())),
            "worker_kills": self.worker_kills,
            "supervisor_restarts": self.supervisor_restarts,
            "recovered_tmp": self.recovered_tmp,
            "verify_quarantined": self.verify_quarantined,
            "verify_rejections": self.verify_rejections,
            "warm_requests": self.warm_requests,
            "warm_responses": self.warm_responses,
            "warm_hits": self.warm_hits,
            "warm_hit_rate": round(self.warm_hit_rate, 3),
            "min_warm_hit_rate": self.min_warm_hit_rate,
            "byte_identical_checked": self.byte_identical_checked,
            "invariant_violations": self.invariant_violations,
            "violations": self.violations,
            "supervisor_alive": self.supervisor_alive,
            "counters": dict(sorted(self.counters.items())),
            "passed": self.passed,
        }


def _corruption_pool(seed: int) -> List[Dict[str, Any]]:
    """A small fixed pool of sources so the warm phase can actually hit.

    Every source is deterministic per seed; the trap and off-by-one
    templates keep runtime traps in the mix (a cached entry must
    reproduce the trap identity exactly, not just return values).
    """
    rng = random.Random(seed ^ 0x5EED)
    pool: List[Dict[str, Any]] = []
    for n in sorted(rng.sample(range(3, 14), 5)):
        pool.append({"source": _template_sum_loop(n), "expect": "ok"})
    for _ in range(3):
        n = rng.randrange(2, 8)
        pool.append({"source": _template_trap(n, rng.randrange(0, n + 3)), "expect": "ok"})
    for n in sorted(rng.sample(range(2, 9), 2)):
        pool.append({"source": _template_off_by_one(n), "expect": "ok"})
    pool.append({"source": _USER_ERROR_SOURCE, "expect": "error"})
    return pool


def _corrupt_random_entry(store, rng: random.Random, result: CorruptionStormResult):
    """Apply one random at-rest disk fault to one random committed entry."""
    from repro.robustness.faults import CORRUPTING_DISK_FAULTS, DISK_FAULTS

    fingerprints = list(store.iter_fingerprints())
    if not fingerprints:
        return
    fingerprint = rng.choice(fingerprints)
    name = rng.choice(sorted(CORRUPTING_DISK_FAULTS))
    try:
        DISK_FAULTS[name].corrupt(store.entry_path(fingerprint))
    except Exception:
        # Entry raced away, or an envelope-rewriting fault landed on an
        # entry already mangled by an earlier one — either way the bytes
        # are bad, which is the point.
        return
    result.injected_disk_faults[name] = result.injected_disk_faults.get(name, 0) + 1


def _kill_random_worker(supervisor: Supervisor, rng: random.Random) -> bool:
    """SIGKILL one live worker outright (no shutdown frame, no drain)."""
    live = [w for w in supervisor.pool if w.alive()]
    if not live:
        return False
    try:
        rng.choice(live).proc.kill()
    except OSError:
        return False
    return True


def _fresh_certified_ir(source: str) -> str:
    """Ground truth for byte-identity: a fresh certified compile's final
    IR text, exactly what a passing store load must reproduce."""
    from repro.ir.printer import format_program
    from repro.passes.session import CompilationSession
    from repro.store.service import certifying_config

    session = CompilationSession(config=certifying_config(None))
    program = session.compile(source, standard_opts=True)
    session.optimize(program)
    return format_program(program)


def run_corruption_storm(
    requests: int = 200,
    disk_fault_rate: float = 0.1,
    kill_rate: float = 0.05,
    seed: int = 0,
    workers: int = 2,
    deadline: float = 3.0,
    cache_dir: Optional[str] = None,
    min_warm_hit_rate: float = 0.5,
    byte_identity_samples: int = 4,
    progress=None,
) -> CorruptionStormResult:
    """Storm a cache-enabled service under disk corruption and kills.

    Asserts the store's hard guarantees end to end: zero lost requests,
    zero responses influenced by corrupted or forged entries (every
    response matches the checked baseline), the "no load without a
    passing re-check" invariant, a clean post-storm ``verify``, and a
    warm restart that actually hits with byte-identical optimized IR.
    """
    import tempfile

    from repro.core.abcd import ABCDConfig

    result = CorruptionStormResult(
        requests=requests,
        seed=seed,
        disk_fault_rate=disk_fault_rate,
        min_warm_hit_rate=min_warm_hit_rate,
    )
    if cache_dir is None:
        cache_dir = tempfile.mkdtemp(prefix="repro-corruption-storm-")
    rng = random.Random(seed)
    pool = _corruption_pool(seed)
    plan = [rng.choice(pool) for _ in range(requests)]
    baseline_cache: Dict[str, Dict[str, Any]] = {}

    def storm_serve_config() -> ServeConfig:
        config = storm_config(workers=workers, deadline=deadline)
        config.cache_dir = cache_dir
        config.chaos = None  # disk faults only — process chaos has its own storm
        return config

    def check_response(position: int, request, response, phase: str) -> None:
        probe = StormResult(requests=0, seed=seed, fault_rate=0.0)
        _verify_response(probe, position, request, response, baseline_cache)
        for violation in probe.violations:
            result.violations.append(f"{phase} {violation}")
        cache_tag = response.get("cache")
        if isinstance(cache_tag, str):
            if cache_tag == "hit":
                if phase == "cold":
                    result.cold_hits += 1
                else:
                    result.warm_hits += 1
            elif cache_tag == "miss-stored":
                result.stored += 1

    supervisor = Supervisor(config=storm_serve_config())
    supervisor.start()
    restart_at = requests // 2
    try:
        for position, request in enumerate(plan):
            if position == restart_at and supervisor.store is not None:
                # Mid-storm restart: drain, plant a half-written temp (a
                # writer SIGKILLed mid-put), and come back up — recovery
                # must clean the stray before the next request.
                supervisor.shutdown()
                for name, value in supervisor.stats.counters.items():
                    result.counters[name] = result.counters.get(name, 0) + value
                stray = supervisor.store.tmp_dir / "killed-writer.tmp"
                stray.write_bytes(b'{"fingerprint":"dead')
                supervisor = Supervisor(config=storm_serve_config())
                supervisor.start()
                result.supervisor_restarts += 1
                if supervisor.store is not None:
                    result.recovered_tmp += supervisor.store.counters.get(
                        "store.recovered_tmp", 0
                    )
                    if result.recovered_tmp == 0:
                        result.violations.append(
                            "restart: recovery scan missed the planted temp"
                        )
            if supervisor.store is not None and rng.random() < disk_fault_rate:
                _corrupt_random_entry(supervisor.store, rng, result)
            if rng.random() < kill_rate:
                if _kill_random_worker(supervisor, rng):
                    result.worker_kills += 1
            frame = {
                "op": "run",
                "id": f"corrupt-{position}",
                "source": request["source"],
            }
            try:
                response = supervisor.handle_request(frame)
            except Exception as exc:  # supervisor death — the cardinal sin
                result.supervisor_alive = False
                result.violations.append(
                    f"cold request {position}: supervisor died: "
                    f"{type(exc).__name__}: {exc}"
                )
                break
            result.responses += 1
            check_response(position, request, response, "cold")
            if progress is not None:
                progress(position, response)

        # Post-storm verify: pass 1 quarantines entries the adversary
        # corrupted after their last read; pass 2 must find a clean store.
        if supervisor.store is not None:
            first = supervisor.store.verify_all(ABCDConfig())
            result.verify_quarantined = sum(1 for v in first if not v.ok)
            second = supervisor.store.verify_all(ABCDConfig())
            result.verify_rejections = sum(1 for v in second if not v.ok)
            result.invariant_violations += supervisor.store.invariant_violations()
        for name, value in supervisor.stats.counters.items():
            result.counters[name] = result.counters.get(name, 0) + value
    finally:
        try:
            supervisor.shutdown()
        except Exception as exc:  # pragma: no cover - drain must not throw
            result.supervisor_alive = False
            result.violations.append(f"shutdown: {type(exc).__name__}: {exc}")

    if not result.supervisor_alive:
        return result

    # Phase B: warm restart, no faults — the store must carry its weight.
    warm = Supervisor(config=storm_serve_config())
    warm.start()
    try:
        warm_plan = [rng.choice(pool) for _ in range(max(1, requests // 2))]
        result.warm_requests = len(warm_plan)
        for position, request in enumerate(warm_plan):
            frame = {
                "op": "run",
                "id": f"warm-{position}",
                "source": request["source"],
            }
            try:
                response = warm.handle_request(frame)
            except Exception as exc:
                result.supervisor_alive = False
                result.violations.append(
                    f"warm request {position}: supervisor died: "
                    f"{type(exc).__name__}: {exc}"
                )
                break
            result.warm_responses += 1
            check_response(position, request, response, "warm")
        # Sampled byte-identity: a warm hit's stored IR must equal a fresh
        # certified compile of the same source, byte for byte.
        if warm.store is not None:
            from repro.store.fingerprint import store_fingerprint

            sampled = 0
            for request in pool:
                if sampled >= byte_identity_samples or request["expect"] != "ok":
                    continue
                source = request["source"]
                fingerprint = store_fingerprint(source, ABCDConfig())
                loaded = warm.store.load(fingerprint, ABCDConfig())
                if not loaded.hit:
                    continue
                sampled += 1
                if loaded.ir_text != _fresh_certified_ir(source):
                    result.violations.append(
                        "warm hit IR diverges from fresh certified compile "
                        f"for fingerprint {fingerprint[:12]}"
                    )
            result.byte_identical_checked = sampled
            result.invariant_violations += warm.store.invariant_violations()
        result.counters.update(
            {f"warm.{k}": v for k, v in warm.stats.counters.items()}
        )
    finally:
        try:
            warm.shutdown()
        except Exception as exc:  # pragma: no cover
            result.supervisor_alive = False
            result.violations.append(f"warm shutdown: {type(exc).__name__}: {exc}")
    return result


def format_corruption_storm(result: CorruptionStormResult) -> str:
    lines = [
        f"corruption storm: {result.requests} cold + {result.warm_requests} warm "
        f"request(s), seed {result.seed}, disk fault rate "
        f"{result.disk_fault_rate:.0%}",
        f"  responses: {result.responses + result.warm_responses}  "
        f"lost: {result.lost}",
        f"  stored: {result.stored}  cold hits: {result.cold_hits}  "
        f"warm hits: {result.warm_hits} "
        f"({result.warm_hit_rate:.0%}, floor {result.min_warm_hit_rate:.0%})",
        "  injected disk faults: "
        + (
            ", ".join(
                f"{name} x{count}"
                for name, count in sorted(result.injected_disk_faults.items())
            )
            or "none"
        ),
        f"  worker kills: {result.worker_kills}  supervisor restarts: "
        f"{result.supervisor_restarts}  recovered tmp: {result.recovered_tmp}",
        f"  post-storm verify: {result.verify_quarantined} quarantined, then "
        f"{result.verify_rejections} rejection(s) on the clean pass",
        f"  byte-identical warm loads checked: {result.byte_identical_checked}",
        f"  store invariant violations: {result.invariant_violations}",
        f"  supervisor alive: {result.supervisor_alive}",
    ]
    if result.violations:
        lines.append(f"  VIOLATIONS ({len(result.violations)}):")
        lines.extend(f"    {violation}" for violation in result.violations)
    else:
        lines.append(
            "  no violations: every answer matched the checked baseline and "
            "no load skipped its re-check"
        )
    return "\n".join(lines)


def format_storm(result: StormResult) -> str:
    lines = [
        f"chaos storm: {result.requests} request(s), seed {result.seed}, "
        f"fault rate {result.fault_rate:.0%}",
        f"  responses: {result.responses}  lost: {result.lost}",
        f"  optimized: {result.optimized}  degraded: {result.degraded}  "
        f"user-errors: {result.errors}",
        f"  injected faults: "
        + (
            ", ".join(
                f"{name} x{count}"
                for name, count in sorted(result.injected_faults.items())
            )
            or "none"
        ),
        f"  served through open breaker: {result.breaker_open_served}",
        "  latency (virtual): p50 {p50:.3f}s  p95 {p95:.3f}s  p99 {p99:.3f}s".format(
            **{
                key: latency_summary(result.latencies).get(key, 0.0)
                for key in ("p50", "p95", "p99")
            }
        ),
        f"  supervisor alive: {result.supervisor_alive}",
    ]
    for name in sorted(result.counters):
        if name.startswith("serve."):
            lines.append(f"    {name}: {result.counters[name]}")
    if result.violations:
        lines.append(f"  VIOLATIONS ({len(result.violations)}):")
        lines.extend(f"    {violation}" for violation in result.violations)
    else:
        lines.append("  no violations: every request optimized-and-gated "
                     "or degraded-but-correct")
    return "\n".join(lines)
