"""The chaos storm: drive the compile service under injected process
faults and verify its two hard guarantees.

For every request in a seeded storm the harness knows the ground truth
*before* the service answers: each template is compiled unoptimized and
executed in the harness process (the same checked-baseline path a
degraded worker runs).  The service may then answer a request in exactly
two acceptable ways:

* **optimized-and-gated** — behaviorally identical outcome (value, trap
  class, and failing check identity all equal to the baseline); or
* **degraded-but-correct** — additionally byte-identical dynamic check
  and instruction counters, because degraded compilation *is* the
  baseline.

A storm fails on any lost request (no response), any incorrect response,
any fatally-faulted request that still claims optimized service, or any
exception escaping the supervisor (supervisor death).  ``repro storm``
is the CLI entry; the CI chaos-smoke job runs a 200-request storm at a
10% fault rate with a fixed seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.robustness.faults import CHAOS_FAULTS, FATAL_CHAOS_FAULTS
from repro.serve.supervisor import ServeConfig, Supervisor

# ----------------------------------------------------------------------
# Request templates.  Each template instantiates to MiniJ source whose
# expected behavior the harness derives by running the checked baseline.
# ----------------------------------------------------------------------


def _template_sum_loop(n: int) -> str:
    """Clean counted loop — fully optimizable, returns a value."""
    return f"""
fn main(): int {{
  let a: int[] = new int[{n}];
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) {{
    a[i] = i;
    s = s + a[i];
  }}
  return s;
}}
"""


def _template_trap(n: int, idx: int) -> str:
    """Reads ``a[idx]`` with ``len(a) == n`` — traps when ``idx >= n``."""
    return f"""
fn main(): int {{
  let a: int[] = new int[{n}];
  let j: int = {idx};
  return a[j];
}}
"""


def _template_off_by_one(n: int) -> str:
    """``i <= len(a)`` loop: the final iteration's check must fire."""
    return f"""
fn main(): int {{
  let a: int[] = new int[{n}];
  let s: int = 0;
  let i: int = 0;
  while (i <= len(a)) {{
    a[i] = i;
    s = s + a[i];
    i = i + 1;
  }}
  return s;
}}
"""


_USER_ERROR_SOURCE = """
fn main(): int {
  let a: int[] = new int[4];
  return a + 1;
}
"""


def _instantiate(rng: random.Random) -> Dict[str, Any]:
    """Draw one request: source plus what class of answer is expected."""
    roll = rng.random()
    if roll < 0.45:
        return {"source": _template_sum_loop(rng.randrange(2, 12)), "expect": "ok"}
    if roll < 0.70:
        n = rng.randrange(2, 8)
        idx = rng.randrange(0, n + 3)  # may or may not trap
        return {"source": _template_trap(n, idx), "expect": "ok"}
    if roll < 0.92:
        return {"source": _template_off_by_one(rng.randrange(2, 8)), "expect": "ok"}
    return {"source": _USER_ERROR_SOURCE, "expect": "error"}


# The fields an optimized answer must reproduce exactly (the gate's
# contract), and the extra fields a degraded answer must also match (the
# degraded compile IS the baseline, counters included).
_OUTCOME_FIELDS = ("value", "trap", "kind", "index", "length", "check_id")
_BASELINE_FIELDS = ("checks", "instructions")


def _baseline(source: str, cache: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Ground truth: the worker's own degraded path, run in-process."""
    from repro.serve import worker as worker_module

    cached = cache.get(source)
    if cached is None:
        cached = cache[source] = worker_module._serve_request(
            {"op": "run", "id": "baseline", "source": source,
             "fn": "main", "args": [], "mode": "degraded"},
            None, False, 0,
        )
    return cached


# ----------------------------------------------------------------------
# Storm driver.
# ----------------------------------------------------------------------


@dataclass
class StormResult:
    """Everything a storm observed, plus its verdict."""

    requests: int
    seed: int
    fault_rate: float
    responses: int = 0
    optimized: int = 0
    degraded: int = 0
    errors: int = 0
    injected_faults: Dict[str, int] = field(default_factory=dict)
    breaker_open_served: int = 0
    violations: List[str] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    breakers: List[Dict[str, Any]] = field(default_factory=list)
    supervisor_alive: bool = True

    @property
    def lost(self) -> int:
        return self.requests - self.responses

    @property
    def passed(self) -> bool:
        return self.supervisor_alive and self.lost == 0 and not self.violations

    def to_json(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "seed": self.seed,
            "fault_rate": self.fault_rate,
            "responses": self.responses,
            "lost": self.lost,
            "optimized": self.optimized,
            "degraded": self.degraded,
            "errors": self.errors,
            "injected_faults": dict(sorted(self.injected_faults.items())),
            "breaker_open_served": self.breaker_open_served,
            "violations": self.violations,
            "supervisor_alive": self.supervisor_alive,
            "counters": dict(sorted(self.counters.items())),
            "passed": self.passed,
        }


def storm_config(workers: int = 2, deadline: float = 3.0) -> ServeConfig:
    """A :class:`ServeConfig` tuned for storms: short deadlines and
    backoffs (faults resolve fast), frequent recycling (so the recycle
    path is exercised within one storm), and a cooldown longer than any
    storm (an opened breaker stays observably open)."""
    return ServeConfig(
        workers=workers,
        deadline=deadline,
        mem_mb=512,
        retries=1,
        backoff_base=0.01,
        backoff_cap=0.1,
        recycle_after=25,
        breaker_threshold=3,
        breaker_cooldown=300.0,
        chaos={"rate": 0.0, "seed": 0},  # enables explicit per-request faults
    )


def _plan_requests(
    requests: int, fault_rate: float, seed: int, breaker_block: bool
) -> List[Dict[str, Any]]:
    """The deterministic request schedule for one storm.

    With ``breaker_block`` the schedule opens with one fingerprint hit by
    ``breaker_threshold`` consecutive fatal faults followed by clean
    requests on the same source — the storm can then assert the breaker
    opened and that breaker-open service is degraded with checks intact.
    """
    rng = random.Random(seed)
    plan: List[Dict[str, Any]] = []
    if breaker_block and requests >= 8:
        block_source = _template_sum_loop(9)
        for _ in range(3):
            plan.append(
                {"source": block_source, "expect": "ok", "chaos": "worker-crash"}
            )
        for _ in range(3):
            plan.append({"source": block_source, "expect": "ok"})
    while len(plan) < requests:
        request = _instantiate(rng)
        if rng.random() < fault_rate:
            request["chaos"] = rng.choice(sorted(CHAOS_FAULTS))
        plan.append(request)
    return plan[:requests]


def run_storm(
    requests: int = 200,
    fault_rate: float = 0.1,
    seed: int = 0,
    workers: int = 2,
    deadline: float = 3.0,
    config: Optional[ServeConfig] = None,
    breaker_block: bool = True,
    progress=None,
) -> StormResult:
    """Storm the service and verify every response against ground truth."""
    result = StormResult(requests=requests, seed=seed, fault_rate=fault_rate)
    plan = _plan_requests(requests, fault_rate, seed, breaker_block)
    baseline_cache: Dict[str, Dict[str, Any]] = {}
    if config is None:
        config = storm_config(workers=workers, deadline=deadline)

    supervisor = Supervisor(config=config)
    supervisor.start()
    try:
        for position, request in enumerate(plan):
            frame = {
                "op": "run",
                "id": f"storm-{position}",
                "source": request["source"],
            }
            fault = request.get("chaos")
            if fault:
                frame["chaos"] = fault
                result.injected_faults[fault] = (
                    result.injected_faults.get(fault, 0) + 1
                )
            try:
                response = supervisor.handle_request(frame)
            except Exception as exc:  # supervisor death — the cardinal sin
                result.supervisor_alive = False
                result.violations.append(
                    f"request {position}: supervisor died: "
                    f"{type(exc).__name__}: {exc}"
                )
                break
            result.responses += 1
            _verify_response(result, position, request, response, baseline_cache)
            if progress is not None:
                progress(position, response)
    finally:
        try:
            supervisor.shutdown()
        except Exception as exc:  # pragma: no cover - drain must not throw
            result.supervisor_alive = False
            result.violations.append(
                f"shutdown: {type(exc).__name__}: {exc}"
            )

    if breaker_block and requests >= 8:
        if not supervisor.stats.counters.get("serve.breaker-opened"):
            result.violations.append(
                "breaker block never opened a circuit breaker"
            )
        if result.breaker_open_served == 0:
            result.violations.append(
                "no request was served through an open breaker"
            )

    result.counters = dict(supervisor.stats.counters)
    result.breakers = supervisor.breaker.to_json()
    return result


def _verify_response(
    result: StormResult,
    position: int,
    request: Dict[str, Any],
    response: Dict[str, Any],
    baseline_cache: Dict[str, Dict[str, Any]],
) -> None:
    def violate(message: str) -> None:
        result.violations.append(f"request {position}: {message}")

    status = response.get("status")
    if request["expect"] == "error":
        if status == "error":
            result.errors += 1
        else:
            violate(f"expected a user error, got status {status!r}")
        return
    if status != "ok":
        violate(
            f"expected ok, got {status!r}: {response.get('message', '')!r}"
        )
        return

    expected = _baseline(request["source"], baseline_cache)
    mode = response.get("mode")
    if mode in ("optimized", "cached"):
        # Cached service carries the optimized contract: the stored IR's
        # every certificate re-replayed before it was pushed to a worker.
        result.optimized += 1
    elif mode == "degraded":
        result.degraded += 1
    else:
        violate(f"response has unknown mode {mode!r}")
        return

    fault = request.get("chaos")
    if fault in FATAL_CHAOS_FAULTS and mode == "optimized":
        violate(f"fatal fault {fault!r} was answered as optimized service")

    for field_name in _OUTCOME_FIELDS:
        if response.get(field_name) != expected.get(field_name):
            violate(
                f"{mode} answer diverges from checked baseline on "
                f"{field_name}: {response.get(field_name)!r} != "
                f"{expected.get(field_name)!r}"
            )
            return
    if mode == "degraded":
        if response.get("degraded_reason") == "breaker-open":
            result.breaker_open_served += 1
        for field_name in _BASELINE_FIELDS:
            if response.get(field_name) != expected.get(field_name):
                violate(
                    f"degraded answer lost checks: {field_name} "
                    f"{response.get(field_name)!r} != "
                    f"{expected.get(field_name)!r}"
                )
                return


# ----------------------------------------------------------------------
# The corruption storm: the chaos storm's disk-durability sibling.
#
# Phase A (cold) storms a cache-enabled service while, between requests,
# a seeded adversary corrupts committed entries at rest (every at-rest
# fault in DISK_FAULTS, forged certificates included), SIGKILLs random
# workers, and restarts the whole supervisor mid-storm with a planted
# half-written temporary (a killed writer).  Every response is verified
# against the checked baseline — a corrupted or forged entry must never
# influence an answer; it must quarantine and fall back to a fresh
# compile.  Phase B restarts the supervisor warm on the surviving store
# and replays the schedule with no faults: hits must be plentiful and,
# sampled per source, byte-identical to a fresh certified compile.
# ----------------------------------------------------------------------


@dataclass
class CorruptionStormResult:
    """Verdict of one :func:`run_corruption_storm`."""

    requests: int
    seed: int
    disk_fault_rate: float
    min_warm_hit_rate: float = 0.5
    # Phase A (cold, faulted).
    responses: int = 0
    stored: int = 0
    cold_hits: int = 0
    injected_disk_faults: Dict[str, int] = field(default_factory=dict)
    worker_kills: int = 0
    supervisor_restarts: int = 0
    recovered_tmp: int = 0
    # Post-phase-A verify: the first pass quarantines what the adversary
    # corrupted but nobody re-requested; the second must find nothing.
    verify_quarantined: int = 0
    verify_rejections: int = 0
    # Phase B (warm, clean).
    warm_requests: int = 0
    warm_responses: int = 0
    warm_hits: int = 0
    byte_identical_checked: int = 0
    invariant_violations: int = 0
    violations: List[str] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    supervisor_alive: bool = True

    @property
    def lost(self) -> int:
        return (self.requests - self.responses) + (
            self.warm_requests - self.warm_responses
        )

    @property
    def warm_hit_rate(self) -> float:
        return self.warm_hits / self.warm_requests if self.warm_requests else 0.0

    @property
    def passed(self) -> bool:
        return (
            self.supervisor_alive
            and self.lost == 0
            and not self.violations
            and self.verify_rejections == 0
            and self.invariant_violations == 0
            and self.warm_hit_rate >= self.min_warm_hit_rate
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "seed": self.seed,
            "disk_fault_rate": self.disk_fault_rate,
            "responses": self.responses,
            "lost": self.lost,
            "stored": self.stored,
            "cold_hits": self.cold_hits,
            "injected_disk_faults": dict(sorted(self.injected_disk_faults.items())),
            "worker_kills": self.worker_kills,
            "supervisor_restarts": self.supervisor_restarts,
            "recovered_tmp": self.recovered_tmp,
            "verify_quarantined": self.verify_quarantined,
            "verify_rejections": self.verify_rejections,
            "warm_requests": self.warm_requests,
            "warm_responses": self.warm_responses,
            "warm_hits": self.warm_hits,
            "warm_hit_rate": round(self.warm_hit_rate, 3),
            "min_warm_hit_rate": self.min_warm_hit_rate,
            "byte_identical_checked": self.byte_identical_checked,
            "invariant_violations": self.invariant_violations,
            "violations": self.violations,
            "supervisor_alive": self.supervisor_alive,
            "counters": dict(sorted(self.counters.items())),
            "passed": self.passed,
        }


def _corruption_pool(seed: int) -> List[Dict[str, Any]]:
    """A small fixed pool of sources so the warm phase can actually hit.

    Every source is deterministic per seed; the trap and off-by-one
    templates keep runtime traps in the mix (a cached entry must
    reproduce the trap identity exactly, not just return values).
    """
    rng = random.Random(seed ^ 0x5EED)
    pool: List[Dict[str, Any]] = []
    for n in sorted(rng.sample(range(3, 14), 5)):
        pool.append({"source": _template_sum_loop(n), "expect": "ok"})
    for _ in range(3):
        n = rng.randrange(2, 8)
        pool.append({"source": _template_trap(n, rng.randrange(0, n + 3)), "expect": "ok"})
    for n in sorted(rng.sample(range(2, 9), 2)):
        pool.append({"source": _template_off_by_one(n), "expect": "ok"})
    pool.append({"source": _USER_ERROR_SOURCE, "expect": "error"})
    return pool


def _corrupt_random_entry(store, rng: random.Random, result: CorruptionStormResult):
    """Apply one random at-rest disk fault to one random committed entry."""
    from repro.robustness.faults import CORRUPTING_DISK_FAULTS, DISK_FAULTS

    fingerprints = list(store.iter_fingerprints())
    if not fingerprints:
        return
    fingerprint = rng.choice(fingerprints)
    name = rng.choice(sorted(CORRUPTING_DISK_FAULTS))
    try:
        DISK_FAULTS[name].corrupt(store.entry_path(fingerprint))
    except Exception:
        # Entry raced away, or an envelope-rewriting fault landed on an
        # entry already mangled by an earlier one — either way the bytes
        # are bad, which is the point.
        return
    result.injected_disk_faults[name] = result.injected_disk_faults.get(name, 0) + 1


def _kill_random_worker(supervisor: Supervisor, rng: random.Random) -> bool:
    """SIGKILL one live worker outright (no shutdown frame, no drain)."""
    live = [w for w in supervisor.pool if w.alive()]
    if not live:
        return False
    try:
        rng.choice(live).proc.kill()
    except OSError:
        return False
    return True


def _fresh_certified_ir(source: str) -> str:
    """Ground truth for byte-identity: a fresh certified compile's final
    IR text, exactly what a passing store load must reproduce."""
    from repro.ir.printer import format_program
    from repro.passes.session import CompilationSession
    from repro.store.service import certifying_config

    session = CompilationSession(config=certifying_config(None))
    program = session.compile(source, standard_opts=True)
    session.optimize(program)
    return format_program(program)


def run_corruption_storm(
    requests: int = 200,
    disk_fault_rate: float = 0.1,
    kill_rate: float = 0.05,
    seed: int = 0,
    workers: int = 2,
    deadline: float = 3.0,
    cache_dir: Optional[str] = None,
    min_warm_hit_rate: float = 0.5,
    byte_identity_samples: int = 4,
    progress=None,
) -> CorruptionStormResult:
    """Storm a cache-enabled service under disk corruption and kills.

    Asserts the store's hard guarantees end to end: zero lost requests,
    zero responses influenced by corrupted or forged entries (every
    response matches the checked baseline), the "no load without a
    passing re-check" invariant, a clean post-storm ``verify``, and a
    warm restart that actually hits with byte-identical optimized IR.
    """
    import tempfile

    from repro.core.abcd import ABCDConfig

    result = CorruptionStormResult(
        requests=requests,
        seed=seed,
        disk_fault_rate=disk_fault_rate,
        min_warm_hit_rate=min_warm_hit_rate,
    )
    if cache_dir is None:
        cache_dir = tempfile.mkdtemp(prefix="repro-corruption-storm-")
    rng = random.Random(seed)
    pool = _corruption_pool(seed)
    plan = [rng.choice(pool) for _ in range(requests)]
    baseline_cache: Dict[str, Dict[str, Any]] = {}

    def storm_serve_config() -> ServeConfig:
        config = storm_config(workers=workers, deadline=deadline)
        config.cache_dir = cache_dir
        config.chaos = None  # disk faults only — process chaos has its own storm
        return config

    def check_response(position: int, request, response, phase: str) -> None:
        probe = StormResult(requests=0, seed=seed, fault_rate=0.0)
        _verify_response(probe, position, request, response, baseline_cache)
        for violation in probe.violations:
            result.violations.append(f"{phase} {violation}")
        cache_tag = response.get("cache")
        if isinstance(cache_tag, str):
            if cache_tag == "hit":
                if phase == "cold":
                    result.cold_hits += 1
                else:
                    result.warm_hits += 1
            elif cache_tag == "miss-stored":
                result.stored += 1

    supervisor = Supervisor(config=storm_serve_config())
    supervisor.start()
    restart_at = requests // 2
    try:
        for position, request in enumerate(plan):
            if position == restart_at and supervisor.store is not None:
                # Mid-storm restart: drain, plant a half-written temp (a
                # writer SIGKILLed mid-put), and come back up — recovery
                # must clean the stray before the next request.
                supervisor.shutdown()
                for name, value in supervisor.stats.counters.items():
                    result.counters[name] = result.counters.get(name, 0) + value
                stray = supervisor.store.tmp_dir / "killed-writer.tmp"
                stray.write_bytes(b'{"fingerprint":"dead')
                supervisor = Supervisor(config=storm_serve_config())
                supervisor.start()
                result.supervisor_restarts += 1
                if supervisor.store is not None:
                    result.recovered_tmp += supervisor.store.counters.get(
                        "store.recovered_tmp", 0
                    )
                    if result.recovered_tmp == 0:
                        result.violations.append(
                            "restart: recovery scan missed the planted temp"
                        )
            if supervisor.store is not None and rng.random() < disk_fault_rate:
                _corrupt_random_entry(supervisor.store, rng, result)
            if rng.random() < kill_rate:
                if _kill_random_worker(supervisor, rng):
                    result.worker_kills += 1
            frame = {
                "op": "run",
                "id": f"corrupt-{position}",
                "source": request["source"],
            }
            try:
                response = supervisor.handle_request(frame)
            except Exception as exc:  # supervisor death — the cardinal sin
                result.supervisor_alive = False
                result.violations.append(
                    f"cold request {position}: supervisor died: "
                    f"{type(exc).__name__}: {exc}"
                )
                break
            result.responses += 1
            check_response(position, request, response, "cold")
            if progress is not None:
                progress(position, response)

        # Post-storm verify: pass 1 quarantines entries the adversary
        # corrupted after their last read; pass 2 must find a clean store.
        if supervisor.store is not None:
            first = supervisor.store.verify_all(ABCDConfig())
            result.verify_quarantined = sum(1 for v in first if not v.ok)
            second = supervisor.store.verify_all(ABCDConfig())
            result.verify_rejections = sum(1 for v in second if not v.ok)
            result.invariant_violations += supervisor.store.invariant_violations()
        for name, value in supervisor.stats.counters.items():
            result.counters[name] = result.counters.get(name, 0) + value
    finally:
        try:
            supervisor.shutdown()
        except Exception as exc:  # pragma: no cover - drain must not throw
            result.supervisor_alive = False
            result.violations.append(f"shutdown: {type(exc).__name__}: {exc}")

    if not result.supervisor_alive:
        return result

    # Phase B: warm restart, no faults — the store must carry its weight.
    warm = Supervisor(config=storm_serve_config())
    warm.start()
    try:
        warm_plan = [rng.choice(pool) for _ in range(max(1, requests // 2))]
        result.warm_requests = len(warm_plan)
        for position, request in enumerate(warm_plan):
            frame = {
                "op": "run",
                "id": f"warm-{position}",
                "source": request["source"],
            }
            try:
                response = warm.handle_request(frame)
            except Exception as exc:
                result.supervisor_alive = False
                result.violations.append(
                    f"warm request {position}: supervisor died: "
                    f"{type(exc).__name__}: {exc}"
                )
                break
            result.warm_responses += 1
            check_response(position, request, response, "warm")
        # Sampled byte-identity: a warm hit's stored IR must equal a fresh
        # certified compile of the same source, byte for byte.
        if warm.store is not None:
            from repro.store.fingerprint import store_fingerprint

            sampled = 0
            for request in pool:
                if sampled >= byte_identity_samples or request["expect"] != "ok":
                    continue
                source = request["source"]
                fingerprint = store_fingerprint(source, ABCDConfig())
                loaded = warm.store.load(fingerprint, ABCDConfig())
                if not loaded.hit:
                    continue
                sampled += 1
                if loaded.ir_text != _fresh_certified_ir(source):
                    result.violations.append(
                        "warm hit IR diverges from fresh certified compile "
                        f"for fingerprint {fingerprint[:12]}"
                    )
            result.byte_identical_checked = sampled
            result.invariant_violations += warm.store.invariant_violations()
        result.counters.update(
            {f"warm.{k}": v for k, v in warm.stats.counters.items()}
        )
    finally:
        try:
            warm.shutdown()
        except Exception as exc:  # pragma: no cover
            result.supervisor_alive = False
            result.violations.append(f"warm shutdown: {type(exc).__name__}: {exc}")
    return result


def format_corruption_storm(result: CorruptionStormResult) -> str:
    lines = [
        f"corruption storm: {result.requests} cold + {result.warm_requests} warm "
        f"request(s), seed {result.seed}, disk fault rate "
        f"{result.disk_fault_rate:.0%}",
        f"  responses: {result.responses + result.warm_responses}  "
        f"lost: {result.lost}",
        f"  stored: {result.stored}  cold hits: {result.cold_hits}  "
        f"warm hits: {result.warm_hits} "
        f"({result.warm_hit_rate:.0%}, floor {result.min_warm_hit_rate:.0%})",
        "  injected disk faults: "
        + (
            ", ".join(
                f"{name} x{count}"
                for name, count in sorted(result.injected_disk_faults.items())
            )
            or "none"
        ),
        f"  worker kills: {result.worker_kills}  supervisor restarts: "
        f"{result.supervisor_restarts}  recovered tmp: {result.recovered_tmp}",
        f"  post-storm verify: {result.verify_quarantined} quarantined, then "
        f"{result.verify_rejections} rejection(s) on the clean pass",
        f"  byte-identical warm loads checked: {result.byte_identical_checked}",
        f"  store invariant violations: {result.invariant_violations}",
        f"  supervisor alive: {result.supervisor_alive}",
    ]
    if result.violations:
        lines.append(f"  VIOLATIONS ({len(result.violations)}):")
        lines.extend(f"    {violation}" for violation in result.violations)
    else:
        lines.append(
            "  no violations: every answer matched the checked baseline and "
            "no load skipped its re-check"
        )
    return "\n".join(lines)


def format_storm(result: StormResult) -> str:
    lines = [
        f"chaos storm: {result.requests} request(s), seed {result.seed}, "
        f"fault rate {result.fault_rate:.0%}",
        f"  responses: {result.responses}  lost: {result.lost}",
        f"  optimized: {result.optimized}  degraded: {result.degraded}  "
        f"user-errors: {result.errors}",
        f"  injected faults: "
        + (
            ", ".join(
                f"{name} x{count}"
                for name, count in sorted(result.injected_faults.items())
            )
            or "none"
        ),
        f"  served through open breaker: {result.breaker_open_served}",
        f"  supervisor alive: {result.supervisor_alive}",
    ]
    for name in sorted(result.counters):
        if name.startswith("serve."):
            lines.append(f"    {name}: {result.counters[name]}")
    if result.violations:
        lines.append(f"  VIOLATIONS ({len(result.violations)}):")
        lines.extend(f"    {violation}" for violation in result.violations)
    else:
        lines.append("  no violations: every request optimized-and-gated "
                     "or degraded-but-correct")
    return "\n".join(lines)
