"""The chaos storm: drive the compile service under injected process
faults and verify its two hard guarantees.

For every request in a seeded storm the harness knows the ground truth
*before* the service answers: each template is compiled unoptimized and
executed in the harness process (the same checked-baseline path a
degraded worker runs).  The service may then answer a request in exactly
two acceptable ways:

* **optimized-and-gated** — behaviorally identical outcome (value, trap
  class, and failing check identity all equal to the baseline); or
* **degraded-but-correct** — additionally byte-identical dynamic check
  and instruction counters, because degraded compilation *is* the
  baseline.

A storm fails on any lost request (no response), any incorrect response,
any fatally-faulted request that still claims optimized service, or any
exception escaping the supervisor (supervisor death).  ``repro storm``
is the CLI entry; the CI chaos-smoke job runs a 200-request storm at a
10% fault rate with a fixed seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.robustness.faults import CHAOS_FAULTS, FATAL_CHAOS_FAULTS
from repro.serve.supervisor import ServeConfig, Supervisor

# ----------------------------------------------------------------------
# Request templates.  Each template instantiates to MiniJ source whose
# expected behavior the harness derives by running the checked baseline.
# ----------------------------------------------------------------------


def _template_sum_loop(n: int) -> str:
    """Clean counted loop — fully optimizable, returns a value."""
    return f"""
fn main(): int {{
  let a: int[] = new int[{n}];
  let s: int = 0;
  for (let i: int = 0; i < len(a); i = i + 1) {{
    a[i] = i;
    s = s + a[i];
  }}
  return s;
}}
"""


def _template_trap(n: int, idx: int) -> str:
    """Reads ``a[idx]`` with ``len(a) == n`` — traps when ``idx >= n``."""
    return f"""
fn main(): int {{
  let a: int[] = new int[{n}];
  let j: int = {idx};
  return a[j];
}}
"""


def _template_off_by_one(n: int) -> str:
    """``i <= len(a)`` loop: the final iteration's check must fire."""
    return f"""
fn main(): int {{
  let a: int[] = new int[{n}];
  let s: int = 0;
  let i: int = 0;
  while (i <= len(a)) {{
    a[i] = i;
    s = s + a[i];
    i = i + 1;
  }}
  return s;
}}
"""


_USER_ERROR_SOURCE = """
fn main(): int {
  let a: int[] = new int[4];
  return a + 1;
}
"""


def _instantiate(rng: random.Random) -> Dict[str, Any]:
    """Draw one request: source plus what class of answer is expected."""
    roll = rng.random()
    if roll < 0.45:
        return {"source": _template_sum_loop(rng.randrange(2, 12)), "expect": "ok"}
    if roll < 0.70:
        n = rng.randrange(2, 8)
        idx = rng.randrange(0, n + 3)  # may or may not trap
        return {"source": _template_trap(n, idx), "expect": "ok"}
    if roll < 0.92:
        return {"source": _template_off_by_one(rng.randrange(2, 8)), "expect": "ok"}
    return {"source": _USER_ERROR_SOURCE, "expect": "error"}


# The fields an optimized answer must reproduce exactly (the gate's
# contract), and the extra fields a degraded answer must also match (the
# degraded compile IS the baseline, counters included).
_OUTCOME_FIELDS = ("value", "trap", "kind", "index", "length", "check_id")
_BASELINE_FIELDS = ("checks", "instructions")


def _baseline(source: str, cache: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Ground truth: the worker's own degraded path, run in-process."""
    from repro.serve import worker as worker_module

    cached = cache.get(source)
    if cached is None:
        cached = cache[source] = worker_module._serve_request(
            {"op": "run", "id": "baseline", "source": source,
             "fn": "main", "args": [], "mode": "degraded"},
            None, False, 0,
        )
    return cached


# ----------------------------------------------------------------------
# Storm driver.
# ----------------------------------------------------------------------


@dataclass
class StormResult:
    """Everything a storm observed, plus its verdict."""

    requests: int
    seed: int
    fault_rate: float
    responses: int = 0
    optimized: int = 0
    degraded: int = 0
    errors: int = 0
    injected_faults: Dict[str, int] = field(default_factory=dict)
    breaker_open_served: int = 0
    violations: List[str] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    breakers: List[Dict[str, Any]] = field(default_factory=list)
    supervisor_alive: bool = True

    @property
    def lost(self) -> int:
        return self.requests - self.responses

    @property
    def passed(self) -> bool:
        return self.supervisor_alive and self.lost == 0 and not self.violations

    def to_json(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "seed": self.seed,
            "fault_rate": self.fault_rate,
            "responses": self.responses,
            "lost": self.lost,
            "optimized": self.optimized,
            "degraded": self.degraded,
            "errors": self.errors,
            "injected_faults": dict(sorted(self.injected_faults.items())),
            "breaker_open_served": self.breaker_open_served,
            "violations": self.violations,
            "supervisor_alive": self.supervisor_alive,
            "counters": dict(sorted(self.counters.items())),
            "passed": self.passed,
        }


def storm_config(workers: int = 2, deadline: float = 3.0) -> ServeConfig:
    """A :class:`ServeConfig` tuned for storms: short deadlines and
    backoffs (faults resolve fast), frequent recycling (so the recycle
    path is exercised within one storm), and a cooldown longer than any
    storm (an opened breaker stays observably open)."""
    return ServeConfig(
        workers=workers,
        deadline=deadline,
        mem_mb=512,
        retries=1,
        backoff_base=0.01,
        backoff_cap=0.1,
        recycle_after=25,
        breaker_threshold=3,
        breaker_cooldown=300.0,
        chaos={"rate": 0.0, "seed": 0},  # enables explicit per-request faults
    )


def _plan_requests(
    requests: int, fault_rate: float, seed: int, breaker_block: bool
) -> List[Dict[str, Any]]:
    """The deterministic request schedule for one storm.

    With ``breaker_block`` the schedule opens with one fingerprint hit by
    ``breaker_threshold`` consecutive fatal faults followed by clean
    requests on the same source — the storm can then assert the breaker
    opened and that breaker-open service is degraded with checks intact.
    """
    rng = random.Random(seed)
    plan: List[Dict[str, Any]] = []
    if breaker_block and requests >= 8:
        block_source = _template_sum_loop(9)
        for _ in range(3):
            plan.append(
                {"source": block_source, "expect": "ok", "chaos": "worker-crash"}
            )
        for _ in range(3):
            plan.append({"source": block_source, "expect": "ok"})
    while len(plan) < requests:
        request = _instantiate(rng)
        if rng.random() < fault_rate:
            request["chaos"] = rng.choice(sorted(CHAOS_FAULTS))
        plan.append(request)
    return plan[:requests]


def run_storm(
    requests: int = 200,
    fault_rate: float = 0.1,
    seed: int = 0,
    workers: int = 2,
    deadline: float = 3.0,
    config: Optional[ServeConfig] = None,
    breaker_block: bool = True,
    progress=None,
) -> StormResult:
    """Storm the service and verify every response against ground truth."""
    result = StormResult(requests=requests, seed=seed, fault_rate=fault_rate)
    plan = _plan_requests(requests, fault_rate, seed, breaker_block)
    baseline_cache: Dict[str, Dict[str, Any]] = {}
    if config is None:
        config = storm_config(workers=workers, deadline=deadline)

    supervisor = Supervisor(config=config)
    supervisor.start()
    try:
        for position, request in enumerate(plan):
            frame = {
                "op": "run",
                "id": f"storm-{position}",
                "source": request["source"],
            }
            fault = request.get("chaos")
            if fault:
                frame["chaos"] = fault
                result.injected_faults[fault] = (
                    result.injected_faults.get(fault, 0) + 1
                )
            try:
                response = supervisor.handle_request(frame)
            except Exception as exc:  # supervisor death — the cardinal sin
                result.supervisor_alive = False
                result.violations.append(
                    f"request {position}: supervisor died: "
                    f"{type(exc).__name__}: {exc}"
                )
                break
            result.responses += 1
            _verify_response(result, position, request, response, baseline_cache)
            if progress is not None:
                progress(position, response)
    finally:
        try:
            supervisor.shutdown()
        except Exception as exc:  # pragma: no cover - drain must not throw
            result.supervisor_alive = False
            result.violations.append(
                f"shutdown: {type(exc).__name__}: {exc}"
            )

    if breaker_block and requests >= 8:
        if not supervisor.stats.counters.get("serve.breaker-opened"):
            result.violations.append(
                "breaker block never opened a circuit breaker"
            )
        if result.breaker_open_served == 0:
            result.violations.append(
                "no request was served through an open breaker"
            )

    result.counters = dict(supervisor.stats.counters)
    result.breakers = supervisor.breaker.to_json()
    return result


def _verify_response(
    result: StormResult,
    position: int,
    request: Dict[str, Any],
    response: Dict[str, Any],
    baseline_cache: Dict[str, Dict[str, Any]],
) -> None:
    def violate(message: str) -> None:
        result.violations.append(f"request {position}: {message}")

    status = response.get("status")
    if request["expect"] == "error":
        if status == "error":
            result.errors += 1
        else:
            violate(f"expected a user error, got status {status!r}")
        return
    if status != "ok":
        violate(
            f"expected ok, got {status!r}: {response.get('message', '')!r}"
        )
        return

    expected = _baseline(request["source"], baseline_cache)
    mode = response.get("mode")
    if mode == "optimized":
        result.optimized += 1
    elif mode == "degraded":
        result.degraded += 1
    else:
        violate(f"response has unknown mode {mode!r}")
        return

    fault = request.get("chaos")
    if fault in FATAL_CHAOS_FAULTS and mode == "optimized":
        violate(f"fatal fault {fault!r} was answered as optimized service")

    for field_name in _OUTCOME_FIELDS:
        if response.get(field_name) != expected.get(field_name):
            violate(
                f"{mode} answer diverges from checked baseline on "
                f"{field_name}: {response.get(field_name)!r} != "
                f"{expected.get(field_name)!r}"
            )
            return
    if mode == "degraded":
        if response.get("degraded_reason") == "breaker-open":
            result.breaker_open_served += 1
        for field_name in _BASELINE_FIELDS:
            if response.get(field_name) != expected.get(field_name):
                violate(
                    f"degraded answer lost checks: {field_name} "
                    f"{response.get(field_name)!r} != "
                    f"{expected.get(field_name)!r}"
                )
                return


def format_storm(result: StormResult) -> str:
    lines = [
        f"chaos storm: {result.requests} request(s), seed {result.seed}, "
        f"fault rate {result.fault_rate:.0%}",
        f"  responses: {result.responses}  lost: {result.lost}",
        f"  optimized: {result.optimized}  degraded: {result.degraded}  "
        f"user-errors: {result.errors}",
        f"  injected faults: "
        + (
            ", ".join(
                f"{name} x{count}"
                for name, count in sorted(result.injected_faults.items())
            )
            or "none"
        ),
        f"  served through open breaker: {result.breaker_open_served}",
        f"  supervisor alive: {result.supervisor_alive}",
    ]
    for name in sorted(result.counters):
        if name.startswith("serve."):
            lines.append(f"    {name}: {result.counters[name]}")
    if result.violations:
        lines.append(f"  VIOLATIONS ({len(result.violations)}):")
        lines.extend(f"    {violation}" for violation in result.violations)
    else:
        lines.append("  no violations: every request optimized-and-gated "
                     "or degraded-but-correct")
    return "\n".join(lines)
