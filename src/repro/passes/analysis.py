"""The analysis cache: compute dominance/liveness/loops/GVN once, share
them across passes, and invalidate only what a pass declares dirty.

Before this layer every consumer recomputed its analyses from scratch
(``ssa/construct.py``, ``opt/gvn.py``, ``core/pre.py``,
``baselines/loop_versioning.py`` each called into ``repro.analysis``
independently).  The :class:`AnalysisManager` centralizes that: passes
declare what they *require* and what they *preserve*, the manager serves
cached results and drops only the entries a transformation may have
invalidated.

In ``debug`` mode the manager additionally recomputes every surviving
cached analysis after each pass and compares structural fingerprints —
a pass that mutates the CFG while falsely declaring ``preserves=
("domtree",)`` is caught immediately with an
:class:`~repro.errors.AnalysisInvalidationError` instead of surfacing
later as an inexplicable miscompile.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.analysis.dominance import DominatorTree, dominance_frontiers
from repro.analysis.liveness import compute_liveness
from repro.analysis.loops import find_natural_loops
from repro.errors import AnalysisInvalidationError
from repro.ir.function import Function


@dataclass(frozen=True)
class AnalysisSpec:
    """One registered function analysis.

    ``compute(fn, get)`` builds the result; ``get(name)`` resolves a
    dependency analysis for the same function (through the cache when
    called by the manager, freshly when called by the debug checker).
    ``fingerprint`` maps a result to a hashable structural summary used
    by the debug recompute-and-compare check; it must be insensitive to
    incidental identity (object ids, arbitrary class numbers).
    """

    name: str
    compute: Callable[[Function, Callable[[str], Any]], Any]
    fingerprint: Callable[[Any], Any]
    depends: Tuple[str, ...] = ()


def _domtree_fingerprint(domtree: DominatorTree) -> Any:
    return tuple(sorted(domtree.idom.items(), key=lambda item: item[0]))


def _frontiers_fingerprint(frontiers) -> Any:
    return tuple(
        (label, tuple(sorted(members))) for label, members in sorted(frontiers.items())
    )


def _liveness_fingerprint(info) -> Any:
    return tuple(
        (
            label,
            tuple(sorted(info.live_in.get(label, ()))),
            tuple(sorted(info.live_out.get(label, ()))),
        )
        for label in sorted(info.live_in)
    )


def _loops_fingerprint(loops) -> Any:
    return tuple(
        sorted(
            (loop.header, tuple(sorted(loop.body)), tuple(sorted(loop.back_edges)))
            for loop in loops
        )
    )


def _gvn_fingerprint(numbering) -> Any:
    # Class numbers are arbitrary; the observable result is the partition.
    groups: Dict[int, list] = {}
    for name, number in numbering.class_of.items():
        groups.setdefault(number, []).append(name)
    return tuple(sorted(tuple(sorted(group)) for group in groups.values()))


def _compute_gvn(fn: Function, get):
    from repro.opt.gvn import value_number

    return value_number(fn, domtree=get("domtree"))


def _compute_uses(fn: Function, get):
    # The function's live def-use index (built lazily, maintained by the
    # Function mutator API).  Serving it through the cache gives it the
    # same declared-preservation contract as every other analysis: a pass
    # that rebuilds or invalidates the index without saying so is caught
    # by the debug fingerprint comparison below, and the deeper
    # rebuild-and-compare check (`ir.verifier.verify_def_use`) runs after
    # every pass in debug mode.
    return fn.def_use()


def _uses_fingerprint(chains) -> Any:
    # Identity-free summary: per-name def and use-occurrence counts.
    return tuple(
        sorted(
            (name, len(info.defs), len(info.uses))
            for name, info in chains.values.items()
            if info.defs or info.uses
        )
    )


#: The built-in analyses, in dependency order (dependencies first).
ANALYSES: Dict[str, AnalysisSpec] = {
    spec.name: spec
    for spec in [
        AnalysisSpec(
            "domtree",
            lambda fn, get: DominatorTree.compute(fn),
            _domtree_fingerprint,
        ),
        AnalysisSpec(
            "frontiers",
            lambda fn, get: dominance_frontiers(fn, get("domtree")),
            _frontiers_fingerprint,
            depends=("domtree",),
        ),
        AnalysisSpec(
            "liveness",
            lambda fn, get: compute_liveness(fn),
            _liveness_fingerprint,
        ),
        AnalysisSpec(
            "loops",
            lambda fn, get: find_natural_loops(fn, get("domtree")),
            _loops_fingerprint,
            depends=("domtree",),
        ),
        AnalysisSpec(
            "gvn",
            _compute_gvn,
            _gvn_fingerprint,
            depends=("domtree",),
        ),
        AnalysisSpec(
            "uses",
            _compute_uses,
            _uses_fingerprint,
        ),
    ]
}


@dataclass
class _CacheEntry:
    #: Strong reference so ``id(fn)`` cache keys can never be recycled by
    #: a different Function object while the entry is alive.
    fn: Function
    result: Any


class AnalysisManager:
    """Per-function analysis cache with declared invalidation.

    Results are keyed by function identity; a function mutated by a pass
    keeps only the analyses the pass declared it preserves (see
    :meth:`retain_only`).  Hit/miss counters feed :class:`SessionStats`
    and the cache-effectiveness tests.
    """

    def __init__(self, debug: bool = False) -> None:
        self.debug = debug
        self._cache: Dict[Tuple[int, str], _CacheEntry] = {}
        self.hits: Dict[str, int] = {}
        self.misses: Dict[str, int] = {}
        #: Compute time per analysis name (misses only), in seconds.
        self.seconds: Dict[str, float] = {}
        self._misses_by_fn: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # Lookup.
    # ------------------------------------------------------------------

    def get(self, name: str, fn: Function) -> Any:
        """The ``name`` analysis of ``fn``, computed at most once between
        invalidations."""
        spec = ANALYSES[name]
        key = (id(fn), name)
        entry = self._cache.get(key)
        if entry is not None:
            self.hits[name] = self.hits.get(name, 0) + 1
            return entry.result
        self.misses[name] = self.misses.get(name, 0) + 1
        fn_key = (fn.name, name)
        self._misses_by_fn[fn_key] = self._misses_by_fn.get(fn_key, 0) + 1
        started = time.perf_counter()
        result = spec.compute(fn, lambda dep: self.get(dep, fn))
        self.seconds[name] = (
            self.seconds.get(name, 0.0) + time.perf_counter() - started
        )
        self._cache[key] = _CacheEntry(fn, result)
        return result

    def cached(self, name: str, fn: Function) -> Optional[Any]:
        """The cached result, or ``None`` — never computes."""
        entry = self._cache.get((id(fn), name))
        return entry.result if entry is not None else None

    # ------------------------------------------------------------------
    # Invalidation.
    # ------------------------------------------------------------------

    def invalidate(self, fn: Function, names: Optional[Sequence[str]] = None) -> None:
        """Drop the named analyses of ``fn`` (all of them by default)."""
        for name in names if names is not None else list(ANALYSES):
            self._cache.pop((id(fn), name), None)

    def retain_only(self, fn: Function, preserves: Sequence[str]) -> None:
        """Keep only the analyses a pass declared it preserves."""
        keep = set(preserves)
        self.invalidate(fn, [name for name in ANALYSES if name not in keep])

    def invalidate_all(self) -> None:
        self._cache.clear()

    # ------------------------------------------------------------------
    # Telemetry.
    # ------------------------------------------------------------------

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())

    def misses_for(self, fn_name: str, analysis: str) -> int:
        """How many times ``analysis`` was computed for functions named
        ``fn_name`` (clones of one function share the name)."""
        return self._misses_by_fn.get((fn_name, analysis), 0)

    def stats(self) -> Dict[str, Dict[str, float]]:
        return {
            "hits": dict(self.hits),
            "misses": dict(self.misses),
            "seconds": dict(self.seconds),
        }

    # ------------------------------------------------------------------
    # Debug recompute-and-compare.
    # ------------------------------------------------------------------

    def verify_preserved(self, fn: Function, pass_name: str) -> None:
        """Recompute every still-cached analysis of ``fn`` and compare its
        fingerprint against the cache (debug mode).

        A mismatch means ``pass_name`` mutated something it declared
        preserved; the stale entry is dropped and
        :class:`AnalysisInvalidationError` is raised.
        """
        fresh: Dict[str, Any] = {}

        def fresh_get(name: str) -> Any:
            if name not in fresh:
                fresh[name] = ANALYSES[name].compute(fn, fresh_get)
            return fresh[name]

        # Registry insertion order has dependencies first.
        for name, spec in ANALYSES.items():
            entry = self._cache.get((id(fn), name))
            if entry is None:
                continue
            recomputed = fresh_get(name)
            if spec.fingerprint(recomputed) != spec.fingerprint(entry.result):
                self.invalidate(fn, [name])
                raise AnalysisInvalidationError(
                    f"pass {pass_name!r} declared it preserves {name!r} for "
                    f"{fn.name!r}, but a recompute disagrees with the cache"
                )
