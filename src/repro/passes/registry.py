"""The unified pass registry: every transformation as a declared Pass.

This is the single source of truth for pass order and invalidation
semantics.  ``pipeline.compile_source``/``abcd``, the ``guarded_*``
helpers, the CLI, and the bench harness all build their pipelines from
these definitions — there is no second hand-rolled pass sequence
anywhere.

Invalidation declarations, in brief:

* ``essa`` splits critical edges (a CFG change) but finishes by
  recomputing dominance on the final CFG through the analysis manager, so
  the CFG-shape analyses it leaves cached are exactly the ones it
  preserves; SSA renaming invalidates name-sensitive analyses (liveness,
  GVN).
* ``constant-folding`` can fold a constant branch and prune unreachable
  blocks — it preserves nothing.
* ``copy-propagation`` and ``dce`` rewrite/remove straight-line
  instructions only: CFG-shape analyses survive, name/value-sensitive
  ones do not.
* ``abcd`` is a pure analysis (``mutates=False``); ``pre`` appends
  compensating checks without touching the CFG; ``check-removal`` deletes
  check instructions without touching the CFG.

Transformation functions are looked up through their defining modules at
call time (``opt.propagate_copies``, not a captured reference) so the
fault-injection harness — and monkeypatching tests — keep working against
the module bindings.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.abcd import ABCDConfig
from repro.ir.function import Function
from repro.passes.manager import FixpointGroup, Pass, PassContext

#: Analyses that only depend on the CFG's shape, not on instruction
#: contents or variable names.
_CFG_SHAPE = ("domtree", "frontiers", "loops")


class InlinePass(Pass):
    """Bounded function inlining (whole-program, before e-SSA)."""

    name = "inline"
    scope = "program"
    preserves = ()

    def run(self, fn: Optional[Function], ctx: PassContext) -> int:
        from repro.opt.inline import inline_program

        assert ctx.program is not None
        return inline_program(ctx.program)


class EssaConstructionPass(Pass):
    """π insertion + pruned SSA renaming (paper Section 3)."""

    name = "essa"
    preserves = _CFG_SHAPE
    # Whole-program verification runs at the end of compilation; a second
    # per-function verify here would double the cost for nothing.
    verify = False

    def should_run(self, fn: Function, ctx: PassContext) -> bool:
        return fn.ssa_form == "none"

    def run(self, fn: Function, ctx: PassContext) -> None:
        from repro.ssa.essa import construct_essa

        construct_essa(fn, analysis=ctx.analysis)
        return None


class _StandardOptPass(Pass):
    """Shared shape of the standard-suite members (run inside the
    ``standard-pipeline`` fixpoint group, which owns snapshot/verify)."""

    snapshot = False
    verify = False
    #: Name of the transform attribute on ``repro.opt`` (call-time lookup).
    opt_attr = ""

    def should_run(self, fn: Function, ctx: PassContext) -> bool:
        # The suite assumes single-assignment form; a function whose e-SSA
        # construction was rolled back stays untouched.
        return fn.ssa_form != "none"

    def run(self, fn: Function, ctx: PassContext) -> int:
        import repro.opt as opt

        return getattr(opt, self.opt_attr)(fn)


class CopyPropagationPass(_StandardOptPass):
    name = "copy-propagation"
    preserves = _CFG_SHAPE
    opt_attr = "propagate_copies"


class ConstantFoldingPass(_StandardOptPass):
    name = "constant-folding"
    preserves = ()  # may fold branches and drop unreachable blocks
    opt_attr = "fold_constants"


class DeadCodeEliminationPass(_StandardOptPass):
    name = "dce"
    preserves = _CFG_SHAPE
    opt_attr = "eliminate_dead_code"


class StandardPipelinePass(Pass):
    """Copy-prop + const-fold + DCE fused into one sparse worklist.

    Replaces the ``FixpointGroup`` whole-function re-scan loop in the
    default pipeline: the worklist (:mod:`repro.opt.worklist`) seeds every
    instruction once and then revisits only transitively affected
    users/defs through the function's def-use chains, reaching the same
    fixpoint in a single invocation.  Keeps the group's registry name so
    pipeline shapes (and their tests) are unchanged.

    Declares ``uses`` preserved: all mutation goes through the
    chain-maintaining ``Function`` mutator API, which debug mode verifies
    with a rebuild-and-compare after every run.  CFG-shape analyses are
    not preserved (a folded branch prunes blocks, as before).
    """

    name = "standard-pipeline"
    preserves = ("uses",)

    def should_run(self, fn: Function, ctx: PassContext) -> bool:
        # The suite assumes single-assignment form; a function whose e-SSA
        # construction was rolled back stays untouched.
        return fn.ssa_form != "none"

    def run(self, fn: Function, ctx: PassContext) -> int:
        import repro.opt as opt

        result = opt.optimize_worklist(fn)
        ctx.stats.count_worklist(
            self.name, result.instructions_visited, result.worklist_revisits
        )
        return result.changes


class AbcdAnalysisPass(Pass):
    """The demand-driven proofs (paper Figure 2) — analysis only.

    Builds the inequality graphs, proves each check, and stashes the
    resulting :class:`~repro.core.abcd.AbcdState` in the context for the
    ``pre`` and ``check-removal`` passes.  Nothing is mutated, so a crash
    here needs no rollback — the guard records the failure and the
    downstream passes simply find no state to act on.
    """

    name = "abcd"
    mutates = False
    snapshot = False
    verify = False

    def run(self, fn: Function, ctx: PassContext) -> None:
        from repro.core import abcd as abcd_module

        config = ctx.config or ABCDConfig()
        state = abcd_module.analyze_checks(
            fn, ctx.program, config, analysis=ctx.analysis, stats=ctx.stats
        )
        ctx.state[("abcd", id(fn))] = state
        return None


class PreInsertionPass(Pass):
    """Section-6 PRE of partially redundant checks.

    Self-guarded: each insertion attempt is individually rolled back on
    failure inside :func:`repro.core.abcd._guarded_pre` (the failure lands
    in ``ctx.report.pass_failures`` as pass ``"pre"``), so the manager
    adds no snapshot/verify of its own.
    """

    name = "pre"
    snapshot = False
    verify = False
    preserves = _CFG_SHAPE  # appends instructions; never touches the CFG

    def should_run(self, fn: Function, ctx: PassContext) -> bool:
        state = ctx.state.get(("abcd", id(fn)))
        return (
            state is not None
            and ctx.config is not None
            and ctx.config.pre
            and ctx.profile is not None
            and bool(state.pre_candidates)
        )

    def run(self, fn: Function, ctx: PassContext) -> int:
        from repro.core import abcd as abcd_module

        state = ctx.state[("abcd", id(fn))]
        return abcd_module.apply_pre(
            fn,
            ctx.program,
            state,
            ctx.config,
            ctx.profile,
            ctx.report,
            analysis=ctx.analysis,
        )


class CertifyPass(Pass):
    """Replay every pending elimination's proof witness through the
    independent checker (``repro.certify``) before any check is removed.

    Rejections climb the revocation ladder inside
    :func:`repro.certify.driver.certify_state`: the elimination is revoked
    (the site leaves ``state.to_remove``; a PRE transformation is undone),
    repeated rejections quarantine the function, and strict mode raises
    :class:`~repro.errors.CertificateError`.  Only revocations of PRE
    transformations mutate the IR, so the manager's snapshot/verify
    protocol guards exactly that case.
    """

    name = "certify"
    preserves = _CFG_SHAPE  # removes appended straight-line instrs only

    def should_run(self, fn: Function, ctx: PassContext) -> bool:
        return (
            ctx.config is not None
            and getattr(ctx.config, "certify", False)
            and ("abcd", id(fn)) in ctx.state
        )

    def run(self, fn: Function, ctx: PassContext) -> int:
        from repro.certify.driver import certify_state

        state = ctx.state[("abcd", id(fn))]
        verdicts = certify_state(fn, state, ctx.config, ctx.report)
        rejected = sum(1 for v in verdicts if v.status == "rejected")
        if ctx.stats is not None:
            ctx.stats.count_certificates(verdicts)
        return rejected


class StoreCapturePass(Pass):
    """Snapshot one function for the persistent certificate store.

    Scheduled by ``CompilationSession.optimize`` (never part of the
    default pipeline — pipeline fingerprints must not depend on whether a
    cache is attached) between ``certify`` and ``check-removal``: the
    window where PRE has run, every surviving elimination carries an
    accepted certificate, and the checks are still in the IR — exactly
    the form certificate replay needs at load time.  Pure observation;
    nothing is mutated.
    """

    name = "store-capture"
    mutates = False
    snapshot = False
    verify = False

    def should_run(self, fn: Function, ctx: PassContext) -> bool:
        return ctx.store_capture is not None and ("abcd", id(fn)) in ctx.state

    def run(self, fn: Function, ctx: PassContext) -> None:
        ctx.store_capture.add_function(fn, ctx.state[("abcd", id(fn))])
        return None


class CheckRemovalPass(Pass):
    """Delete the checks the analysis proved redundant and publish the
    per-check records into the context's report.

    Verification happens *inside* the run, before publishing: if removal
    left malformed IR, the manager rolls the function back and the records
    are never published — the report stays consistent with the IR.
    """

    name = "check-removal"
    verify = False  # verified in run(), before the records are published
    preserves = _CFG_SHAPE  # removes straight-line instructions only

    def should_run(self, fn: Function, ctx: PassContext) -> bool:
        return ("abcd", id(fn)) in ctx.state

    def run(self, fn: Function, ctx: PassContext) -> int:
        from repro.core import abcd as abcd_module
        from repro.ir.verifier import verify_function

        state = ctx.state.pop(("abcd", id(fn)))
        removed = abcd_module.remove_checks(fn, state)
        verify_function(fn)
        ctx.report.analyses.extend(state.analyses)
        return removed


# ----------------------------------------------------------------------
# Registry and default pipelines.
# ----------------------------------------------------------------------

#: Every registered pass by name (instances are stateless).
PASS_REGISTRY: Dict[str, Pass] = {
    p.name: p
    for p in [
        InlinePass(),
        EssaConstructionPass(),
        CopyPropagationPass(),
        ConstantFoldingPass(),
        DeadCodeEliminationPass(),
        StandardPipelinePass(),
        AbcdAnalysisPass(),
        PreInsertionPass(),
        CertifyPass(),
        StoreCapturePass(),
        CheckRemovalPass(),
    ]
}


def standard_opt_group(max_rounds: int = 4) -> FixpointGroup:
    """The legacy Jalapeño pre-pass suite as a bounded fixpoint group.

    Kept for ablation and as the dense baseline the worklist pass is
    measured against (``repro.opt.worklist``); the default pipeline now
    runs :class:`StandardPipelinePass` instead.
    """
    return FixpointGroup(
        "standard-pipeline",
        [
            PASS_REGISTRY["copy-propagation"],
            PASS_REGISTRY["constant-folding"],
            PASS_REGISTRY["dce"],
        ],
        max_rounds=max_rounds,
    )


def default_compile_passes(
    standard_opts: bool = True,
    inline: bool = False,
    max_rounds: int = 4,
) -> List:
    """The pass list ``compile_source`` runs after lowering.

    ``max_rounds`` is accepted for signature compatibility with the old
    fixpoint-group pipeline; the worklist pass iterates to quiescence in
    a single invocation and does not use it.
    """
    passes: List = []
    if inline:
        passes.append(PASS_REGISTRY["inline"])
    passes.append(PASS_REGISTRY["essa"])
    if standard_opts:
        passes.append(PASS_REGISTRY["standard-pipeline"])
    return passes


def default_optimize_passes() -> List[Pass]:
    """The pass list ``abcd``/``guarded_optimize_program`` run."""
    return [
        PASS_REGISTRY["abcd"],
        PASS_REGISTRY["pre"],
        PASS_REGISTRY["certify"],
        PASS_REGISTRY["check-removal"],
    ]
