"""The pass-manager layer: sessions, the analysis cache, and the registry.

See ``DESIGN.md`` §8 for the architecture.  Entry points:

* :class:`CompilationSession` — one compilation's cache + guard + stats;
* :class:`PassManager` / :class:`PassContext` — the uniform driver;
* :class:`AnalysisManager` — cached dominance/liveness/loops/GVN;
* :data:`PASS_REGISTRY` and the ``default_*_passes`` builders.
"""

from repro.passes.analysis import ANALYSES, AnalysisManager, AnalysisSpec
from repro.passes.manager import (
    FixpointGroup,
    Pass,
    PassContext,
    PassManager,
    PassStats,
    SessionStats,
)
from repro.passes.registry import (
    PASS_REGISTRY,
    default_compile_passes,
    default_optimize_passes,
    standard_opt_group,
)
from repro.passes.session import CompilationSession

__all__ = [
    "ANALYSES",
    "AnalysisManager",
    "AnalysisSpec",
    "CompilationSession",
    "FixpointGroup",
    "Pass",
    "PassContext",
    "PassManager",
    "PassStats",
    "SessionStats",
    "PASS_REGISTRY",
    "default_compile_passes",
    "default_optimize_passes",
    "standard_opt_group",
]
