"""One compilation, one session: the object that owns the pass pipeline.

A :class:`CompilationSession` bundles the pieces every driver used to wire
up by hand — an :class:`~repro.passes.analysis.AnalysisManager` (shared
analysis cache), a :class:`~repro.robustness.guard.PassGuard` (failure
containment), and a :class:`~repro.passes.manager.SessionStats` (per-pass
telemetry) — and runs the registered default pipelines through one
:class:`~repro.passes.manager.PassManager`.

Typical use::

    session = CompilationSession()
    program = session.compile(source)
    profile = pipeline.profile(program, "main")
    report = session.optimize(program, profile=profile)
    print(session.stats.format_table())

``pipeline.compile_source``/``abcd``, the ``guarded_*`` helpers, the CLI,
and the bench harness are all thin wrappers over this class.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.abcd import ABCDConfig, ABCDReport
from repro.frontend.parser import parse_source
from repro.frontend.semantic import check_program
from repro.ir.function import Program
from repro.ir.lowering import lower_program
from repro.ir.verifier import verify_program
from repro.passes.analysis import AnalysisManager
from repro.passes.manager import PassContext, PassManager, SessionStats
from repro.passes.registry import default_compile_passes, default_optimize_passes
from repro.robustness.guard import PassGuard
from repro.runtime.profiler import Profile


class CompilationSession:
    """Owns the analysis cache, guard, and stats of one compilation.

    ``strict=True`` escalates contained pass failures into
    :class:`~repro.errors.PassGuardError`; ``debug=True`` turns on the
    analysis manager's recompute-and-compare check of every pass's
    ``preserves`` declaration.
    """

    def __init__(
        self,
        config: Optional[ABCDConfig] = None,
        guard: Optional[PassGuard] = None,
        strict: bool = False,
        debug: bool = False,
    ) -> None:
        self.config = config if config is not None else ABCDConfig()
        if strict:
            self.config.strict = True
        self.guard = (
            guard if guard is not None else PassGuard(strict=self.config.strict)
        )
        self.analysis = AnalysisManager(debug=debug)
        self.stats = SessionStats(self.analysis)

    # ------------------------------------------------------------------
    # Pipeline stages.
    # ------------------------------------------------------------------

    def compile(
        self,
        source: str,
        standard_opts: bool = True,
        verify: bool = True,
        inline: bool = False,
    ) -> Program:
        """MiniJ source → e-SSA program, via the registered compile passes
        (optional inlining, e-SSA construction, the standard opt suite)."""
        ast = parse_source(source)
        info = check_program(ast)
        program = lower_program(ast, info)
        manager = PassManager(self._context(program))
        manager.run(default_compile_passes(standard_opts=standard_opts, inline=inline))
        if verify:
            verify_program(program)
        return program

    def optimize(
        self,
        program: Program,
        profile: Optional[Profile] = None,
        functions: Optional[Sequence[str]] = None,
        capture=None,
    ) -> ABCDReport:
        """Run the ABCD passes (analyze → PRE → check removal) over every
        (or the named) functions and return the per-check report.

        The report carries the failures contained during *this* run plus
        the session's accumulated :class:`SessionStats`.

        ``capture`` (a :class:`repro.store.capture.StoreCapture`) hooks
        the persistent store in: the ``store-capture`` pass is scheduled
        between ``certify`` and ``check-removal`` so each function's
        pre-removal IR and certified eliminations are recorded.  The
        scheduled pipeline id (and so the store fingerprint) is
        unaffected — capture observes, it does not transform.
        """
        report = ABCDReport()
        already_recorded = len(self.guard.failures)
        ctx = self._context(program, profile=profile, report=report)
        passes = default_optimize_passes()
        if capture is not None:
            from repro.passes.registry import PASS_REGISTRY

            ctx.store_capture = capture
            index = next(
                i for i, p in enumerate(passes) if p.name == "check-removal"
            )
            passes.insert(index, PASS_REGISTRY["store-capture"])
        manager = PassManager(ctx)
        manager.run(passes, functions=functions)
        report.pass_failures.extend(self.guard.failures[already_recorded:])
        report.session_stats = self.stats
        return report

    # ------------------------------------------------------------------
    # Plumbing.
    # ------------------------------------------------------------------

    def _context(
        self,
        program: Program,
        profile: Optional[Profile] = None,
        report: Optional[ABCDReport] = None,
    ) -> PassContext:
        ctx = PassContext(
            program=program,
            analysis=self.analysis,
            guard=self.guard,
            stats=self.stats,
            config=self.config,
            profile=profile,
        )
        if report is not None:
            ctx.report = report
        return ctx
