"""The pass manager: one declarative driver for every transformation.

A :class:`Pass` declares its ``name``, the analyses it ``requires`` and
``preserves``, and how it wants to be sandboxed (``snapshot``/``verify``).
The :class:`PassManager` applies the :class:`~repro.robustness.guard.
PassGuard` protocol uniformly — snapshot → run → verify → rollback — so
``pipeline.py``, the ``guarded_*`` helpers, the CLI, and the bench
harness all drive the same pass list instead of four hand-rolled
sequences.  Per-pass wall time, invocation counts, rollbacks, and the
analysis cache's hit/miss counters land in :class:`SessionStats`.

:class:`FixpointGroup` models the standard-opt suite: its members iterate
to a bounded fixpoint with *one* snapshot and *one* verification per
round (the sandbox economics of the previous hand-rolled driver); an
exception is attributed to the member that raised, a verification failure
to ``<group>-verify``, and either way the round rolls back and iteration
stops at the last-known-good state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.abcd import ABCDConfig, ABCDReport
from repro.ir.function import Function, Program
from repro.ir.verifier import verify_def_use, verify_function
from repro.passes.analysis import ANALYSES, AnalysisManager
from repro.robustness.guard import PassGuard, _restore_in_place
from repro.runtime.profiler import Profile


class Pass:
    """Base class of registered passes.

    Class attributes (overridable per subclass):

    * ``name`` — registry key and failure-attribution label;
    * ``scope`` — ``"function"`` or ``"program"``;
    * ``requires`` — analyses prefetched through the cache before the run;
    * ``preserves`` — analyses still valid after a *mutating* run; the
      manager invalidates everything else;
    * ``mutates`` — pure analysis passes set this ``False`` and trigger no
      invalidation at all;
    * ``snapshot``/``verify`` — whether the manager clones before the run
      and re-verifies the IR after it (self-guarded passes opt out).
    """

    name: str = "<pass>"
    scope: str = "function"
    requires: Tuple[str, ...] = ()
    preserves: Tuple[str, ...] = ()
    mutates: bool = True
    snapshot: bool = True
    verify: bool = True

    def should_run(self, fn: Optional[Function], ctx: "PassContext") -> bool:
        return True

    def run(self, fn: Optional[Function], ctx: "PassContext") -> Optional[int]:
        """Apply the pass; returns a change count when meaningful."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class FixpointGroup:
    """A bounded-fixpoint group of function passes (see module docstring).

    The group's effective ``preserves`` is the intersection of its
    members' declarations — what every member keeps is all the group as a
    whole can promise.
    """

    scope = "function"

    def __init__(self, name: str, members: Sequence[Pass], max_rounds: int = 4) -> None:
        self.name = name
        self.members = list(members)
        self.max_rounds = max_rounds
        preserved = set(ANALYSES)
        for member in self.members:
            preserved &= set(member.preserves)
        self.preserves: Tuple[str, ...] = tuple(sorted(preserved))

    def should_run(self, fn: Function, ctx: "PassContext") -> bool:
        return all(member.should_run(fn, ctx) for member in self.members)

    def __repr__(self) -> str:
        return f"FixpointGroup({self.name!r}, {self.members!r})"


# ----------------------------------------------------------------------
# Stats.
# ----------------------------------------------------------------------


@dataclass
class PassStats:
    """Accumulated telemetry of one pass across a session."""

    name: str
    invocations: int = 0
    changes: int = 0
    rollbacks: int = 0
    seconds: float = 0.0
    #: Worklist sparseness counters (worklist-driven passes only):
    #: instructions popped and processed, and how many of those pops
    #: revisited an instruction already processed once.  A dense
    #: fixpoint re-scan would count every instruction once per member
    #: per round; the gap between that and these numbers is the
    #: measured sparseness win.
    instructions_visited: int = 0
    worklist_revisits: int = 0


class SessionStats:
    """Per-pass timing/rollback counters plus the analysis cache stats.

    Surfaced on :class:`~repro.core.abcd.ABCDReport`, by ``repro optimize
    --time-passes``, and inside benchmark JSON.
    """

    def __init__(self, analysis: Optional[AnalysisManager] = None) -> None:
        self.passes: Dict[str, PassStats] = {}
        self.analysis = analysis
        #: Certificate counters of the certify pass (certify mode only).
        self.certificates: Dict[str, int] = {
            "emitted": 0,
            "accepted": 0,
            "rejected": 0,
        }
        #: Free-form campaign counters (the fuzz driver folds its
        #: per-classification tallies in here as ``fuzz.<name>``).
        self.counters: Dict[str, int] = {}

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment a free-form session counter."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def bump_peak(self, name: str, value: int) -> None:
        """Record a high-water-mark counter (max, not sum).

        Peak counters carry a ``_peak`` name suffix by convention so
        :meth:`merge` folds them with max semantics too.
        """
        if value > self.counters.get(name, 0):
            self.counters[name] = value

    def merge(self, other: "SessionStats") -> None:
        """Fold another session's counters into this one (used by the
        fuzz campaign, which runs one short-lived session per program but
        reports one aggregate)."""
        for name, entry in other.passes.items():
            mine = self.passes.get(name)
            if mine is None:
                mine = self.passes[name] = PassStats(name)
            mine.invocations += entry.invocations
            mine.changes += entry.changes
            mine.rollbacks += entry.rollbacks
            mine.seconds += entry.seconds
            mine.instructions_visited += entry.instructions_visited
            mine.worklist_revisits += entry.worklist_revisits
        for name, value in other.certificates.items():
            self.certificates[name] = self.certificates.get(name, 0) + value
        for name, value in other.counters.items():
            if name.endswith("_peak"):
                self.bump_peak(name, value)
            else:
                self.bump(name, value)

    def count_certificates(self, verdicts: Sequence) -> None:
        """Fold one function's certificate verdicts into the session."""
        for verdict in verdicts:
            self.certificates["emitted"] += 1
            if verdict.status in self.certificates:
                self.certificates[verdict.status] += 1

    def record(
        self, name: str, seconds: float, changed: int = 0, rollback: bool = False
    ) -> None:
        entry = self.passes.get(name)
        if entry is None:
            entry = self.passes[name] = PassStats(name)
        entry.invocations += 1
        entry.seconds += seconds
        entry.changes += changed
        if rollback:
            entry.rollbacks += 1

    def count_worklist(self, name: str, visited: int, revisits: int) -> None:
        """Fold one worklist run's sparseness counters into ``name``."""
        entry = self.passes.get(name)
        if entry is None:
            entry = self.passes[name] = PassStats(name)
        entry.instructions_visited += visited
        entry.worklist_revisits += revisits

    @property
    def total_seconds(self) -> float:
        return sum(entry.seconds for entry in self.passes.values())

    @property
    def rollback_count(self) -> int:
        return sum(entry.rollbacks for entry in self.passes.values())

    def format_table(self) -> str:
        sparse = any(entry.instructions_visited for entry in self.passes.values())
        header = f"{'pass':<24}{'runs':>6}{'changes':>9}{'rollbacks':>11}{'seconds':>10}"
        if sparse:
            header += f"{'visited':>9}{'revisits':>10}"
        lines = [header]
        for entry in self.passes.values():
            line = (
                f"{entry.name:<24}{entry.invocations:>6}{entry.changes:>9}"
                f"{entry.rollbacks:>11}{entry.seconds:>10.4f}"
            )
            if sparse:
                if entry.instructions_visited:
                    line += (
                        f"{entry.instructions_visited:>9}"
                        f"{entry.worklist_revisits:>10}"
                    )
                else:
                    line += f"{'-':>9}{'-':>10}"
            lines.append(line)
        lines.append(f"{'total':<24}{'':>6}{'':>9}{'':>11}{self.total_seconds:>10.4f}")
        if self.certificates["emitted"]:
            lines.append("")
            lines.append(
                "certificates: "
                f"{self.certificates['emitted']} emitted, "
                f"{self.certificates['accepted']} accepted, "
                f"{self.certificates['rejected']} rejected"
            )
        if self.counters:
            lines.append("")
            lines.append(f"{'counter':<32}{'value':>12}")
            for name, value in sorted(self.counters.items()):
                lines.append(f"{name:<32}{value:>12}")
        if self.analysis is not None:
            lines.append("")
            lines.append(f"{'analysis cache':<24}{'hits':>6}{'misses':>9}{'seconds':>10}")
            names = sorted(set(self.analysis.hits) | set(self.analysis.misses))
            for name in names:
                lines.append(
                    f"{name:<24}{self.analysis.hits.get(name, 0):>6}"
                    f"{self.analysis.misses.get(name, 0):>9}"
                    f"{self.analysis.seconds.get(name, 0.0):>10.4f}"
                )
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        return {
            "passes": [
                {
                    "name": entry.name,
                    "invocations": entry.invocations,
                    "changes": entry.changes,
                    "rollbacks": entry.rollbacks,
                    "seconds": entry.seconds,
                    "instructions_visited": entry.instructions_visited,
                    "worklist_revisits": entry.worklist_revisits,
                }
                for entry in self.passes.values()
            ],
            "total_seconds": self.total_seconds,
            "certificates": dict(self.certificates),
            "counters": dict(sorted(self.counters.items())),
            "analysis": self.analysis.stats() if self.analysis is not None else {},
        }


# ----------------------------------------------------------------------
# Context and manager.
# ----------------------------------------------------------------------


@dataclass
class PassContext:
    """Everything a pass may consult, threaded through every invocation."""

    program: Optional[Program]
    analysis: AnalysisManager
    guard: PassGuard
    stats: SessionStats
    config: Optional[ABCDConfig] = None
    profile: Optional[Profile] = None
    report: ABCDReport = field(default_factory=ABCDReport)
    #: Cross-pass scratch space (e.g. ABCD's analysis state consumed by
    #: the PRE and check-removal passes), keyed by ``(pass_name, id(fn))``.
    state: Dict[Tuple[str, int], Any] = field(default_factory=dict)
    #: Persistent-store capture hook (a :class:`repro.store.capture.
    #: StoreCapture`); when set, the ``store-capture`` pass snapshots each
    #: function's pre-removal IR + certified eliminations into it.
    store_capture: Optional[Any] = None


class PassManager:
    """Runs registered passes over functions with the uniform guard
    protocol and declared analysis invalidation."""

    def __init__(self, ctx: PassContext) -> None:
        self.ctx = ctx

    # ------------------------------------------------------------------
    # Drivers.
    # ------------------------------------------------------------------

    def run(self, passes: Sequence, functions: Optional[Sequence[str]] = None) -> None:
        """Run a pass list over the context's program.

        Function-scope passes visit every (or the named) functions;
        program-scope passes run once.
        """
        for p in passes:
            if isinstance(p, FixpointGroup):
                for fn in self._selected(functions):
                    self.run_group(p, fn)
            elif p.scope == "program":
                self.run_program_pass(p)
            else:
                for fn in self._selected(functions):
                    self.run_function_pass(p, fn)

    def _selected(self, functions: Optional[Sequence[str]]) -> List[Function]:
        program = self.ctx.program
        assert program is not None, "function passes need a program in context"
        names = list(functions) if functions is not None else list(program.functions)
        return [program.functions[name] for name in names]

    # ------------------------------------------------------------------
    # One function pass.
    # ------------------------------------------------------------------

    def run_function_pass(self, p: Pass, fn: Function) -> Optional[Any]:
        ctx = self.ctx
        if not p.should_run(fn, ctx):
            return None
        for name in p.requires:
            ctx.analysis.get(name, fn)
        started = time.perf_counter()
        snapshot = fn.clone() if p.snapshot else None
        try:
            result = p.run(fn, ctx)
            if p.verify:
                verify_function(fn)
        except Exception as exc:
            if snapshot is not None:
                _restore_in_place(fn, snapshot)
            if p.mutates:
                # A pass may have (re)computed analyses mid-flight against
                # intermediate CFG states; after a rollback those cached
                # entries no longer describe the restored function.
                ctx.analysis.invalidate(fn)
            ctx.stats.record(p.name, time.perf_counter() - started, rollback=True)
            ctx.guard.contain(p.name, fn.name, exc)
            return None
        if p.mutates:
            ctx.analysis.retain_only(fn, p.preserves)
            if ctx.analysis.debug:
                ctx.analysis.verify_preserved(fn, p.name)
        if ctx.analysis.debug:
            verify_def_use(fn, p.name)
        ctx.stats.record(
            p.name,
            time.perf_counter() - started,
            changed=result if isinstance(result, int) else 0,
        )
        return result

    # ------------------------------------------------------------------
    # One program pass.
    # ------------------------------------------------------------------

    def run_program_pass(self, p: Pass) -> Optional[Any]:
        ctx = self.ctx
        program = ctx.program
        assert program is not None
        if not p.should_run(None, ctx):
            return None
        started = time.perf_counter()
        snapshot = program.clone() if p.snapshot else None
        try:
            result = p.run(None, ctx)
            if p.verify:
                for fn in program.functions.values():
                    verify_function(fn)
        except Exception as exc:
            if snapshot is not None:
                _restore_in_place(program, snapshot)
            ctx.stats.record(p.name, time.perf_counter() - started, rollback=True)
            ctx.guard.contain(p.name, "<program>", exc)
            return None
        if p.mutates:
            # A program transform may touch any function; drop everything.
            ctx.analysis.invalidate_all()
        if ctx.analysis.debug:
            for fn in program.functions.values():
                verify_def_use(fn, p.name)
        ctx.stats.record(
            p.name,
            time.perf_counter() - started,
            changed=result if isinstance(result, int) else 0,
        )
        return result

    # ------------------------------------------------------------------
    # Fixpoint groups.
    # ------------------------------------------------------------------

    def run_group(self, group: FixpointGroup, fn: Function) -> int:
        ctx = self.ctx
        if not group.should_run(fn, ctx):
            return 0
        total = 0
        for _ in range(group.max_rounds):
            snapshot = fn.clone()
            pass_name = group.name
            round_changes = 0
            member_stats: List[Tuple[str, float, int]] = []
            try:
                for member in group.members:
                    pass_name = member.name
                    member_started = time.perf_counter()
                    changed = member.run(fn, ctx) or 0
                    member_stats.append(
                        (member.name, time.perf_counter() - member_started, changed)
                    )
                    round_changes += changed
                pass_name = f"{group.name}-verify"
                verify_function(fn)
            except Exception as exc:
                _restore_in_place(fn, snapshot)
                ctx.analysis.invalidate(fn)
                ctx.stats.record(pass_name, 0.0, rollback=True)
                ctx.guard.contain(pass_name, fn.name, exc)
                break
            for name, seconds, changed in member_stats:
                ctx.stats.record(name, seconds, changed=changed)
            if round_changes:
                ctx.analysis.retain_only(fn, group.preserves)
                if ctx.analysis.debug:
                    ctx.analysis.verify_preserved(fn, group.name)
            if ctx.analysis.debug:
                verify_def_use(fn, group.name)
            total += round_changes
            if round_changes == 0:
                break
        return total
