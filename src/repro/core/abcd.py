"""The ABCD driver (paper, Figure 2).

For each bounds check ``check A[x]`` (optionally restricted to a hot set):

1. query the matching inequality graph —
   upper: ``demandProve(G_upper, x - len(A) <= -1)``,
   lower: ``demandProve(G_lower, 0 - x <= 0)`` (negated space);
2. if proven (``True`` or ``Reduced``), delete the check;
3. otherwise, optionally consult global value numbering (Section 7.1) and
   retry against congruent arrays;
4. otherwise, optionally attempt partial-redundancy elimination
   (Section 6, ``repro.core.pre``).

Each eliminated check is classified **local** when a proof exists using
only constraints generated in the check's own basic block, else
**global** — the split shown for the SPEC benchmarks in Figure 6.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.core.backend import make_backend, resolve_backend
from repro.core.constraints import GraphBundle, build_graphs
from repro.core.graph import Edge, InequalityGraph, Node, const_node, len_node, var_node
from repro.core.lattice import ProofResult
from repro.core.solver import DEFAULT_MAX_STEPS, DemandProver
from repro.ir.function import Function, Program
from repro.ir.instructions import CheckLower, CheckUpper, Var
from repro.runtime.profiler import Profile


@dataclass
class ABCDConfig:
    """Tunables of one optimization run.

    ``upper``/``lower`` select which check kinds to analyze (the paper's
    experiments focus on upper checks; both default on).  ``pre`` enables
    the Section-6 partial-redundancy extension and requires a profile at
    ``optimize_function``/``optimize_program`` time.  ``allocation_facts``
    forwards to the graph builder.  ``hot_checks`` restricts analysis to a
    set of check ids (the demand-driven JIT scenario); ``None`` analyzes
    everything.
    """

    upper: bool = True
    lower: bool = True
    pre: bool = False
    allocation_facts: bool = True
    hot_checks: Optional[Set[int]] = None
    #: Section 7.1 usage of global value numbering:
    #: "off" — no GVN; "consult" — the paper implementation's on-demand
    #: retry against congruent arrays; "augment" — additionally add
    #: congruence edges to the inequality graph (the general mechanism).
    gvn_mode: str = "consult"
    #: PRE inserts only when the summed profile frequency of the insertion
    #: edges stays below ``pre_gain_ratio`` times the check's own frequency
    #: (1.0 = the paper's break-even rule).
    pre_gain_ratio: float = 1.0
    #: Which solver tier answers the per-check queries: ``"demand"`` —
    #: the Figure-5 demand-driven engine; ``"closure"`` — the DBM closure
    #: tier (:mod:`repro.core.dbm`), one matrix row per query source,
    #: every check answered from the closed matrix; ``"hybrid"`` — pick
    #: per function by the measured check-density crossover
    #: (:data:`repro.core.backend.HYBRID_CROSSOVER_CHECKS`).  All three
    #: eliminate the same checks; the setting trades per-query traversal
    #: against up-front closure cost.  Participates in the certificate
    #: store fingerprint (see ``repro.store.fingerprint``), so cached
    #: entries never alias across solver settings.
    solver_backend: str = "demand"
    #: Ablation switch: drop the C4/C5 π predicate edges from the graph,
    #: reducing e-SSA to plain SSA value flow (expected: collapse of the
    #: Figure-6 numbers).
    pi_constraints: bool = True
    #: Resource budgets for every proof session (a JIT must never hang in
    #: the optimizer).  Exhausting any budget conservatively keeps the
    #: check and flags ``budget_exhausted`` on its analysis record.
    max_steps: int = DEFAULT_MAX_STEPS
    max_depth: Optional[int] = None
    #: Optional wall-clock deadline (seconds) per proof session.
    deadline: Optional[float] = None
    #: Escalate contained pass failures (e.g. a PRE insertion that fails
    #: verification) into hard errors instead of rolling back.
    strict: bool = False
    #: Emit a proof witness for every elimination and replay it through
    #: the independent checker (``repro.certify``) before any check is
    #: removed; a rejected certificate revokes exactly that elimination.
    certify: bool = False
    #: Quarantine a function to unoptimized compilation once this many of
    #: its certificates are rejected (the revocation ladder's second rung).
    certify_quarantine: int = 2


@dataclass
class CheckAnalysis:
    """The analysis record of a single bounds check."""

    check_id: int
    kind: str  # "lower" | "upper"
    function: str
    block: str
    result: ProofResult
    steps: int
    seconds: float
    eliminated: bool = False
    scope: Optional[str] = None  # "local" | "global" for eliminated checks
    via_gvn: bool = False
    pre_applied: bool = False
    pre_insertions: int = 0
    #: The proof session hit a resource budget (steps/depth/deadline) and
    #: conservatively kept the check.
    budget_exhausted: bool = False
    #: Which resource ran out first ("steps" | "depth" | "deadline").
    exhausted_budget: Optional[str] = None
    #: Proof witness backing this elimination (certify mode only); an
    #: independently checkable certificate, see ``repro.certify``.
    witness: Optional[object] = None
    #: Source vertex of the certified query (differs from the check's own
    #: array-length vertex after a Section-7.1 GVN retry).
    cert_source: Optional[object] = None
    #: Certificate verdict: ``None`` (not certified), "accepted", or
    #: "rejected".
    certificate: Optional[str] = None
    #: The elimination was revoked (rejected certificate or function
    #: quarantine): the check stays in the program.
    revoked: bool = False


@dataclass
class PassFailure:
    """One detected-and-contained transformation failure.

    Recorded by the pass-guard layer (``repro.robustness.guard``) whenever
    a transforming pass raised or produced IR that fails verification; the
    function was rolled back to its pre-pass snapshot.
    """

    pass_name: str
    function: str
    #: "exception" — the pass raised mid-flight;
    #: "verify" — the pass completed but left malformed IR.
    stage: str
    error_type: str
    message: str

    def __str__(self) -> str:
        return (
            f"{self.pass_name}({self.function}): {self.stage} failure "
            f"[{self.error_type}] {self.message}"
        )


@dataclass
class ABCDReport:
    """Aggregated outcome of one ``abcd_optimize`` run."""

    analyses: List[CheckAnalysis] = field(default_factory=list)
    #: Robustness telemetry: pass failures contained by rollback during
    #: this run (one entry per rollback).
    pass_failures: List[PassFailure] = field(default_factory=list)
    #: Per-pass timing and analysis-cache telemetry of the session that
    #: produced this report (a ``repro.passes.manager.SessionStats``), when
    #: the run went through the pass manager.
    session_stats: Optional[object] = None
    #: Functions quarantined to unoptimized compilation by the certificate
    #: revocation ladder (repeated rejections in one function).
    quarantined_functions: List[str] = field(default_factory=list)

    @property
    def analyzed(self) -> int:
        return len(self.analyses)

    @property
    def eliminated_ids(self) -> Set[int]:
        return {a.check_id for a in self.analyses if a.eliminated}

    def eliminated_count(self, kind: Optional[str] = None) -> int:
        return sum(
            1
            for a in self.analyses
            if a.eliminated and (kind is None or a.kind == kind)
        )

    def analyzed_count(self, kind: Optional[str] = None) -> int:
        return sum(1 for a in self.analyses if kind is None or a.kind == kind)

    @property
    def total_steps(self) -> int:
        return sum(a.steps for a in self.analyses)

    @property
    def mean_steps(self) -> float:
        return self.total_steps / len(self.analyses) if self.analyses else 0.0

    @property
    def pre_transformed(self) -> int:
        return sum(1 for a in self.analyses if a.pre_applied)

    def by_scope(self, scope: str) -> int:
        return sum(1 for a in self.analyses if a.eliminated and a.scope == scope)

    # ------------------------------------------------------------------
    # Robustness telemetry.
    # ------------------------------------------------------------------

    @property
    def rollback_count(self) -> int:
        """Transformation failures contained by rolling back a snapshot."""
        return len(self.pass_failures)

    def rollbacks_by_pass(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for failure in self.pass_failures:
            counts[failure.pass_name] = counts.get(failure.pass_name, 0) + 1
        return counts

    @property
    def budget_exhausted_count(self) -> int:
        """Checks kept because a solver resource budget ran out."""
        return sum(1 for a in self.analyses if a.budget_exhausted)

    def budget_exhausted_kinds(self) -> Dict[str, int]:
        """Breakdown of budget exhaustions by which budget ran out."""
        counts: Dict[str, int] = {}
        for a in self.analyses:
            if a.budget_exhausted and a.exhausted_budget is not None:
                counts[a.exhausted_budget] = counts.get(a.exhausted_budget, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Certificate telemetry (certify mode).
    # ------------------------------------------------------------------

    @property
    def certificates_emitted(self) -> int:
        """Eliminations that carried a proof witness into the checker."""
        return sum(1 for a in self.analyses if a.certificate is not None)

    @property
    def certificates_accepted(self) -> int:
        return sum(1 for a in self.analyses if a.certificate == "accepted")

    @property
    def certificates_rejected(self) -> int:
        return sum(1 for a in self.analyses if a.certificate == "rejected")

    @property
    def revoked_count(self) -> int:
        """Eliminations undone by the revocation ladder (the checks stayed
        in the program)."""
        return sum(1 for a in self.analyses if a.revoked)

    def merge(self, other: "ABCDReport") -> None:
        self.analyses.extend(other.analyses)
        self.pass_failures.extend(other.pass_failures)
        self.quarantined_functions.extend(other.quarantined_functions)


@dataclass
class _CheckSite:
    instr: object
    kind: str
    block: str
    target: Node
    array: Optional[str]


def _operand_target(operand) -> Node:
    if isinstance(operand, Var):
        return var_node(operand.name)
    return const_node(operand.value)


def _check_sites(fn: Function) -> List[_CheckSite]:
    sites: List[_CheckSite] = []
    for label in fn.reachable_blocks():
        for instr in fn.blocks[label].body:
            if isinstance(instr, CheckLower):
                sites.append(
                    _CheckSite(instr, "lower", label, _operand_target(instr.index), None)
                )
            elif isinstance(instr, CheckUpper):
                sites.append(
                    _CheckSite(
                        instr, "upper", label, _operand_target(instr.index), instr.array
                    )
                )
    return sites


@dataclass
class AbcdState:
    """The outcome of :func:`analyze_checks`, consumed by the ``pre`` and
    ``check-removal`` passes.

    ``analyses`` holds one :class:`CheckAnalysis` per analyzed check in
    site order; ``to_remove`` the sites whose checks were proven
    redundant; ``pre_candidates`` the ``(site, record)`` pairs that failed
    their proof and are eligible for the Section-6 PRE attempt.
    """

    bundle: GraphBundle
    gvn: Optional[object]
    analyses: List[CheckAnalysis] = field(default_factory=list)
    to_remove: List[_CheckSite] = field(default_factory=list)
    pre_candidates: List = field(default_factory=list)


def analyze_checks(
    fn: Function,
    program: Program,
    config: Optional[ABCDConfig] = None,
    analysis=None,
    stats=None,
) -> AbcdState:
    """Run the demand-driven proofs over one e-SSA function.

    Pure analysis: the function is not mutated.  ``analysis`` (an
    :class:`~repro.passes.analysis.AnalysisManager`) serves GVN and
    dominance results from the session cache.  ``stats`` (a
    :class:`~repro.passes.manager.SessionStats`) receives solver
    telemetry counters when provided.

    The queries go through the :class:`~repro.core.backend.SolverBackend`
    the config's ``solver_backend`` setting selects (per function, via
    the hybrid scheduler's measured check-density crossover).  On the
    demand engine, plain mode shares one proof session over the unified
    dual graph — memo entries earned by one check site (keyed by
    direction and source vertex) answer later sites for free — while
    certify mode keeps per-site sessions: witness bytes must not depend
    on which sites happened to run earlier.  The closure tier instead
    closes one matrix row per query source up front (``prepare``) and
    answers every site from the closed matrix.  Local/global scope
    classification always replays on the demand engine with a same-block
    edge filter: it is reporting, not elimination, and the filtered
    traversal has no closure analog.
    """
    config = config or ABCDConfig()
    if fn.ssa_form != "essa":
        raise ValueError(f"{fn.name}: ABCD requires e-SSA form")
    if config.gvn_mode not in ("off", "consult", "augment"):
        raise ValueError(f"bad gvn_mode {config.gvn_mode!r}")
    gvn = None
    if config.gvn_mode != "off":
        if analysis is not None:
            gvn = analysis.get("gvn", fn)
        else:
            from repro.opt.gvn import value_number

            gvn = value_number(fn)
    domtree = None
    if config.gvn_mode == "augment" and analysis is not None:
        domtree = analysis.get("domtree", fn)
    bundle = build_graphs(
        fn,
        allocation_facts=config.allocation_facts,
        gvn=gvn if config.gvn_mode == "augment" else None,
        pi_constraints=config.pi_constraints,
        domtree=domtree,
    )
    state = AbcdState(bundle=bundle, gvn=gvn)

    sites = []
    for site in _check_sites(fn):
        if site.kind == "upper" and not config.upper:
            continue
        if site.kind == "lower" and not config.lower:
            continue
        if (
            config.hot_checks is not None
            and site.instr.check_id not in config.hot_checks
        ):
            continue
        sites.append(site)

    backend_name = resolve_backend(config, len(sites))
    backend = make_backend(
        backend_name,
        bundle,
        config,
        lambda graph: _new_prover(config, graph),
        extra_vertices=_query_vertices(bundle, sites),
    )
    queries = []
    for site in sites:
        _, source, budget = _query_for(bundle, site)
        queries.append((source, site.target, budget, site.kind))
    backend.prepare(queries)

    for site in sites:
        check_id = site.instr.check_id
        graph, source, budget = _query_for(bundle, site)
        target = site.target

        started = time.perf_counter()
        outcome = backend.prove(source, target, budget, site.kind)
        record = CheckAnalysis(
            check_id=check_id,
            kind=site.kind,
            function=fn.name,
            block=site.block,
            result=outcome.result,
            steps=outcome.steps,
            seconds=0.0,
            budget_exhausted=outcome.budget_exhausted,
            exhausted_budget=outcome.exhausted_budget,
        )
        if config.certify and outcome.proven:
            record.witness = outcome.witness
            record.cert_source = source

        if not outcome.proven and site.kind == "upper" and gvn is not None:
            retry = _gvn_retry(bundle, gvn, site, budget, backend)
            if retry is not None:
                other, gvn_outcome = retry
                record.result = ProofResult.TRUE
                record.via_gvn = True
                if config.certify:
                    record.witness = gvn_outcome.witness
                    record.cert_source = len_node(other)

        if record.result.proven:
            record.eliminated = True
            record.scope = _classify_scope(
                graph, source, target, budget, site.block, config
            )
            state.to_remove.append(site)
        else:
            state.pre_candidates.append((site, record))
        record.seconds = time.perf_counter() - started
        state.analyses.append(record)

    if stats is not None:
        _collect_solver_stats(stats, backend)
    return state


def _collect_solver_stats(stats, backend) -> None:
    """Fold the backend's session telemetry into the pass-manager
    counters: demand sessions report ``solver.steps.*`` / frame-machine
    sizes, the closure tier ``solver.dbm_*`` cost counters, and every
    function records which engine the scheduler picked
    (``solver.backend.<name>``)."""
    for key, value in backend.counters().items():
        if key.endswith("_peak"):
            stats.bump_peak(f"solver.{key}", value)
        else:
            stats.bump(f"solver.{key}", value)
    stats.bump(f"solver.backend.{backend.name}")


def apply_pre(
    fn: Function,
    program: Program,
    state: AbcdState,
    config: ABCDConfig,
    profile: Profile,
    report: ABCDReport,
    analysis=None,
) -> int:
    """Attempt Section-6 PRE for every unproven check of ``state``.

    Each successful attempt appends compensating checks, tags the original
    check's guard group, and marks its record eliminated (scope
    ``"global"``); the check instruction itself stays in place as the
    guarded check.  Returns how many checks were transformed.
    """
    applied = 0
    for site, record in state.pre_candidates:
        started = time.perf_counter()
        decision = _guarded_pre(
            fn, program, state.bundle, site, profile, config, report, analysis=analysis
        )
        record.seconds += time.perf_counter() - started
        if decision is not None:
            record.pre_applied = True
            record.pre_insertions = decision.insertion_count
            record.eliminated = True
            record.scope = "global"
            if config.certify:
                record.witness = decision.witness
                record.cert_source = (
                    len_node(site.array) if site.kind == "upper" else const_node(0)
                )
            applied += 1
    return applied


def remove_checks(fn: Function, state: AbcdState) -> int:
    """Delete the checks ``analyze_checks`` proved redundant; returns the
    number removed."""
    for site in state.to_remove:
        _remove_instr(fn, site)
    return len(state.to_remove)


def optimize_function(
    fn: Function,
    program: Program,
    config: Optional[ABCDConfig] = None,
    profile: Optional[Profile] = None,
    analysis=None,
) -> ABCDReport:
    """Run ABCD over one e-SSA function, removing redundant checks in
    place, and return the per-check report.

    Convenience wrapper over the three registered passes —
    :func:`analyze_checks`, :func:`apply_pre`, :func:`remove_checks` —
    for callers not driving a full pass-manager session.
    """
    config = config or ABCDConfig()
    report = ABCDReport()
    state = analyze_checks(fn, program, config, analysis=analysis)
    if config.pre and profile is not None:
        apply_pre(fn, program, state, config, profile, report, analysis=analysis)
    if config.certify:
        from repro.certify.driver import certify_state

        certify_state(fn, state, config, report)
    remove_checks(fn, state)
    report.analyses.extend(state.analyses)
    return report


def optimize_program(
    program: Program,
    config: Optional[ABCDConfig] = None,
    profile: Optional[Profile] = None,
    functions: Optional[Sequence[str]] = None,
) -> ABCDReport:
    """Run ABCD over every (or the named) functions of a program."""
    report = ABCDReport()
    names = list(functions) if functions is not None else list(program.functions)
    for name in names:
        report.merge(optimize_function(program.functions[name], program, config, profile))
    return report


# ----------------------------------------------------------------------
# Helpers.
# ----------------------------------------------------------------------


def _query_for(bundle: GraphBundle, site: _CheckSite):
    """Graph, source vertex, and budget for one check's query."""
    if site.kind == "upper":
        assert site.array is not None
        return bundle.upper, len_node(site.array), -1
    return bundle.lower, const_node(0), 0


def _new_prover(
    config: ABCDConfig,
    graph: InequalityGraph,
    edge_filter: Optional[callable] = None,
) -> DemandProver:
    """A proof session carrying the config's resource budgets."""
    return DemandProver(
        graph,
        edge_filter=edge_filter,
        max_steps=config.max_steps,
        max_depth=config.max_depth,
        deadline=config.deadline,
        witnesses=config.certify,
    )


def _guarded_pre(
    fn: Function,
    program: Program,
    bundle: GraphBundle,
    site: _CheckSite,
    profile: Profile,
    config: ABCDConfig,
    report: ABCDReport,
    analysis=None,
):
    """Attempt PRE under a targeted guard.

    PRE only appends compensating instructions to predecessor blocks and
    tags the original check with a guard group, so a failure (an exception
    mid-transformation or malformed IR afterwards) is undone exactly by
    truncating those appends and restoring the tag.  The failure is
    recorded as robustness telemetry and the check simply stays in.
    """
    from repro.core.pre import attempt_pre  # local import: pre depends on us
    from repro.ir.verifier import verify_function

    body_lengths = {label: len(block.body) for label, block in fn.blocks.items()}
    old_guard_group = site.instr.guard_group
    try:
        decision = attempt_pre(
            fn,
            program,
            bundle,
            site,
            profile,
            config.pre_gain_ratio,
            max_steps=config.max_steps,
            domtree=analysis.get("domtree", fn) if analysis is not None else None,
            witnesses=config.certify,
        )
        changed = any(
            len(fn.blocks[label].body) != length
            for label, length in body_lengths.items()
            if label in fn.blocks
        )
        if changed:
            verify_function(fn)
        return decision
    except Exception as exc:  # guard layer: contain anything but escape hatches
        if config.strict:
            raise
        for label, length in body_lengths.items():
            block = fn.blocks.get(label)
            if block is not None and len(block.body) > length:
                del block.body[length:]
        # The truncation above bypasses the mutator API; drop the def-use
        # index so the next query rebuilds from the rolled-back bodies.
        fn.invalidate_def_use()
        site.instr.guard_group = old_guard_group
        from repro.errors import IRVerificationError

        report.pass_failures.append(
            PassFailure(
                pass_name="pre",
                function=fn.name,
                stage="verify" if isinstance(exc, IRVerificationError) else "exception",
                error_type=type(exc).__name__,
                message=str(exc),
            )
        )
        return None


def _classify_scope(
    graph: InequalityGraph,
    source: Node,
    target: Node,
    budget: int,
    block: str,
    config: ABCDConfig,
) -> str:
    """"local" when provable with constraints from the check's block only
    (virtual constant edges, having no block, stay available)."""

    def same_block(edge: Edge) -> bool:
        return edge.block is None or edge.block == block

    local = _new_prover(config, graph, edge_filter=same_block)
    if local.demand_prove(source, target, budget).proven:
        return "local"
    return "global"


def _query_vertices(bundle: GraphBundle, sites) -> List[Node]:
    """Every vertex the function's queries may name as source or target:
    the closure tier registers these in its matrix universe up front
    (constant check indices, in particular, are reachable only through
    the virtual const completion, which edge enumeration cannot see).
    GVN retries query the length of any congruent array, so all of the
    bundle's array lengths are included."""
    vertices: List[Node] = [const_node(0)]
    vertices.extend(len_node(array) for array in sorted(bundle.array_vars))
    vertices.extend(site.target for site in sites)
    return vertices


def _gvn_retry(
    bundle: GraphBundle,
    gvn,
    site: _CheckSite,
    budget: int,
    backend,
):
    """Section 7.1 (restricted form): on failure against ``len(A)``, retry
    against the lengths of arrays value-congruent to ``A``.

    Returns ``(other_array, outcome)`` for the first congruent array whose
    proof succeeds, else ``None``.  The retry runs on the function's
    solver backend: the demand engine reuses its dual-direction session
    (plain mode) or a fresh per-query session (certify mode); the closure
    tier closes the congruent length's matrix row.
    """
    assert site.array is not None
    congruent = gvn.class_members(site.array)
    target = site.target
    for other in sorted(congruent):
        if other == site.array or other not in bundle.array_vars:
            continue
        outcome = backend.prove(len_node(other), target, budget, "upper")
        if outcome.proven:
            return other, outcome
    return None


def _remove_instr(fn: Function, site: _CheckSite) -> None:
    # Chain-maintaining removal: the check's operand uses leave the
    # def-use index along with the instruction.
    fn.remove_instr(site.block, site.instr)
