"""Building the inequality graph from an e-SSA function (paper, Table 1).

Upper-bound graph (edge ``u -> v`` weight ``w`` means ``v <= u + w``):

====  =========================  =======================  ==================
rule  statement                  constraint               edge / weight
====  =========================  =======================  ==================
C1    ``v := arraylen A``        ``v <= len(A)``          ``len(A) -> v / 0``
C2    ``v := c``                 ``v <= c``               ``c -> v / 0``
C3    ``v := y + c``             ``v <= y + c``           ``y -> v / c``
C4    π at branch exit           e.g. ``v' <= w - 1``     per relation below
C5    π after ``checkupper``     ``v' <= len(A) - 1``     ``len(A) -> v' / -1``
φ     ``v := φ(a, b)``           ``v <= max(a, b)``       ``a -> v / 0``,
                                                          ``b -> v / 0``;
                                                          ``v ∈ V_φ``
====  =========================  =======================  ==================

Every π also contributes its value-flow half ``dest <= src`` (weight-0 edge
from the source).

The **lower-bound graph** is the exact dual, built in *negated space* so the
same ``<=`` solver applies: a fact ``v >= u + c`` becomes the edge
``u -> v`` with weight ``-c`` (since ``-v <= -u - c``), φ stays a max
vertex (``v >= min(a,b)`` ⇔ ``-v <= max(-a,-b)``), and the source vertex of
a lower-bound proof is the constant 0.  Additional lower-space axiom:
``len(A) >= 0`` for every array-length vertex (the paper mentions this edge
explicitly when discussing ``st1``).

**Edge-direction discipline.**  Each statement contributes, per graph, only
the single inequality direction of Table 1 — never both halves of an
equality.  This is not a stylistic choice: the Figure-5 solver's treatment
of harmless cycles (``Reduced``) is sound only when every cycle of ``G_I``
contains a φ vertex, which Table-1 edges guarantee because all value-flow
cycles come from control-flow cycles.  Bidirectional equality edges would
create two-node φ-free cycles and let ``Reduced`` leak through min-vertex
joins as an unfounded proof.  The one extension (default-on) follows the
same discipline:

* ``a := newarray n`` pins ``n <= len(a)`` in the upper graph and
  ``n >= len(a)`` in the lower graph (the half that lets a proof continue
  *through* ``n`` toward the length literal).  In Java the equivalent facts
  arrive for free via redundant ``arraylength`` loads feeding C1; MiniJ
  programs that cache ``len(a)`` in a variable need nothing but C1, and
  ``allocation_facts=False`` restores pure Table-1 behaviour for ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.core.graph import DualGraph, Node, const_node, len_node, var_node
from repro.ir.function import Function
from repro.ir.instructions import (
    ArrayLen,
    ArrayLoad,
    ArrayNew,
    ArrayStore,
    BinOp,
    CheckUpper,
    Const,
    Copy,
    Operand,
    Phi,
    Pi,
    Var,
)


@dataclass
class GraphBundle:
    """The dual constraint system of one function.

    ``dual`` is the single direction-weighted graph both problems share;
    ``upper``/``lower`` are its :class:`~repro.core.graph.DirectionView`
    halves, kept for every consumer that works one direction at a time
    (PRE, the exhaustive oracle, baselines, tests).
    """

    upper: object
    lower: object
    #: Variables known to hold array references (for GVN consultation).
    array_vars: Set[str]
    #: The unified graph behind the two views (``None`` only for
    #: hand-assembled bundles built from two standalone graphs).
    dual: Optional[DualGraph] = None


def build_graphs(
    fn: Function,
    allocation_facts: bool = True,
    gvn=None,
    pi_constraints: bool = True,
    domtree=None,
) -> GraphBundle:
    """Build upper and lower inequality graphs for an e-SSA function.

    ``gvn`` (a :class:`repro.opt.gvn.ValueNumbering`) enables the
    Section-7.1 extension in its general form: for value-congruent
    variables ``u``, ``v`` with ``def(u)`` dominating ``def(v)``, the edge
    ``u -> v`` of weight 0 is added to both graphs (``v <= u`` and
    ``v >= u`` respectively).  Congruent *array* variables contribute the
    analogous edge between their length vertices.  Dominance-directed
    edges cannot close a φ-free cycle, preserving the solver's soundness
    invariant.
    """
    if fn.ssa_form != "essa":
        raise ValueError(f"{fn.name}: inequality graph requires e-SSA form")
    builder = _GraphBuilder(fn, allocation_facts, pi_constraints)
    bundle = builder.build()
    if gvn is not None:
        _augment_with_gvn(fn, bundle, gvn, domtree=domtree)
    return bundle


def _augment_with_gvn(fn: Function, bundle: GraphBundle, gvn, domtree=None) -> None:
    if domtree is None:
        from repro.analysis.dominance import DominatorTree

        domtree = DominatorTree.compute(fn)
    # Def positions on demand from the def-use index: only blocks that
    # actually hold a congruence-class member's def get their intra-block
    # order materialized.
    chains = fn.def_use()
    reachable = set(fn.reachable_blocks())
    param_set = set(fn.params)
    block_orders: Dict[str, Dict[str, int]] = {}

    def order_in(label: str) -> Dict[str, int]:
        cached = block_orders.get(label)
        if cached is None:
            cached = {}
            for index, instr in enumerate(fn.blocks[label].instructions()):
                dest = instr.defs()
                if dest is not None:
                    cached[dest] = index
            block_orders[label] = cached
        return cached

    def position_of(name: str):
        if name in param_set:
            return (fn.entry, -1)
        def_instr = chains.def_of(name)
        if def_instr is None:
            return None
        label = chains.block_of(def_instr)
        if label not in reachable:
            return None
        return (label, order_in(label)[name])

    def dominates_def(u: str, v: str) -> bool:
        pu, pv = position_of(u), position_of(v)
        if pu is None or pv is None:
            return False
        (bu, iu), (bv, iv) = pu, pv
        if bu == bv:
            return iu < iv
        return domtree.dominates(bu, bv)

    seen_classes = set()
    for name in sorted(gvn.class_of):
        class_id = gvn.class_of[name]
        if class_id in seen_classes:
            continue
        seen_classes.add(class_id)
        members = sorted(gvn.class_members(name))
        if len(members) < 2:
            continue
        for u in members:
            for v in members:
                if u == v or not dominates_def(u, v):
                    continue
                if u in bundle.array_vars and v in bundle.array_vars:
                    bundle.upper.add_edge(len_node(u), len_node(v), 0, None)
                    bundle.lower.add_edge(len_node(u), len_node(v), 0, None)
                elif u not in bundle.array_vars and v not in bundle.array_vars:
                    bundle.upper.add_edge(var_node(u), var_node(v), 0, None)
                    bundle.lower.add_edge(var_node(u), var_node(v), 0, None)


def collect_array_vars(fn: Function) -> Set[str]:
    """Fixpoint of "holds an array reference": direct array uses plus
    closure over copies, φs, and πs (both directions, since aliases of an
    array are arrays).

    Sparse formulation over the def-use index: seeds come from the type
    index (no function scan), and the closure walks only the use lists and
    defining instructions of names already known to be arrays.
    """
    chains = fn.def_use()
    arrays: Set[str] = set()
    pending: List[str] = []

    def add(name: str) -> None:
        if name not in arrays:
            arrays.add(name)
            pending.append(name)

    for instr in chains.instrs_of_type(ArrayNew):
        assert isinstance(instr, ArrayNew)
        add(instr.dest)
    for direct_type in (ArrayLen, ArrayLoad, ArrayStore, CheckUpper):
        for instr in chains.instrs_of_type(direct_type):
            add(instr.array)  # type: ignore[union-attr]

    while pending:
        name = pending.pop()
        # Forward flow: users that alias the value onward.
        for user in chains.users_of(name):
            if isinstance(user, Copy):
                if isinstance(user.src, Var) and user.src.name == name:
                    add(user.dest)
            elif isinstance(user, Pi):
                if user.src == name:
                    add(user.dest)
            elif isinstance(user, Phi):
                if any(
                    isinstance(op, Var) and op.name == name
                    for op in user.incomings.values()
                ):
                    add(user.dest)
        # Backward flow: whatever defined this alias is an array too.
        for def_instr in chains.defs_of(name):
            if isinstance(def_instr, Copy):
                if isinstance(def_instr.src, Var):
                    add(def_instr.src.name)
            elif isinstance(def_instr, Pi):
                add(def_instr.src)
            elif isinstance(def_instr, Phi):
                for op in def_instr.incomings.values():
                    if isinstance(op, Var):
                        add(op.name)
    return arrays


def _operand_node(op: Operand) -> Node:
    if isinstance(op, Const):
        return const_node(op.value)
    assert isinstance(op, Var)
    return var_node(op.name)


class _GraphBuilder:
    def __init__(
        self, fn: Function, allocation_facts: bool, pi_constraints: bool = True
    ) -> None:
        self._fn = fn
        self._allocation_facts = allocation_facts
        #: When False (ablation), πs contribute only their value-flow
        #: half — C4/C5 predicate edges are dropped, degrading e-SSA to
        #: plain SSA value flow.
        self._pi_constraints = pi_constraints
        #: The single direction-weighted constraint graph; ``upper`` and
        #: ``lower`` are its views (one statement's Table-1 contribution
        #: to both systems lands in one ``dual.add_edge`` call).
        self.dual = DualGraph()
        self.upper = self.dual.view("upper")
        self.lower = self.dual.view("lower")
        self.array_vars: Set[str] = set()

    def build(self) -> GraphBundle:
        self.array_vars = collect_array_vars(self._fn)
        for label in self._fn.reachable_blocks():
            for instr in self._fn.blocks[label].instructions():
                self._visit(instr, label)
        # Axiom: every array length is non-negative.  Lower-space edge
        # 0 -> len(A) / 0 encodes len(A) >= 0.
        for array in sorted(self.array_vars):
            self.dual.add_edge(const_node(0), len_node(array), lower=0)
        return GraphBundle(self.upper, self.lower, self.array_vars, dual=self.dual)

    # ------------------------------------------------------------------
    # Per-instruction rules.
    # ------------------------------------------------------------------

    def _visit(self, instr, block: str) -> None:
        if isinstance(instr, ArrayLen):
            # C1: v == len(A); encode v <= len(A) (upper) and v >= len(A)
            # (lower), each the direction that lets proofs flow from the
            # index variable toward the length literal.
            dest = var_node(instr.dest)
            self.dual.add_edge(len_node(instr.array), dest, upper=0, lower=0, block=block)
        elif isinstance(instr, Copy):
            if instr.dest in self.array_vars:
                if isinstance(instr.src, Var):
                    self._alias_lengths(instr.dest, instr.src.name, block)
                return
            # C2 (constant) or plain value flow: dest == src, one direction
            # per graph.
            dest = var_node(instr.dest)
            source = _operand_node(instr.src)
            self.dual.add_edge(source, dest, upper=0, lower=0, block=block)
        elif isinstance(instr, BinOp):
            self._binop(instr, block)
        elif isinstance(instr, Phi):
            self._phi(instr, block)
        elif isinstance(instr, Pi):
            self._pi(instr, block)
        elif isinstance(instr, ArrayNew) and self._allocation_facts:
            self._allocation(instr, block)

    def _alias_lengths(self, dest: str, src: str, block: str) -> None:
        """``dest := src`` for arrays: ``len(dest) == len(src)``; single
        direction per graph (dest's length bounded by src's)."""
        self.dual.add_edge(len_node(src), len_node(dest), upper=0, lower=0, block=block)

    def _allocation(self, instr: ArrayNew, block: str) -> None:
        """``a := newarray n``: encode ``n <= len(a)`` (upper) and
        ``n >= len(a)`` (lower), i.e. an in-edge to the length operand.

        When ``n`` is the constant 0 the lower-space edge would close a
        φ-free cycle with the ``len(A) >= 0`` axiom, so it is skipped
        (it carries no information beyond the axiom anyway).
        """
        length = _operand_node(instr.length)
        skip_lower = isinstance(instr.length, Const) and instr.length.value == 0
        self.dual.add_edge(
            len_node(instr.dest),
            length,
            upper=0,
            lower=None if skip_lower else 0,
            block=block,
        )

    def _binop(self, instr: BinOp, block: str) -> None:
        """C3: ``v := y ± c``.  Any other arithmetic leaves ``v``
        unconstrained (paper, Section 2)."""
        if instr.dest in self.array_vars:
            return
        dest = var_node(instr.dest)
        source = None
        constant = 0
        if instr.op == "add":
            if isinstance(instr.rhs, Const) and isinstance(instr.lhs, Var):
                source, constant = var_node(instr.lhs.name), instr.rhs.value
            elif isinstance(instr.lhs, Const) and isinstance(instr.rhs, Var):
                source, constant = var_node(instr.rhs.name), instr.lhs.value
        elif instr.op == "sub":
            if isinstance(instr.rhs, Const) and isinstance(instr.lhs, Var):
                source, constant = var_node(instr.lhs.name), -instr.rhs.value
        if source is None:
            return
        # v == y + c: upper edge weight +c; lower (negated space) weight -c.
        self.upper.add_edge(source, dest, constant, block)
        self.lower.add_edge(source, dest, -constant, block)

    def _phi(self, instr: Phi, block: str) -> None:
        if instr.dest in self.array_vars:
            # Arrays merging at a φ: the merged length is bounded by the
            # incoming lengths with the same max-vertex semantics.
            dest = len_node(instr.dest)
            self.upper.mark_phi(dest)
            self.lower.mark_phi(dest)
            for operand in instr.incomings.values():
                if isinstance(operand, Var):
                    self.upper.add_edge(len_node(operand.name), dest, 0, block)
                    self.lower.add_edge(len_node(operand.name), dest, 0, block)
            return
        dest = var_node(instr.dest)
        self.upper.mark_phi(dest)
        self.lower.mark_phi(dest)
        for operand in instr.incomings.values():
            source = _operand_node(operand)
            self.upper.add_edge(source, dest, 0, block)
            self.lower.add_edge(source, dest, 0, block)

    def _pi(self, instr: Pi, block: str) -> None:
        if instr.dest in self.array_vars:
            self._alias_lengths(instr.dest, instr.src, block)
            return
        dest = var_node(instr.dest)
        source = var_node(instr.src)
        # Value-flow half: dest == src would be exact, but the paper
        # deliberately encodes only the safe direction per graph so that
        # the two π results of one branch stay mutually unconstrained
        # (Section 4's consistency discussion).
        self.upper.add_edge(source, dest, 0, block)
        self.lower.add_edge(source, dest, 0, block)

        predicate = instr.predicate
        if not self._pi_constraints:
            return
        if predicate.arraylen_of is not None:
            # C5: dest < len(A)  (only ever generated with rel 'lt').
            if predicate.rel == "lt":
                self.upper.add_edge(len_node(predicate.arraylen_of), dest, -1, block)
            return
        assert predicate.other is not None
        other = _operand_node(predicate.other)
        rel = predicate.rel
        if rel == "lt":
            self.upper.add_edge(other, dest, -1, block)
        elif rel == "le":
            self.upper.add_edge(other, dest, 0, block)
        elif rel == "gt":
            self.lower.add_edge(other, dest, -1, block)
        elif rel == "ge":
            self.lower.add_edge(other, dest, 0, block)
        elif rel == "eq":
            self.upper.add_edge(other, dest, 0, block)
            self.lower.add_edge(other, dest, 0, block)
