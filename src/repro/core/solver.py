"""The demand-driven constraint solver (paper, Figure 5).

``demand_prove(G, a, b, c)`` decides whether ``b - a <= c`` holds under
every feasible solution of the constraint system — equivalently, whether
the *distance* from the array-length vertex ``a`` to the array-index
vertex ``b`` is at most ``c``.

The solver is a depth-first traversal backwards over in-edges, carrying the
remaining budget ``c``; crossing an edge ``u -> v`` of weight ``w`` while
asking ``v - a <= c`` reduces the question to ``u - a <= c - w``.  Results
merge through the ``True > Reduced > False`` lattice: **meet** at φ (max)
vertices — all incoming control-flow paths must prove — and **join** at
min vertices — any one constraint suffices.

Cycles are detected via the ``active`` map of budgets on the current DFS
stack: revisiting an active vertex with a *smaller* budget means the cycle
has positive weight (an *amplifying* cycle, e.g. ``j := j + 1``) and the
path fails; a revisit with equal or larger budget is a harmless cycle and
returns ``Reduced`` ("the cycle does not influence the distance").

Memoization uses budget subsumption exactly as in Figure 5: a ``True`` at
budget ``e`` answers every query with ``c >= e``; a ``False`` at ``e``
answers every ``c <= e``; a ``Reduced`` at ``e`` answers ``c >= e``.

``steps`` counts ``prove()`` invocations — the unit behind the paper's
"fewer than 10 analysis steps per bounds check" result.

Resource budgets (``max_steps``, ``max_depth``, ``deadline``) bound every
proof session: a JIT must never hang inside the optimizer, so exhausting
any budget abandons the proof with the conservative answer ``False``
("keep the check") and flags ``budget_exhausted`` on the outcome.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.certify.witness import (
    AxiomWitness,
    CycleWitness,
    EdgeWitness,
    PhiWitness,
    Witness,
    is_closed,
)
from repro.core.graph import Edge, InequalityGraph, Node
from repro.core.lattice import ProofResult

#: Default per-session step budget; generous compared to the paper's
#: "fewer than 10 steps per check" observation.
DEFAULT_MAX_STEPS = 200_000

#: How many steps pass between wall-clock deadline checks.
_DEADLINE_STRIDE = 256


@dataclass
class ProveOutcome:
    """Result of one ``demand_prove`` query."""

    result: ProofResult
    steps: int
    #: True when the session abandoned the proof because a resource budget
    #: (steps, depth, or wall-clock deadline) ran out; the result is then a
    #: conservative ``False``.
    budget_exhausted: bool = False
    #: Which budget ran out first ("steps" | "depth" | "deadline").
    exhausted_budget: Optional[str] = None
    #: Proof witness of a proven result (only recorded when the session
    #: was created with ``witnesses=True``); an independently checkable
    #: certificate, see :mod:`repro.certify`.
    witness: Optional[Witness] = None

    @property
    def proven(self) -> bool:
        return self.result.proven


@dataclass
class _Memo:
    """Per-vertex memo with budget subsumption.

    A proven witness is stored alongside its bound only when it is
    *closed* (no cycle leaves escaping its own subtree): a closed
    witness recorded at budget ``e`` replays under any budget ``c >= e``
    regardless of the DFS context, so budget-subsumption reuse stays
    certifiable.  Open witnesses are never stored; a later hit on such
    an entry re-derives the witness in its own context (witness-emitting
    sessions only — plain sessions never consult the witness slots).
    """

    true_at: Optional[int] = None  # smallest budget proven True
    false_at: Optional[int] = None  # largest budget proven False
    reduced_at: Optional[int] = None  # smallest budget proven Reduced
    true_witness: Optional[Witness] = None
    reduced_witness: Optional[Witness] = None

    def lookup(self, budget: int) -> Optional[ProofResult]:
        if self.true_at is not None and budget >= self.true_at:
            return ProofResult.TRUE
        if self.false_at is not None and budget <= self.false_at:
            return ProofResult.FALSE
        if self.reduced_at is not None and budget >= self.reduced_at:
            return ProofResult.REDUCED
        return None

    def witness_for(self, result: ProofResult) -> Optional[Witness]:
        if result is ProofResult.TRUE:
            return self.true_witness
        if result is ProofResult.REDUCED:
            return self.reduced_witness
        return None

    def record(
        self, budget: int, result: ProofResult, witness: Optional[Witness] = None
    ) -> None:
        if witness is not None and not is_closed(witness):
            witness = None
        if result is ProofResult.TRUE:
            if self.true_at is None or budget < self.true_at:
                self.true_at = budget
                self.true_witness = witness
            elif witness is not None and self.true_witness is None:
                # Same-or-weaker bound, but now with a replayable
                # witness: attach it to the recorded bound only when it
                # proves at least that bound.
                if budget <= self.true_at:
                    self.true_witness = witness
        elif result is ProofResult.FALSE:
            if self.false_at is None or budget > self.false_at:
                self.false_at = budget
        else:
            if self.reduced_at is None or budget < self.reduced_at:
                self.reduced_at = budget
                self.reduced_witness = witness
            elif witness is not None and self.reduced_witness is None:
                if budget <= self.reduced_at:
                    self.reduced_witness = witness


class DemandProver:
    """One proof session (one bounds check): fresh memo and cycle state.

    ``edge_filter`` optionally restricts which edges the traversal may use;
    the driver passes a same-block filter to replicate the paper's
    local/global classification of removed checks.
    """

    def __init__(
        self,
        graph: InequalityGraph,
        edge_filter: Optional[Callable[[Edge], bool]] = None,
        max_steps: int = DEFAULT_MAX_STEPS,
        max_depth: Optional[int] = None,
        deadline: Optional[float] = None,
        witnesses: bool = False,
    ) -> None:
        self._graph = graph
        self._edge_filter = edge_filter
        self._max_steps = max_steps
        self._max_depth = max_depth
        self._deadline_at = (
            time.monotonic() + deadline if deadline is not None else None
        )
        #: Record proof witnesses (certificates) alongside proven results.
        self._witnesses = witnesses
        self._memo: Dict[Node, _Memo] = {}
        self._active: Dict[Node, int] = {}
        self._depth = 0
        self.steps = 0
        #: Set when any resource budget ran out during this session.
        self.budget_exhausted = False
        #: "steps" | "depth" | "deadline" — first budget that ran out.
        self.exhausted_budget: Optional[str] = None

    def demand_prove(self, source: Node, target: Node, budget: int) -> ProveOutcome:
        """Figure 5's ``demandProve``: is ``target - source <= budget``?"""
        result, witness = self._prove(source, target, budget)
        return ProveOutcome(
            result,
            self.steps,
            self.budget_exhausted,
            self.exhausted_budget,
            witness if result.proven else None,
        )

    # ------------------------------------------------------------------
    # Figure 5's ``prove``.
    # ------------------------------------------------------------------

    def _exhaust(self, which: str) -> Tuple[ProofResult, Optional[Witness]]:
        # A conservative False is always sound: the check merely stays in.
        self.budget_exhausted = True
        if self.exhausted_budget is None:
            self.exhausted_budget = which
        return ProofResult.FALSE, None

    def _axiom(self, v: Node, rule: str) -> Optional[Witness]:
        return AxiomWitness(v, rule) if self._witnesses else None

    def _prove(self, a: Node, v: Node, c: int) -> Tuple[ProofResult, Optional[Witness]]:
        self.steps += 1
        if self.steps > self._max_steps:
            # Defensive fuel: the algorithm terminates on well-formed
            # graphs, but corrupted graphs or adversarial inputs must not
            # hang the compiler.
            return self._exhaust("steps")
        if self._max_depth is not None and self._depth > self._max_depth:
            return self._exhaust("depth")
        if (
            self._deadline_at is not None
            and self.steps % _DEADLINE_STRIDE == 0
            and time.monotonic() > self._deadline_at
        ):
            return self._exhaust("deadline")

        memo = self._memo.get(v)
        if memo is not None:
            cached = memo.lookup(c)
            if cached is not None:
                stored = memo.witness_for(cached)
                if not self._witnesses or not cached.proven or stored is not None:
                    return cached, stored
                # Witness mode, proven result, but the memo entry carries
                # no replayable witness (the original one was open):
                # re-derive in the current context rather than answering
                # without a certificate.

        # Reached the source: the empty path has weight 0.
        if v == a and c >= 0:
            return ProofResult.TRUE, self._axiom(v, "source")

        # Two constants relate arithmetically (exactly), no traversal needed.
        if v.kind == "const" and a.kind == "const":
            difference = self._graph.const_value(v) - self._graph.const_value(a)
            if difference <= c:
                return ProofResult.TRUE, self._axiom(v, "const-const")
            return ProofResult.FALSE, None

        # Array lengths are non-negative (the paper represents this as an
        # edge of G_I): in the upper graph, const(k) <= len(A) + k for any
        # k, which answers a constant target against a length source
        # directly — e.g. st0 <= -1 <= A.length - 1 in the running example.
        if (
            v.kind == "const"
            and a.kind == "len"
            and self._graph.direction == "upper"
            and v.value <= c
        ):
            return ProofResult.TRUE, self._axiom(v, "len-nonneg")

        in_edges = self._in_edges(v)
        if not in_edges:
            return ProofResult.FALSE, None

        active_budget = self._active.get(v)
        if active_budget is not None:
            if c < active_budget:
                # The cycle strengthened the query: positive-weight
                # (amplifying) cycle, cannot bound the variable.
                return ProofResult.FALSE, None
            return ProofResult.REDUCED, (
                CycleWitness(v) if self._witnesses else None
            )

        self._active[v] = c
        self._depth += 1
        try:
            if self._graph.is_phi(v):
                result, witness = self._merge_phi(a, v, c, in_edges)
            else:
                result, witness = self._merge_min(a, v, c, in_edges)
        finally:
            self._depth -= 1
            del self._active[v]

        self._memo.setdefault(v, _Memo()).record(c, result, witness)
        return result, witness

    def _in_edges(self, v: Node):
        edges = self._graph.in_edges(v)
        if self._edge_filter is not None:
            edges = [e for e in edges if self._edge_filter(e)]
        return edges

    def _merge_phi(
        self, a: Node, v: Node, c: int, in_edges
    ) -> Tuple[ProofResult, Optional[Witness]]:
        """Max vertex: meet over all in-edges (all must prove); short-
        circuits on False."""
        result = ProofResult.TRUE
        branches = []
        complete = self._witnesses
        for edge in in_edges:
            sub_result, sub_w = self._prove(a, edge.source, c - edge.weight)
            result = result.meet(sub_result)
            if result is ProofResult.FALSE:
                return result, None
            if sub_w is None:
                complete = False
            branches.append((edge.source, edge.weight, sub_w))
        witness = PhiWitness(v, tuple(branches)) if complete else None
        return result, witness

    def _merge_min(
        self, a: Node, v: Node, c: int, in_edges
    ) -> Tuple[ProofResult, Optional[Witness]]:
        """Min vertex: join over all in-edges (any suffices); short-
        circuits on True."""
        result = ProofResult.FALSE
        best: Optional[Tuple[Edge, Optional[Witness]]] = None
        for edge in in_edges:
            sub_result, sub_w = self._prove(a, edge.source, c - edge.weight)
            joined = result.join(sub_result)
            if joined is not result or best is None:
                if sub_result is joined:
                    best = (edge, sub_w)
            result = joined
            if result is ProofResult.TRUE:
                break
        if not result.proven or best is None:
            return result, None
        edge, sub_w = best
        witness = (
            EdgeWitness(v, edge.source, edge.weight, sub_w)
            if self._witnesses and sub_w is not None
            else None
        )
        return result, witness


def demand_prove(
    graph: InequalityGraph,
    source: Node,
    target: Node,
    budget: int,
    edge_filter: Optional[Callable[[Edge], bool]] = None,
) -> ProveOutcome:
    """Run one fresh proof session (the common entry point)."""
    return DemandProver(graph, edge_filter).demand_prove(source, target, budget)
