"""The demand-driven constraint solver (paper, Figure 5), iteratively.

``demand_prove(G, a, b, c)`` decides whether ``b - a <= c`` holds under
every feasible solution of the constraint system — equivalently, whether
the *distance* from the array-length vertex ``a`` to the array-index
vertex ``b`` is at most ``c``.

The solver walks backwards over in-edges carrying the remaining budget
``c``; crossing an edge ``u -> v`` of weight ``w`` while asking
``v - a <= c`` reduces the question to ``u - a <= c - w``.  Results merge
through the ``True > Reduced > False`` lattice: **meet** at φ (max)
vertices — all incoming control-flow paths must prove — and **join** at
min vertices — any one constraint suffices.

The traversal is an **explicit frame machine**, not Python recursion:
each vertex whose in-edges must be merged gets one :class:`_Frame` on an
explicit stack, holding its merge accumulator and the index of the next
in-edge to query.  ``_enter`` plays the role of Figure 5's ``prove()``
call boundary — budget checks, memo lookup, axioms, cycle detection — and
either produces a finished value or pushes a frame; the trampoline in
``_run_query`` feeds each finished child value to the frame below it.  Proof
witnesses are assembled bottom-up exactly as frames pop, so the emitted
certificates are identical to those of a depth-first recursion.  Because
the stack is an ordinary list, proof depth is bounded by the ``max_depth``
*frame* budget alone — never by the interpreter's recursion limit — and
deeply chained e-SSA programs (see ``repro fuzz --profile deep-chain``)
solve under ``sys.setrecursionlimit(1000)`` unharmed.

Cycles are detected via the ``active`` map of budgets of the frames
currently on the stack: re-entering an active vertex with a *smaller*
budget means the cycle has positive weight (an *amplifying* cycle, e.g.
``j := j + 1``) and the path fails; a revisit with equal or larger budget
is a harmless cycle and returns ``Reduced`` ("the cycle does not
influence the distance").

Memoization uses budget subsumption exactly as in Figure 5: a ``True`` at
budget ``e`` answers every query with ``c >= e``; a ``False`` at ``e``
answers every ``c <= e``; a ``Reduced`` at ``e`` answers ``c >= e``.
Memo entries are tagged ``(direction, source, vertex)`` so one session
can serve both the upper- and lower-bound problems of a
:class:`~repro.core.graph.DualGraph` — and every query of every check
site of a function — without cross-contamination.  Entries derived after
a budget exhaustion are conservative, not ground truth, and are never
recorded.

``steps`` counts ``_enter`` invocations (one per Figure-5 ``prove()``
call) — the unit behind the paper's "fewer than 10 analysis steps per
bounds check" result; ``frames_pushed``/``frontier_peak`` expose the
frame machine's size to the pass-manager counters.

Resource budgets (``max_steps``, ``max_depth``, ``deadline``) bound every
query: a JIT must never hang inside the optimizer, so exhausting any
budget abandons the proof with the conservative answer ``False`` ("keep
the check") and flags ``budget_exhausted`` on the outcome.  Budgets are
per *query*, so a session shared across check sites gives every site the
same allowance a private session would.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.certify.witness import (
    AxiomWitness,
    CycleWitness,
    EdgeWitness,
    PhiWitness,
    Witness,
    is_closed,
)
from repro.core.graph import Edge, InequalityGraph, Node
from repro.core.lattice import ProofResult

#: Default per-query step budget; generous compared to the paper's
#: "fewer than 10 steps per check" observation.
DEFAULT_MAX_STEPS = 200_000

#: How many steps pass between wall-clock deadline checks.
_DEADLINE_STRIDE = 256

#: The empty open set: values whose derivation closed every cycle within
#: its own subtree carry this and may be memoized persistently.
_NO_OPEN: frozenset = frozenset()


@dataclass
class ProveOutcome:
    """Result of one ``demand_prove`` query."""

    result: ProofResult
    #: Solver steps this query consumed (sessions also keep a cumulative
    #: ``DemandProver.steps`` across queries).
    steps: int
    #: True when the query abandoned the proof because a resource budget
    #: (steps, depth, or wall-clock deadline) ran out; the result is then a
    #: conservative ``False``.
    budget_exhausted: bool = False
    #: Which budget ran out first ("steps" | "depth" | "deadline").
    exhausted_budget: Optional[str] = None
    #: Proof witness of a proven result (only recorded when the session
    #: was created with ``witnesses=True``); an independently checkable
    #: certificate, see :mod:`repro.certify`.
    witness: Optional[Witness] = None
    #: Peak frame-stack depth this query reached.  On an
    #: ``exhausted_budget == "depth"`` outcome this is exactly
    #: ``max_depth + 1`` — the frame count actually built when the bound
    #: refused the next one (the recursive engine under-reported this).
    depth_reached: int = 0

    @property
    def proven(self) -> bool:
        return self.result.proven


@dataclass
class _Memo:
    """Per-(direction, source, vertex) memo with budget subsumption.

    Entries come in two strengths.  **Persistent** bounds are
    context-free: their derivation closed every cycle within its own
    subtree, so they hold in any later traversal context — including a
    different query of the same session.  **Volatile** bounds
    (``v_*_at``) came from a derivation with a cycle leaf closing on a
    vertex still active *above* the recorded frame; such a result is
    only meaningful while that ancestor's traversal is the context, so
    the session erases the volatile slots at every query boundary.
    Without the split, a shared dual-direction session would let one
    check's amplifying-cycle ``False`` poison a later check's query that
    a fresh traversal proves.

    A proven witness is stored alongside its bound only when it is
    *closed* (no cycle leaves escaping its own subtree): a closed
    witness recorded at budget ``e`` replays under any budget ``c >= e``
    regardless of the traversal context, so budget-subsumption reuse stays
    certifiable.  Open witnesses are never stored; a later hit on such
    an entry re-derives the witness in its own context (witness-emitting
    sessions only — plain sessions never consult the witness slots).
    """

    true_at: Optional[int] = None  # smallest budget proven True
    false_at: Optional[int] = None  # largest budget proven False
    reduced_at: Optional[int] = None  # smallest budget proven Reduced
    true_witness: Optional[Witness] = None
    reduced_witness: Optional[Witness] = None
    # Query-local bounds (cycle-dependent derivations; see class docstring).
    v_true_at: Optional[int] = None
    v_false_at: Optional[int] = None
    v_reduced_at: Optional[int] = None

    def lookup(self, budget: int) -> Optional[ProofResult]:
        if (self.true_at is not None and budget >= self.true_at) or (
            self.v_true_at is not None and budget >= self.v_true_at
        ):
            return ProofResult.TRUE
        if (self.false_at is not None and budget <= self.false_at) or (
            self.v_false_at is not None and budget <= self.v_false_at
        ):
            return ProofResult.FALSE
        if (self.reduced_at is not None and budget >= self.reduced_at) or (
            self.v_reduced_at is not None and budget >= self.v_reduced_at
        ):
            return ProofResult.REDUCED
        return None

    def witness_for(self, result: ProofResult, budget: int) -> Optional[Witness]:
        """The stored witness, but only when the *persistent* bound
        justifies the hit (a volatile hit at a smaller budget must not
        borrow a witness recorded for a weaker claim)."""
        if (
            result is ProofResult.TRUE
            and self.true_at is not None
            and budget >= self.true_at
        ):
            return self.true_witness
        if (
            result is ProofResult.REDUCED
            and self.reduced_at is not None
            and budget >= self.reduced_at
        ):
            return self.reduced_witness
        return None

    def record(
        self, budget: int, result: ProofResult, witness: Optional[Witness] = None
    ) -> None:
        if witness is not None and not is_closed(witness):
            witness = None
        if result is ProofResult.TRUE:
            if self.true_at is None or budget < self.true_at:
                self.true_at = budget
                self.true_witness = witness
            elif witness is not None and self.true_witness is None:
                # Same-or-weaker bound, but now with a replayable
                # witness: attach it to the recorded bound only when it
                # proves at least that bound.
                if budget <= self.true_at:
                    self.true_witness = witness
        elif result is ProofResult.FALSE:
            if self.false_at is None or budget > self.false_at:
                self.false_at = budget
        else:
            if self.reduced_at is None or budget < self.reduced_at:
                self.reduced_at = budget
                self.reduced_witness = witness
            elif witness is not None and self.reduced_witness is None:
                if budget <= self.reduced_at:
                    self.reduced_witness = witness

    def record_volatile(self, budget: int, result: ProofResult) -> None:
        if result is ProofResult.TRUE:
            if self.v_true_at is None or budget < self.v_true_at:
                self.v_true_at = budget
        elif result is ProofResult.FALSE:
            if self.v_false_at is None or budget > self.v_false_at:
                self.v_false_at = budget
        else:
            if self.v_reduced_at is None or budget < self.v_reduced_at:
                self.v_reduced_at = budget

    def clear_volatile(self) -> None:
        self.v_true_at = None
        self.v_false_at = None
        self.v_reduced_at = None


class _Frame:
    """One suspended merge: the continuation of Figure 5's ``prove(v, c)``
    while its in-edges are queried one by one.

    ``pending`` is the in-edge whose child query is outstanding; the merge
    accumulators (``result``/``branches``/``complete`` for φ-meet,
    ``best`` for min-merge, ``children`` for the PRE variant, ``open``
    for the cycle targets the merged value depends on) live here instead
    of on the interpreter stack.
    """

    __slots__ = (
        "v",
        "c",
        "direction",
        "in_edges",
        "index",
        "pending",
        "is_phi",
        "memo_key",
        "active_key",
        "result",
        "branches",
        "complete",
        "best",
        "children",
        "open",
    )

    def __init__(self, v, c, direction, in_edges, is_phi, memo_key, active_key):
        self.v = v
        self.c = c
        self.direction = direction
        self.in_edges = in_edges
        self.index = 0
        self.pending = None
        self.is_phi = is_phi
        self.memo_key = memo_key
        self.active_key = active_key


class DemandProver:
    """One proof session: memo, cycle state, and the frame machine.

    A session may serve many queries — all the check sites of a function,
    in both directions of a :class:`~repro.core.graph.DualGraph` — with
    direction- and source-tagged memo reuse between them (resource
    budgets stay per query).  Construct with a single
    :class:`~repro.core.graph.InequalityGraph` (or one direction view of
    a dual graph) for a fixed-direction session, or with a ``DualGraph``
    and pass ``direction=`` per query.

    ``edge_filter`` optionally restricts which edges the traversal may
    use; the driver passes a same-block filter to replicate the paper's
    local/global classification of removed checks.
    """

    def __init__(
        self,
        graph,
        edge_filter: Optional[Callable[[Edge], bool]] = None,
        max_steps: int = DEFAULT_MAX_STEPS,
        max_depth: Optional[int] = None,
        deadline: Optional[float] = None,
        witnesses: bool = False,
    ) -> None:
        self._graph = graph
        views = getattr(graph, "views", None)
        if views is not None:  # a DualGraph: serves both directions
            self._views = dict(views)
            self._default_direction: Optional[str] = None
        else:
            self._views = {graph.direction: graph}
            self._default_direction = graph.direction
        self._edge_filter = edge_filter
        self._max_steps = max_steps
        self._max_depth = max_depth
        self._deadline = deadline
        self._deadline_at: Optional[float] = None
        #: Record proof witnesses (certificates) alongside proven results.
        self._witnesses = witnesses
        self._memo: Dict[Tuple[str, Node, Node], _Memo] = {}
        #: Memo keys holding volatile (query-local) bounds, erased at the
        #: next query boundary.
        self._volatile_keys: set = set()
        self._active: Dict[Tuple[str, Node], int] = {}
        #: Cumulative session counters (per-query numbers live on the
        #: outcome).
        self.steps = 0
        self.steps_by_direction: Dict[str, int] = {"upper": 0, "lower": 0}
        self.frames_pushed = 0
        self.frontier_peak = 0
        #: Set when any resource budget ran out during this session.
        self.budget_exhausted = False
        #: "steps" | "depth" | "deadline" — first budget that ran out.
        self.exhausted_budget: Optional[str] = None
        # Per-query state (reset by _begin_query).
        self._query_base = 0
        self._query_peak = 0
        self._query_exhausted: Optional[str] = None

    # ------------------------------------------------------------------
    # Entry points.
    # ------------------------------------------------------------------

    def demand_prove(
        self,
        source: Node,
        target: Node,
        budget: int,
        direction: Optional[str] = None,
    ) -> ProveOutcome:
        """Figure 5's ``demandProve``: is ``target - source <= budget``?"""
        direction = self._resolve_direction(direction)
        self._begin_query()
        result, witness, _ = self._run_query(source, target, budget, direction)
        return ProveOutcome(
            result,
            self.steps - self._query_base,
            self._query_exhausted is not None,
            self._query_exhausted,
            witness if result.proven else None,
            depth_reached=self._query_peak,
        )

    def _resolve_direction(self, direction: Optional[str]) -> str:
        if direction is None:
            if self._default_direction is None:
                raise ValueError(
                    "a dual-graph session needs an explicit query direction"
                )
            return self._default_direction
        if direction not in self._views:
            raise ValueError(f"no {direction!r} view in this session")
        return direction

    def _begin_query(self) -> None:
        self._query_base = self.steps
        self._query_peak = 0
        self._query_exhausted = None
        self._deadline_at = (
            time.monotonic() + self._deadline if self._deadline is not None else None
        )
        if self._volatile_keys:
            # Cycle-dependent bounds recorded by the previous query hold
            # only in that query's traversal context.
            for key in self._volatile_keys:
                self._memo[key].clear_volatile()
            self._volatile_keys.clear()

    # ------------------------------------------------------------------
    # The frame machine (Figure 5's ``prove``, iteratively).
    # ------------------------------------------------------------------

    def _run_query(self, a: Node, v: Node, c: int, direction: str):
        """Trampoline: ``_enter`` either finishes a value or pushes a
        frame; finished values feed the topmost frame's merge until the
        stack drains back to the root answer."""
        stack: List[_Frame] = []
        value = self._enter(a, v, c, direction, stack)
        while stack:
            frame = stack[-1]
            if value is not None:
                # Deliver the pending child's value to the frame's merge;
                # a non-None return means the merge short-circuited.
                if frame.is_phi:
                    value = self._phi_absorb(frame, value)
                else:
                    value = self._min_absorb(frame, value)
                if value is not None:
                    value = self._pop(frame, value, stack)
                    continue
            if frame.index < len(frame.in_edges):
                edge = frame.in_edges[frame.index]
                frame.index += 1
                frame.pending = edge
                value = self._enter(
                    a, edge.source, frame.c - edge.weight, direction, stack
                )
            else:
                value = (
                    self._phi_finish(frame)
                    if frame.is_phi
                    else self._min_finish(frame)
                )
                value = self._pop(frame, value, stack)
        return value

    def _enter(self, a: Node, v: Node, c: int, direction: str, stack: List[_Frame]):
        """The ``prove()`` call boundary: budget checks, memo lookup,
        axioms, and cycle detection; pushes a merge frame (returning
        ``None``) when the vertex's in-edges must be traversed."""
        self.steps += 1
        self.steps_by_direction[direction] = (
            self.steps_by_direction.get(direction, 0) + 1
        )
        if self.steps - self._query_base > self._max_steps:
            # Defensive fuel: the algorithm terminates on well-formed
            # graphs, but corrupted graphs or adversarial inputs must not
            # hang the compiler.
            return self._exhaust("steps")
        if self._max_depth is not None and len(stack) > self._max_depth:
            return self._exhaust("depth")
        if (
            self._deadline_at is not None
            and self.steps % _DEADLINE_STRIDE == 0
            and time.monotonic() > self._deadline_at
        ):
            return self._exhaust("deadline")

        memo_key = (direction, a, v)
        memo = self._memo.get(memo_key)
        if memo is not None:
            cached = memo.lookup(c)
            if cached is not None:
                stored = memo.witness_for(cached, c)
                if not self._witnesses or not cached.proven or stored is not None:
                    return self._memo_hit(cached, stored)
                # Witness mode, proven result, but the memo entry carries
                # no replayable witness (the original one was open):
                # re-derive in the current context rather than answering
                # without a certificate.

        view = self._views[direction]

        # Reached the source: the empty path has weight 0.
        if v == a and c >= 0:
            return self._axiom_value(v, "source")

        # Two constants relate arithmetically (exactly), no traversal needed.
        if v.kind == "const" and a.kind == "const":
            difference = view.const_value(v) - view.const_value(a)
            if difference <= c:
                return self._axiom_value(v, "const-const")
            return self._false_value()

        # Array lengths are non-negative (the paper represents this as an
        # edge of G_I): in the upper graph, const(k) <= len(A) + k for any
        # k, which answers a constant target against a length source
        # directly — e.g. st0 <= -1 <= A.length - 1 in the running example.
        if (
            v.kind == "const"
            and a.kind == "len"
            and direction == "upper"
            and v.value <= c
        ):
            return self._axiom_value(v, "len-nonneg")

        in_edges = self._in_edges(view, v)
        if not in_edges:
            return self._false_value()

        active_key = (direction, v)
        active_budget = self._active.get(active_key)
        if active_budget is not None:
            if c < active_budget:
                # The cycle strengthened the query: positive-weight
                # (amplifying) cycle, cannot bound the variable.
                return self._cycle_false_value(v)
            return self._cycle_value(v)

        self._active[active_key] = c
        frame = _Frame(v, c, direction, in_edges, view.is_phi(v), memo_key, active_key)
        self._prepare_frame(frame)
        stack.append(frame)
        self.frames_pushed += 1
        depth = len(stack)
        if depth > self._query_peak:
            self._query_peak = depth
        if depth > self.frontier_peak:
            self.frontier_peak = depth
        return None

    def _pop(self, frame: _Frame, value, stack: List[_Frame]):
        stack.pop()
        del self._active[frame.active_key]
        value = self._seal_value(frame, value)
        self._record(frame, value)
        return value

    def _in_edges(self, view, v: Node):
        edges = view.in_edges(v)
        if self._edge_filter is not None:
            edges = [e for e in edges if self._edge_filter(e)]
        return edges

    def _exhaust(self, which: str):
        # A conservative False is always sound: the check merely stays in.
        self.budget_exhausted = True
        if self.exhausted_budget is None:
            self.exhausted_budget = which
        if self._query_exhausted is None:
            self._query_exhausted = which
        return self._false_value()

    # ------------------------------------------------------------------
    # Value hooks (overridden by the PRE variant, which threads insertion
    # sets through the same machine).  Plain values are
    # ``(result, witness, open)`` triples: ``open`` is the set of cycle
    # targets the derivation depends on that are not closed within the
    # value's own subtree — the plain-session analog of the witness
    # grammar's ``open`` sets, tracked even when no witness is built so
    # that :meth:`_record` can tell context-free results (memoized
    # persistently) from cycle-dependent ones (memoized per query).
    # ------------------------------------------------------------------

    def _false_value(self):
        return (ProofResult.FALSE, None, _NO_OPEN)

    def _cycle_false_value(self, v: Node):
        # An amplifying cycle refutes this path only relative to the
        # active entry it closed on.
        return (ProofResult.FALSE, None, frozenset((v,)))

    def _memo_hit(self, cached: ProofResult, stored: Optional[Witness]):
        return (cached, stored, _NO_OPEN)

    def _axiom_value(self, v: Node, rule: str):
        return (
            ProofResult.TRUE,
            AxiomWitness(v, rule) if self._witnesses else None,
            _NO_OPEN,
        )

    def _cycle_value(self, v: Node):
        return (
            ProofResult.REDUCED,
            CycleWitness(v) if self._witnesses else None,
            frozenset((v,)),
        )

    def _prepare_frame(self, frame: _Frame) -> None:
        if frame.is_phi:
            frame.result = ProofResult.TRUE
            frame.branches = []
            frame.complete = self._witnesses
        else:
            frame.result = ProofResult.FALSE
            frame.best = None
        frame.open = _NO_OPEN

    # Max vertex: meet over all in-edges (all must prove); short-circuits
    # on False.

    def _phi_absorb(self, frame: _Frame, value):
        sub_result, sub_w, sub_open = value
        frame.result = frame.result.meet(sub_result)
        if frame.result is ProofResult.FALSE:
            # The refutation rests on this child alone; earlier children's
            # cycle dependencies are irrelevant to it.
            return (ProofResult.FALSE, None, sub_open)
        if sub_w is None:
            frame.complete = False
        frame.open = frame.open | sub_open
        frame.branches.append((frame.pending.source, frame.pending.weight, sub_w))
        return None

    def _phi_finish(self, frame: _Frame):
        witness = (
            PhiWitness(frame.v, tuple(frame.branches)) if frame.complete else None
        )
        return (frame.result, witness, frame.open)

    # Min vertex: join over all in-edges (any suffices); short-circuits
    # on True.

    def _min_absorb(self, frame: _Frame, value):
        sub_result, sub_w, sub_open = value
        frame.open = frame.open | sub_open
        joined = frame.result.join(sub_result)
        if joined is not frame.result or frame.best is None:
            if sub_result is joined:
                frame.best = (frame.pending, sub_w, sub_open)
        frame.result = joined
        if frame.result is ProofResult.TRUE:
            return self._min_finish(frame)
        return None

    def _min_finish(self, frame: _Frame):
        if not frame.result.proven or frame.best is None:
            # A min-False needs every alternative refuted, so it inherits
            # all their cycle dependencies.
            return (frame.result, None, frame.open)
        edge, sub_w, sub_open = frame.best
        witness = (
            EdgeWitness(frame.v, edge.source, edge.weight, sub_w)
            if self._witnesses and sub_w is not None
            else None
        )
        return (frame.result, witness, sub_open)

    def _seal_value(self, frame: _Frame, value):
        """Close cycle dependencies on the popped vertex itself: a cycle
        back to ``frame.v`` replays identically whenever ``frame.v`` is
        re-queried, so it does not make the value context-dependent."""
        result, witness, open_set = value
        if frame.v in open_set:
            return (result, witness, open_set - frozenset((frame.v,)))
        return value

    def _record(self, frame: _Frame, value) -> None:
        if self._query_exhausted is not None:
            # Everything popped after an exhaustion is conservative, not
            # ground truth; recording it would let one starved query
            # poison the session memo for later, better-funded ones.
            return
        result, witness, open_set = value
        memo = self._memo.setdefault(frame.memo_key, _Memo())
        if open_set:
            memo.record_volatile(frame.c, result)
            self._volatile_keys.add(frame.memo_key)
        else:
            memo.record(frame.c, result, witness)


def demand_prove(
    graph: InequalityGraph,
    source: Node,
    target: Node,
    budget: int,
    edge_filter: Optional[Callable[[Edge], bool]] = None,
) -> ProveOutcome:
    """Run one fresh proof session (the common entry point)."""
    return DemandProver(graph, edge_filter).demand_prove(source, target, budget)
