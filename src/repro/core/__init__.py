"""The ABCD algorithm: inequality graph, solver, driver, PRE."""

from repro.core.abcd import (
    ABCDConfig,
    ABCDReport,
    CheckAnalysis,
    optimize_function,
    optimize_program,
)
from repro.core.constraints import GraphBundle, build_graphs, collect_array_vars
from repro.core.exhaustive import compute_distances, exhaustive_prove
from repro.core.graph import Edge, InequalityGraph, Node, const_node, len_node, var_node
from repro.core.lattice import ProofResult, join_all, meet_all
from repro.core.pre import InsertionPoint, PREDecision, PREProver, attempt_pre
from repro.core.solver import DemandProver, ProveOutcome, demand_prove

__all__ = [
    "ABCDConfig",
    "ABCDReport",
    "CheckAnalysis",
    "optimize_function",
    "optimize_program",
    "GraphBundle",
    "build_graphs",
    "collect_array_vars",
    "InequalityGraph",
    "Node",
    "Edge",
    "var_node",
    "len_node",
    "const_node",
    "ProofResult",
    "meet_all",
    "join_all",
    "DemandProver",
    "ProveOutcome",
    "demand_prove",
    "compute_distances",
    "exhaustive_prove",
    "PREProver",
    "PREDecision",
    "InsertionPoint",
    "attempt_pre",
]
