"""The solver's three-point lattice: ``True > Reduced > False``.

Paper, Section 5: when the recursive exploration returns, results merge
according to the min-max semantics of the inequality graph —

* a **max** vertex (φ-defined, set ``V_φ``) merges with the *meet* ``∧``
  (all incoming paths must prove the bound: weakest constraint wins);
* a **min** vertex (everything else) merges with the *join* ``∨`` (any
  incoming constraint suffices: strongest constraint wins).
"""

from __future__ import annotations

import enum
import functools


@enum.unique
class ProofResult(enum.Enum):
    """Result of one ``prove()`` invocation (Figure 5)."""

    TRUE = 2
    REDUCED = 1
    FALSE = 0

    @property
    def proven(self) -> bool:
        """True / Reduced both establish the queried bound."""
        return self is not ProofResult.FALSE

    def meet(self, other: "ProofResult") -> "ProofResult":
        """``∧`` — used at max (φ) vertices: the weaker result wins."""
        return self if self.value <= other.value else other

    def join(self, other: "ProofResult") -> "ProofResult":
        """``∨`` — used at min vertices: the stronger result wins."""
        return self if self.value >= other.value else other


def meet_all(results) -> ProofResult:
    """Meet of an iterable (identity = TRUE, the lattice top)."""
    return functools.reduce(ProofResult.meet, results, ProofResult.TRUE)


def join_all(results) -> ProofResult:
    """Join of an iterable (identity = FALSE, the lattice bottom)."""
    return functools.reduce(ProofResult.join, results, ProofResult.FALSE)
