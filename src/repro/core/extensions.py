"""Post-ABCD extensions from Section 7 of the paper.

Currently: the Section-7.2 *merged unsigned check*.  When both the lower-
and the upper-bound check of one access survive ABCD, they can be fused
into a single :class:`~repro.ir.instructions.CheckUnsigned` that performs
one unsigned comparison — Java's zero lower bound turns a negative index
into a huge unsigned value that necessarily exceeds the length.  In the
VM's cycle model the fused check costs 2 cycles instead of 3.

The transformation is purely local: it looks for the lowering's canonical
pattern (lower check, its π, upper check on the π'd index) with both
checks unguarded, replaces the pair, and keeps the π-assignments — their
predicates still hold after the merged check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.ir.function import Function, Program
from repro.ir.instructions import (
    CheckLower,
    CheckUnsigned,
    CheckUpper,
    Instr,
    Pi,
    Var,
)


@dataclass
class MergeReport:
    """Outcome of the unsigned-merge pass."""

    merged_pairs: int = 0

    def merge(self, other: "MergeReport") -> None:
        self.merged_pairs += other.merged_pairs


def merge_unsigned_checks(fn: Function) -> MergeReport:
    """Fuse surviving lower/upper check pairs in place (Section 7.2)."""
    report = MergeReport()
    for block in fn.blocks.values():
        block.body = _merge_in_body(block.body, report)
    return report


def merge_program_unsigned_checks(program: Program) -> MergeReport:
    report = MergeReport()
    for fn in program.functions.values():
        report.merge(merge_unsigned_checks(fn))
    return report


def _merge_in_body(body: List[Instr], report: MergeReport) -> List[Instr]:
    result: List[Instr] = []
    index = 0
    while index < len(body):
        match = _match_pair(body, index)
        if match is None:
            result.append(body[index])
            index += 1
            continue
        lower, middle_pi, upper, consumed = match
        assert isinstance(lower.index, Var)
        result.append(
            CheckUnsigned(
                array=upper.array,
                index=lower.index,
                lower_id=lower.check_id,
                upper_id=upper.check_id,
            )
        )
        if middle_pi is not None:
            result.append(middle_pi)
        report.merged_pairs += 1
        index += consumed
    return result


def _match_pair(body: List[Instr], start: int):
    """Match ``CheckLower v; [v' := π(v)]; CheckUpper A, v|v'`` with both
    checks unguarded.  Returns (lower, optional π, upper, instructions
    consumed) or ``None``."""
    lower = body[start]
    if not isinstance(lower, CheckLower) or lower.guard_group is not None:
        return None
    if not isinstance(lower.index, Var):
        return None

    # Direct adjacency.
    if start + 1 < len(body):
        upper = body[start + 1]
        if (
            isinstance(upper, CheckUpper)
            and upper.guard_group is None
            and upper.index == lower.index
        ):
            return lower, None, upper, 2

    # The canonical lowered shape with the lower check's π in between.
    if start + 2 < len(body):
        middle = body[start + 1]
        upper = body[start + 2]
        if (
            isinstance(middle, Pi)
            and isinstance(lower.index, Var)
            and middle.src == lower.index.name
            and isinstance(upper, CheckUpper)
            and upper.guard_group is None
            and upper.index == Var(middle.dest)
        ):
            return lower, middle, upper, 3
    return None
