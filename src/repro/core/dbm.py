"""The DBM closure tier: answer every check from a closed matrix row.

Miné-style difference-bound-matrix domains solve the same ``v - u <= c``
constraint systems ABCD queries on demand, but by **closure**: pay one
row closure per proof source, then answer every check against that
source in O(1) from the closed row.  This module implements that second
solver tier behind the :class:`~repro.core.backend.SolverBackend`
interface.

A plain Floyd–Warshall closure would be wrong here: the inequality graph
is not a pure difference system.  φ vertices are **meet** (max) points —
every incoming control-flow path must bound the value — while ordinary
vertices are **join** (min) points, three axiom families
(source-reflexivity, const-const arithmetic, the ``len >= 0`` fact)
short-circuit the demand solver's traversal, and the demand engine's
cycle rule is *path-sensitive*: the very same loop is harmless along one
entry path and amplifying along another (compare a loop counter reached
before vs. after its increment).  No value-iteration schedule converges
on that system in a value-independent number of rounds, so the row
closure instead runs the Figure-5 recursion **in threshold space**: each
matrix cell ``D[v]`` is the least budget at which ``v - source <= c`` is
provable, an element of ``Z ∪ {±∞}`` (``+∞`` = unprovable at any budget,
``-∞`` = provable at every budget, e.g. through a non-positive cycle).
The cell equations are the demand solver's own rules with the budget
argument eliminated:

    D(v) = min( axiom(v),  merge over in-edges of v )
    merge = min over ``D(u) + w``   at min (join) vertices,
            max over ``D(u) + w``   at φ (meet) vertices,

except that a const target against a const source is *exact* — the cell
is pinned to the arithmetic gap and never consults edges, mirroring
``_enter``'s const-const short-circuit.

Cycles are where the budget-space and threshold-space formulations must
agree exactly.  The demand solver re-enters an active vertex with budget
``c - W`` (``W`` = the cycle's total weight) and classifies by
comparison with the active budget ``c``: amplifying iff ``W > 0``.  The
comparison is budget-*independent* — it depends only on accumulated edge
weight — so the closure carries the accumulated weight ``acc`` of every
active vertex and classifies a re-entry the same way: ``acc' <=
acc[active]`` is a harmless cycle and contributes ``-∞`` ("the cycle
does not influence the distance"), ``acc' > acc[active]`` is an
amplifying cycle (``j := j + 1`` with no π bound) and contributes
``+∞``.  That is this domain's analog of negative-cycle detection, and
it is evaluated per *path*, exactly as the demand engine does.

Cell memoization follows the demand solver's persistent-memo
discipline: a value whose derivation closed every cycle within its own
subtree (empty ``open`` set after sealing the vertex's own cycles) is
context-free and becomes a matrix cell; a value still depending on an
active ancestor is context-local and is recomputed per closure walk.
Every top-level cell evaluation seals all of its cycles by the time it
pops, so each queried cell — and, transitively, most of the row — ends
up exact.

Certification adds **zero new trust** in any of this: the closed row is
a predecessor structure, and :func:`repro.certify.witness.
witness_from_choices` rebuilds the same axiom/edge/φ derivation
skeletons the demand solver emits, replayed by the unchanged
:mod:`repro.certify.checker`.  The witness carries no matrix cell — the
checker re-telescopes every budget from the root query — so a corrupted
cell either breaks choice consistency (caught at build time) or yields
a certificate the replay rejects (see ``tests/test_solver_backends.py``).

``cells_relaxed`` counts every cell/edge evaluation of the closure —
the closure tier's cost unit, reported next to the demand engine's
``solver.steps`` in the pass-manager counters and gated per benchmark
in ``benchmarks/perf_budget.json``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.certify.witness import WitnessBuildError, witness_from_choices
from repro.core.backend import SolverBackend, SolverQuery
from repro.core.graph import Node
from repro.core.lattice import ProofResult
from repro.core.solver import DEFAULT_MAX_STEPS, ProveOutcome

INF = math.inf
NEG_INF = -math.inf

#: Cell states: not yet computed / exact threshold / conservatively
#: abandoned (resource budget or a dependency on an abandoned cell).
_UNKNOWN, _EXACT, _EXHAUSTED = 0, 1, 2

#: Open-set sentinel marking a value that depends on an exhausted cell:
#: never a real vertex index, so such a value is never sealed into an
#: exact matrix cell.
_TAINT = -1

_NO_OPEN: frozenset = frozenset()

#: How many evaluation steps pass between wall-clock deadline checks.
_DEADLINE_STRIDE = 256


class _EvalAbandon(Exception):
    """A per-cell resource budget ran out ("steps" | "deadline")."""

    def __init__(self, which: str) -> None:
        super().__init__(which)
        self.which = which


@dataclass
class _Row:
    """One matrix row: least provable budgets against one source."""

    source: Node
    #: Per vertex index: the provable threshold (int or ±inf);
    #: meaningful when the matching ``state`` is not ``_UNKNOWN``.
    values: List[float]
    #: Per vertex index: the least budget provable by a *cycle-free*
    #: derivation (``+inf`` when every proof leans on a harmless cycle).
    #: The demand solver's ``True``/``Reduced`` distinction in threshold
    #: form: a query labels ``TRUE`` at or above this, ``REDUCED``
    #: between the two thresholds.
    values_true: List[float]
    state: bytearray
    #: Per vertex index: the best axiom bound (int or +inf) ...
    axiom: List[float]
    #: ... and the axiom rule attaining it (None when no axiom applies).
    axiom_rule: List[Optional[str]]
    #: Which resource ran out, for cells abandoned conservatively.
    exhausted: Dict[int, str] = field(default_factory=dict)


class _Frame:
    """One suspended threshold merge (the closure's analog of the demand
    solver's ``_Frame``): the vertex's merge accumulator while its
    in-edges are evaluated one by one."""

    __slots__ = ("i", "acc", "edges", "index", "axiom_bound", "merged", "merged_true", "is_phi", "open")

    def __init__(self, i: int, acc: int, edges, axiom_bound: float, is_phi: bool):
        self.i = i
        self.acc = acc
        self.edges = edges
        self.index = 0
        self.axiom_bound = axiom_bound
        self.merged = NEG_INF if is_phi else INF
        self.merged_true = self.merged
        self.is_phi = is_phi
        self.open: frozenset = _NO_OPEN


class ClosureMatrix:
    """A dense difference-bound matrix over one direction's vertex
    universe, closed row by row — and cell by cell — on demand
    (*incremental* closure: ABCD only ever queries a handful of sources
    and targets, so whole-universe closure would mostly compute cells
    nobody reads; each closed cell answers all later queries in O(1)).

    ``extra_vertices`` registers query endpoints that no edge mentions
    (constant check indices resolve against the virtual descending
    const-completion, which ``nodes()`` cannot enumerate).
    """

    def __init__(
        self,
        view,
        extra_vertices: Iterable[Node] = (),
        max_steps: int = DEFAULT_MAX_STEPS,
        deadline: Optional[float] = None,
    ) -> None:
        self._view = view
        universe = list(view.nodes())
        seen = set(universe)
        for node in extra_vertices:
            if node not in seen:
                seen.add(node)
                universe.append(node)
        universe.sort(key=str)  # deterministic across hash seeds
        self.vertices: List[Node] = universe
        self.index: Dict[Node, int] = {v: i for i, v in enumerate(universe)}
        # Dense materialization: per-vertex in-edge rows (including the
        # virtual descending const completion) resolved to indices once.
        self._in_edges: List[Tuple[Tuple[int, int], ...]] = []
        self._edge_objs: List[tuple] = []
        self._phi: List[bool] = []
        for v in universe:
            edges = tuple(view.in_edges(v))
            self._edge_objs.append(edges)
            self._in_edges.append(
                tuple((self.index[e.source], e.weight) for e in edges)
            )
            self._phi.append(view.is_phi(v))
        self._max_steps = max_steps
        self._deadline = deadline
        self.rows: Dict[Node, _Row] = {}
        #: Closure cost: every cell/edge evaluation counts one unit.
        self.cells_relaxed = 0
        self.rows_closed = 0
        # Per-evaluation resource state.
        self._eval_steps = 0
        self._eval_deadline_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Rows and axioms.
    # ------------------------------------------------------------------

    def row(self, source: Node) -> _Row:
        row = self.rows.get(source)
        if row is None:
            n = len(self.vertices)
            axiom: List[float] = [INF] * n
            axiom_rule: List[Optional[str]] = [None] * n
            for i, v in enumerate(self.vertices):
                axiom[i], axiom_rule[i] = self._axiom_for(source, v)
            row = _Row(source, [INF] * n, [INF] * n, bytearray(n), axiom, axiom_rule)
            self.rows[source] = row
            self.rows_closed += 1
        return row

    def _axiom_for(self, source: Node, v: Node) -> Tuple[float, Optional[str]]:
        """Best axiom bound on ``v`` against ``source`` (the leaf rules of
        the demand solver's ``_enter``).  Apart from the exact const-const
        case these are *fallthrough* bounds: below them the demand solver
        keeps traversing edges, so the cell is ``min(axiom, merge)``."""
        view = self._view
        if source.kind == "const" and v.kind == "const":
            # Exact arithmetic fact — pins the cell, never merged.
            return view.const_value(v) - view.const_value(source), "const-const"
        if v == source:
            return 0, "source"
        if (
            v.kind == "const"
            and source.kind == "len"
            and view.direction == "upper"
        ):
            return v.value, "len-nonneg"
        return INF, None

    # ------------------------------------------------------------------
    # Cell closure: the Figure-5 recursion in threshold space.
    # ------------------------------------------------------------------

    def ensure(self, row: _Row, target: Node) -> None:
        """Close the cell for ``target`` (no-op when already closed)."""
        i = self.index.get(target)
        if i is not None and row.state[i] == _UNKNOWN:
            self._evaluate(row, i)

    def _evaluate(self, row: _Row, root: int) -> None:
        """One top-level cell evaluation: an iterative depth-first walk
        mirroring the demand solver's frame machine, with per-evaluation
        resource budgets (a closure must never hang the compiler)."""
        self._eval_steps = 0
        self._eval_deadline_at = (
            time.monotonic() + self._deadline if self._deadline is not None else None
        )
        stack: List[_Frame] = []
        active: Dict[int, int] = {}
        try:
            value = self._enter(row, root, 0, active)
            if value is None:
                stack.append(self._pending_frame)
            while stack:
                frame = stack[-1]
                if value is not None:
                    # Deliver the pending child's thresholds to the merge.
                    t, t_true, open_set = value
                    w = frame.edges[frame.index - 1][1]
                    x = t + w
                    x_true = t_true + w
                    if frame.is_phi:
                        if x > frame.merged:
                            frame.merged = x
                        if x_true > frame.merged_true:
                            frame.merged_true = x_true
                    else:
                        if x < frame.merged:
                            frame.merged = x
                        if x_true < frame.merged_true:
                            frame.merged_true = x_true
                    if open_set:
                        frame.open = frame.open | open_set
                    value = None
                if frame.index < len(frame.edges):
                    j, w = frame.edges[frame.index]
                    frame.index += 1
                    value = self._enter(row, j, frame.acc + w, active)
                    if value is None:
                        stack.append(self._pending_frame)
                else:
                    stack.pop()
                    value = self._pop(row, frame, active)
        except _EvalAbandon as exc:
            # Conservative abandon: the root keeps +inf ("unprovable at
            # any budget we can justify") and is flagged, matching the
            # demand engine's budget-exhausted False.
            row.state[root] = _EXHAUSTED
            row.values[root] = INF
            row.values_true[root] = INF
            row.exhausted[root] = exc.which
            return
        t, t_true, open_set = value
        if row.state[root] == _UNKNOWN:
            # The root depended on an exhausted cell (taint): its value is
            # a sound conservative upper threshold — substituting +inf for
            # an abandoned dependency only ever raises the result — but it
            # is not ground truth, so it is stored as exhausted.
            row.state[root] = _EXHAUSTED
            row.values[root] = t
            row.values_true[root] = t_true
            row.exhausted[root] = "steps"

    def _enter(self, row: _Row, i: int, acc: int, active: Dict[int, int]):
        """The ``prove()`` call boundary in threshold space: budget
        checks, closed-cell memo, axioms, and cycle classification;
        stages a merge frame (returning ``None``) when the vertex's
        in-edges must be evaluated."""
        self._eval_steps += 1
        self.cells_relaxed += 1
        if self._eval_steps > self._max_steps:
            raise _EvalAbandon("steps")
        if (
            self._eval_deadline_at is not None
            and self._eval_steps % _DEADLINE_STRIDE == 0
            and time.monotonic() > self._eval_deadline_at
        ):
            raise _EvalAbandon("deadline")
        state = row.state[i]
        if state == _EXACT:
            return (row.values[i], row.values_true[i], _NO_OPEN)
        if state == _EXHAUSTED:
            # Conservative stand-in; the taint keeps dependents uncached.
            return (row.values[i], row.values_true[i], frozenset((_TAINT,)))
        axiom = row.axiom[i]
        if row.axiom_rule[i] == "const-const":
            # Exact: the demand solver answers const-const without
            # consulting edges (False below the gap, True at or above).
            row.values[i] = axiom
            row.values_true[i] = axiom
            row.state[i] = _EXACT
            return (axiom, axiom, _NO_OPEN)
        edges = self._in_edges[i]
        if not edges:
            # Leaf: the axiom bound alone (+inf when none — unprovable).
            row.values[i] = axiom
            row.values_true[i] = axiom
            row.state[i] = _EXACT
            return (axiom, axiom, _NO_OPEN)
        prev = active.get(i)
        if prev is not None:
            # Re-entering an active vertex: the demand solver compares the
            # re-entry budget ``c - acc`` with the active budget
            # ``c - prev`` — budget-independent, so the closure can too.
            if acc <= prev:
                # Harmless cycle: proven at any budget, but never by a
                # cycle-free derivation — the Reduced leaf.
                return (NEG_INF, INF, frozenset((i,)))
            return (INF, INF, frozenset((i,)))  # amplifying cycle
        active[i] = acc
        self.cells_relaxed += len(edges)
        self._pending_frame = _Frame(i, acc, edges, axiom, self._phi[i])
        return None

    def _pop(self, row: _Row, frame: _Frame, active: Dict[int, int]):
        del active[frame.i]
        t = frame.merged
        if frame.axiom_bound < t:
            t = frame.axiom_bound
        t_true = frame.merged_true
        if frame.axiom_bound < t_true:
            t_true = frame.axiom_bound
        open_set = frame.open
        if frame.i in open_set:
            # Seal cycles closing on this vertex itself: they replay
            # identically whenever it is re-evaluated, so they do not
            # make the value context-dependent.
            open_set = open_set - frozenset((frame.i,))
        if not open_set:
            # Context-free: every cycle closed within the subtree — the
            # value holds in any traversal context and becomes a cell.
            row.values[frame.i] = t
            row.values_true[frame.i] = t_true
            row.state[frame.i] = _EXACT
        return (t, t_true, open_set)

    # ------------------------------------------------------------------
    # Queries against closed cells.
    # ------------------------------------------------------------------

    def query(
        self, row: _Row, target: Node
    ) -> Tuple[float, float, Optional[str]]:
        """``(threshold, true_threshold, exhausted)`` for one target: the
        least provable budget, the least budget provable cycle-free (the
        ``TRUE``/``REDUCED`` boundary), plus the resource label when the
        cell was abandoned and the thresholds are only conservative
        upper bounds."""
        i = self.index.get(target)
        if i is None:
            bounds, _choice = self._offrow_value(row, target)
            return bounds[0], bounds[1], None
        if row.state[i] == _UNKNOWN:
            self._evaluate(row, i)
        return row.values[i], row.values_true[i], row.exhausted.get(i)

    def _offrow_value(self, row: _Row, target: Node):
        """A vertex outside the registered universe: no real edge mentions
        it, so it participates in no cycle and one evaluation suffices
        (its only possible in-edges are the virtual const completion,
        whose anchor sources are all registered)."""
        bound, rule = self._axiom_for(row.source, target)
        if row.source.kind == "const" and target.kind == "const":
            return (bound, bound), ("axiom", rule)
        bound_true = bound
        best_edge = None
        for edge in self._view.in_edges(target):
            value, value_true, _ = self.query(row, edge.source)
            x = value + edge.weight
            if x < bound:
                bound = x
                best_edge = edge
            x_true = value_true + edge.weight
            if x_true < bound_true:
                bound_true = x_true
        if best_edge is not None:
            return (bound, bound_true), ("edge", best_edge)
        if rule is not None:
            return (bound, bound_true), ("axiom", rule)
        return (bound, bound_true), None

    def choose(self, row: _Row, vertex: Node):
        """The predecessor structure behind one cell, for
        :func:`~repro.certify.witness.witness_from_choices`."""
        i = self.index.get(vertex)
        if i is None:
            _bounds, choice = self._offrow_value(row, vertex)
            if choice is None:
                raise WitnessBuildError(f"no derivation for {vertex}")
            return choice
        if row.state[i] == _UNKNOWN:
            self._evaluate(row, i)
        d = row.values[i]
        if row.axiom_rule[i] is not None and d == row.axiom[i]:
            return ("axiom", row.axiom_rule[i])
        if self._phi[i]:
            return ("phi", self._edge_objs[i])
        for (j, w), edge in zip(self._in_edges[i], self._edge_objs[i]):
            if row.state[j] == _UNKNOWN:
                self._evaluate(row, j)
            if row.values[j] + w <= d:
                return ("edge", edge)
        raise WitnessBuildError(
            f"no in-edge of {vertex} attains its matrix bound {d} "
            f"(corrupted cell?)"
        )


class ClosureBackend(SolverBackend):
    """The closure tier behind the :class:`SolverBackend` interface.

    One lazily-built :class:`ClosureMatrix` per direction of the
    function's bundle; ``prepare`` closes every cell the batch will read,
    after which each ``prove`` is a cell lookup.  Witness emission
    (certify mode) reconstructs a derivation chain from the row's choice
    structure; a reconstruction failure — possible only on a corrupted
    matrix — conservatively keeps the check, exactly like a demand-side
    budget exhaustion.
    """

    name = "closure"

    def __init__(self, bundle, config, extra_vertices: Iterable[Node] = ()) -> None:
        self._bundle = bundle
        self._extra = tuple(extra_vertices)
        self._max_steps = config.max_steps
        self._deadline = config.deadline
        self._witnesses = config.certify
        self._matrices: Dict[str, ClosureMatrix] = {}

    def _matrix(self, direction: str) -> ClosureMatrix:
        matrix = self._matrices.get(direction)
        if matrix is None:
            dual = self._bundle.dual
            if dual is not None:
                view = dual.view(direction)
            else:
                view = self._bundle.upper if direction == "upper" else self._bundle.lower
            matrix = ClosureMatrix(
                view,
                extra_vertices=self._extra,
                max_steps=self._max_steps,
                deadline=self._deadline,
            )
            self._matrices[direction] = matrix
        return matrix

    def prepare(self, queries: Iterable[SolverQuery]) -> None:
        for source, target, _budget, direction in queries:
            matrix = self._matrix(direction)
            matrix.ensure(matrix.row(source), target)

    def prove(
        self, source: Node, target: Node, budget: int, direction: str
    ) -> ProveOutcome:
        matrix = self._matrix(direction)
        before = matrix.cells_relaxed
        row = matrix.row(source)
        threshold, true_threshold, exhausted = matrix.query(row, target)
        steps = matrix.cells_relaxed - before + 1
        if threshold > budget:
            if exhausted is not None:
                return ProveOutcome(ProofResult.FALSE, steps, True, exhausted)
            return ProveOutcome(ProofResult.FALSE, steps)
        result = (
            ProofResult.TRUE if true_threshold <= budget else ProofResult.REDUCED
        )
        witness = None
        if self._witnesses:
            try:
                witness = witness_from_choices(
                    target,
                    lambda v: matrix.choose(row, v),
                    max_nodes=self._max_steps,
                )
            except WitnessBuildError:
                # Without a replayable certificate the elimination must
                # not happen; conservative, like a demand exhaustion.
                return ProveOutcome(ProofResult.FALSE, steps, True, "steps")
        return ProveOutcome(result, steps, witness=witness)

    def counters(self) -> Dict[str, int]:
        cells = sum(m.cells_relaxed for m in self._matrices.values())
        rows = sum(m.rows_closed for m in self._matrices.values())
        return {"dbm_cells_relaxed": cells, "dbm_rows_closed": rows}
