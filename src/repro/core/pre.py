"""Partial-redundancy elimination of bounds checks (paper, Section 6).

A check that ``demandProve`` cannot establish on every path may still be
redundant on *some* paths — the classic case being a loop-invariant check.
The PRE extension runs a variant of the Figure-5 solver whose results carry
an **insertion set**: at a φ vertex where some arguments prove and others
fail, the failing in-edges become insertion candidates ("the False
arguments are collected during the backtracking into the insertion set").

For each insertion edge the compensating check is ``check A[V_i + d]``
(paper, Section 6.1): ``V_i`` is the φ argument flowing along the edge and
``d`` derives from the budget the solver carried when it reached that
argument — establishing ``V_i - len(A) <= c`` requires the upper check
``A[V_i + (-1 - c)]``; establishing ``V_i >= -c`` (lower, negated space)
requires the lower check on ``V_i + c``.

**Profitability** is profile-based and control-speculative: insert when the
cumulative execution frequency of the insertion edges stays below the
frequency of the partially redundant check (Section 6.1, citing [BGS99]).

**Transformation** (Section 6.2): a compensating check is *speculative* —
on failure it raises a per-check guard flag instead of trapping — and the
original check becomes a guarded check executed only when its flag is set.
This reproduces the paper's "regenerate the unoptimized loop on a failed
hoisted compare" recovery at instruction granularity: exceptions still
fire exactly at the original program point, and spurious speculative
failures merely re-enable the original check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.dominance import DominatorTree
from repro.certify.witness import (
    AssumeWitness,
    AxiomWitness,
    CycleWitness,
    EdgeWitness,
    PhiWitness,
    Witness,
)
from repro.core.constraints import GraphBundle
from repro.core.graph import InequalityGraph, Node, const_node, len_node, var_node
from repro.core.lattice import ProofResult
from repro.core.solver import DEFAULT_MAX_STEPS, DemandProver, _Frame, _Memo
from repro.ir.function import Function, Program
from repro.ir.instructions import (
    BinOp,
    Const,
    Operand,
    Phi,
    SpeculativeCheck,
    Var,
)
from repro.runtime.profiler import Profile


@dataclass(frozen=True)
class InsertionPoint:
    """One compensating check: on the CFG edge ``pred -> phi_block``,
    guard the value ``operand + offset``."""

    phi_block: str
    pred: str
    operand: Operand
    offset: int


@dataclass
class PREValue:
    """A lattice value annotated with the insertions that justify it."""

    result: ProofResult
    insertions: Tuple[InsertionPoint, ...] = ()
    #: Proof witness (witness-emitting sessions only): insertion edges are
    #: discharged by ``AssumeWitness`` leaves pointing at the compensating
    #: checks that justify them.
    witness: Optional[Witness] = None

    @property
    def proven(self) -> bool:
        return self.result.proven


@dataclass
class PREDecision:
    """A profitable, applied PRE transformation."""

    check_id: int
    guard_group: int
    insertion_count: int
    insertion_frequency: int
    check_frequency: int
    #: Certificate of the transformed check (witness mode only).
    witness: Optional[Witness] = None


class PREProver(DemandProver):
    """The iterative frame machine extended with insertion-set collection.

    Inherits :class:`~repro.core.solver.DemandProver`'s explicit-stack
    traversal — budgets, memo subsumption, active-set cycle rule — and
    overrides only the *value hooks*: the values threaded through the
    machine are :class:`PREValue` objects whose insertion sets accumulate
    as frames pop.  Plain (insertion-free) results are memoized with
    budget subsumption; insertion-carrying results are recomputed —
    inequality graphs are small and PRE runs only for checks that already
    failed the cheap prover.
    """

    def __init__(
        self,
        graph: InequalityGraph,
        fn: Function,
        profile: Profile,
        kind: str,
        max_steps: int = DEFAULT_MAX_STEPS,
        witnesses: bool = False,
    ) -> None:
        super().__init__(graph, max_steps=max_steps, witnesses=witnesses)
        self._fn = fn
        self._profile = profile
        self._kind = kind
        # Map a φ destination variable to (pred label -> incoming operand).
        self._phi_incomings: Dict[str, Dict[str, Operand]] = {}
        self._phi_blocks: Dict[str, str] = {}
        for label in fn.reachable_blocks():
            for phi in fn.blocks[label].phis:
                self._phi_incomings[phi.dest] = dict(phi.incomings)
                self._phi_blocks[phi.dest] = label

    def prove(self, source: Node, target: Node, budget: int) -> PREValue:
        direction = self._resolve_direction(None)
        self._begin_query()
        return self._run_query(source, target, budget, direction)

    # ------------------------------------------------------------------
    # Value hooks: PREValue instead of (result, witness) pairs.
    # ------------------------------------------------------------------

    def _axiom(self, v: Node, rule: str) -> Optional[Witness]:
        return AxiomWitness(v, rule) if self._witnesses else None

    def _false_value(self) -> PREValue:
        return PREValue(ProofResult.FALSE)

    def _memo_hit(self, cached: ProofResult, stored: Optional[Witness]) -> PREValue:
        return PREValue(cached, witness=stored)

    def _axiom_value(self, v: Node, rule: str) -> PREValue:
        return PREValue(ProofResult.TRUE, witness=self._axiom(v, rule))

    def _cycle_value(self, v: Node) -> PREValue:
        return PREValue(
            ProofResult.REDUCED,
            witness=CycleWitness(v) if self._witnesses else None,
        )

    def _cycle_false_value(self, v: Node) -> PREValue:
        return PREValue(ProofResult.FALSE)

    def _seal_value(self, frame: _Frame, value: PREValue) -> PREValue:
        # PRE sessions serve exactly one query (one per attempt), so the
        # base machine's open-set bookkeeping for cross-query memo safety
        # does not apply; values pass through untouched.
        return value

    def _prepare_frame(self, frame: _Frame) -> None:
        if frame.is_phi:
            frame.children = []
        else:
            frame.best = None

    # Max vertex: all arguments must prove; failing arguments become
    # insertion candidates.  No short-circuit on False — every child is
    # queried so the failing ones can be collected "during the
    # backtracking into the insertion set".

    def _phi_absorb(self, frame: _Frame, value: PREValue) -> Optional[PREValue]:
        edge = frame.pending
        frame.children.append((edge, value, frame.c - edge.weight))
        return None

    def _phi_finish(self, frame: _Frame) -> PREValue:
        """Merge a fully queried φ: all-proven folds like the plain
        solver; a proven/failing mix turns the failing in-edges into
        insertion candidates when the φ is an insertable program φ (a
        scalar variable merge)."""
        v = frame.v
        proven = [(e, val) for e, val, _ in frame.children if val.proven]
        failing = [(e, b) for e, val, b in frame.children if not val.proven]
        if not failing:
            result = ProofResult.TRUE
            insertions: Tuple[InsertionPoint, ...] = ()
            for _, val in proven:
                result = result.meet(val.result)
                insertions = insertions + val.insertions
            witness = self._phi_witness(
                v, [(e, val.witness) for e, val in proven]
            )
            return PREValue(result, _dedup(insertions), witness)
        if not proven:
            return PREValue(ProofResult.FALSE)

        incomings = self._phi_incomings.get(v.name) if v.kind == "var" else None
        if incomings is None:
            # Array-length φ or untracked merge: cannot insert here.
            return PREValue(ProofResult.FALSE)
        phi_block = self._phi_blocks[v.name]

        new_insertions: List[InsertionPoint] = []
        assume_subs: List[Tuple[object, Optional[Witness]]] = []
        for edge, child_budget in failing:
            operand_node = edge.source
            offset = (-1 - child_budget) if self._kind == "upper" else child_budget
            first_pred: Optional[str] = None
            for pred, operand in incomings.items():
                if _operand_matches(operand, operand_node):
                    new_insertions.append(
                        InsertionPoint(phi_block, pred, operand, offset)
                    )
                    if first_pred is None:
                        first_pred = pred
            if first_pred is None:
                # A graph in-edge that is not a φ argument (should not
                # happen for scalar φs); give up on this vertex.
                return PREValue(ProofResult.FALSE)
            assume_subs.append(
                (
                    edge,
                    AssumeWitness(edge.source, phi_block, first_pred, offset)
                    if self._witnesses
                    else None,
                )
            )

        result = ProofResult.TRUE
        insertions = tuple(new_insertions)
        for _, val in proven:
            result = result.meet(val.result)
            insertions = insertions + val.insertions
        witness = self._phi_witness(
            v, [(e, val.witness) for e, val in proven] + assume_subs
        )
        return PREValue(result, _dedup(insertions), witness)

    def _phi_witness(self, v: Node, pairs) -> Optional[Witness]:
        """A φ witness from ``(edge, sub-witness)`` pairs, or ``None``
        when not in witness mode or any sub-witness is missing."""
        if not self._witnesses or any(sub is None for _, sub in pairs):
            return None
        return PhiWitness(
            v, tuple((edge.source, edge.weight, sub) for edge, sub in pairs)
        )

    def _edge_witness(self, v: Node, edge, sub: Optional[Witness]) -> Optional[Witness]:
        if not self._witnesses or sub is None:
            return None
        return EdgeWitness(v, edge.source, edge.weight, sub)

    # Min vertex: any constraint suffices; among proven alternatives
    # prefer no insertions (short-circuit), then the cheapest insertion
    # set (paper: "at a min vertex, ABCD selects the set that has the
    # lower execution frequency").

    def _min_absorb(self, frame: _Frame, value: PREValue) -> Optional[PREValue]:
        if not value.proven:
            return None
        if not value.insertions:
            return PREValue(
                value.result,
                witness=self._edge_witness(frame.v, frame.pending, value.witness),
            )
        if frame.best is None or self.insertion_cost(
            value.insertions
        ) < self.insertion_cost(frame.best[1].insertions):
            frame.best = (frame.pending, value)
        return None

    def _min_finish(self, frame: _Frame) -> PREValue:
        if frame.best is None:
            return PREValue(ProofResult.FALSE)
        edge, value = frame.best
        return PREValue(
            value.result,
            value.insertions,
            self._edge_witness(frame.v, edge, value.witness),
        )

    def _record(self, frame: _Frame, value: PREValue) -> None:
        if self._query_exhausted is not None or value.insertions:
            return
        self._memo.setdefault(frame.memo_key, _Memo()).record(
            frame.c, value.result, value.witness
        )

    def insertion_cost(self, insertions: Tuple[InsertionPoint, ...]) -> int:
        return sum(
            self._profile.edge_frequency(self._fn.name, point.pred, point.phi_block)
            for point in insertions
        )


def _operand_matches(operand: Operand, node: Node) -> bool:
    if isinstance(operand, Var):
        return node.kind == "var" and node.name == operand.name
    assert isinstance(operand, Const)
    return node.kind == "const" and node.value == operand.value


def _dedup(insertions: Tuple[InsertionPoint, ...]) -> Tuple[InsertionPoint, ...]:
    seen = []
    for point in insertions:
        if point not in seen:
            seen.append(point)
    return tuple(seen)


# ----------------------------------------------------------------------
# Driver-facing entry point.
# ----------------------------------------------------------------------


def attempt_pre(
    fn: Function,
    program: Program,
    bundle: GraphBundle,
    site,
    profile: Profile,
    gain_ratio: float,
    max_steps: int = DEFAULT_MAX_STEPS,
    domtree=None,
    witnesses: bool = False,
) -> Optional[PREDecision]:
    """Try to make ``site``'s check fully redundant via insertion.

    Returns the applied decision, or ``None`` when the check is not
    partially redundant, unprofitable, or unsafe to transform.
    """
    if site.kind == "upper":
        graph, source, budget = bundle.upper, len_node(site.array), -1
    else:
        graph, source, budget = bundle.lower, const_node(0), 0

    prover = PREProver(
        graph, fn, profile, site.kind, max_steps=max_steps, witnesses=witnesses
    )
    value = prover.prove(source, site.target, budget)
    if not value.proven or not value.insertions:
        return None

    check_id = site.instr.check_id
    check_frequency = profile.check_frequency(check_id)
    insertion_frequency = prover.insertion_cost(value.insertions)
    if check_frequency == 0 or insertion_frequency >= gain_ratio * check_frequency:
        return None
    if not _insertions_safe(fn, site, value.insertions, domtree=domtree):
        return None

    guard_group = program.new_guard_group()
    for point in value.insertions:
        _insert_compensating_check(fn, program, site, point, guard_group)
    site.instr.guard_group = guard_group
    return PREDecision(
        check_id=check_id,
        guard_group=guard_group,
        insertion_count=len(value.insertions),
        insertion_frequency=insertion_frequency,
        check_frequency=check_frequency,
        witness=value.witness,
    )


def _insertions_safe(fn: Function, site, insertions, domtree=None) -> bool:
    """Every compensating check must be expressible at its edge: the
    array variable (for upper checks) must dominate the insertion block,
    and the insertion block must not be the φ block itself."""
    if domtree is None:
        domtree = DominatorTree.compute(fn)
    if site.kind == "upper":
        array_def = _defining_block(fn, site.array)
        if array_def is None:
            return False
        for point in insertions:
            if not domtree.dominates(array_def, point.pred):
                return False
    return True


def _defining_block(fn: Function, name: str) -> Optional[str]:
    # Served by the def-use index (covers parameters via the entry block).
    return fn.def_use().def_block_of(name)


def _insert_compensating_check(
    fn: Function,
    program: Program,
    site,
    point: InsertionPoint,
    guard_group: int,
) -> None:
    """Materialize ``operand + offset`` and the speculative check at the
    end of the predecessor block (critical edges were split before SSA, so
    the predecessor of a multi-predecessor block has a single successor)."""
    index: Operand
    if point.offset == 0:
        index = point.operand
    elif isinstance(point.operand, Const):
        index = Const(point.operand.value + point.offset)
    else:
        temp = fn.new_temp("cmp")
        fn.append_instr(
            point.pred, BinOp(temp, "add", point.operand, Const(point.offset))
        )
        index = Var(temp)
    fn.append_instr(
        point.pred,
        SpeculativeCheck(
            kind=site.kind,
            index=index,
            guard_group=guard_group,
            check_id=program.new_check_id(),
            array=site.array if site.kind == "upper" else None,
        )
    )
