"""The inequality graph ``G_I`` (paper, Definition 1).

Vertices are e-SSA variables, array-length literals (``len(A)`` for an SSA
array variable ``A``), and integer constants.  A directed edge
``u -> v`` with weight ``w`` encodes the difference constraint
``v <= u + w``.  φ-defined vertices form the distinguished set ``V_φ``
(*max* vertices); all others are *min* vertices.

Both the upper-bound graph and its dual lower-bound graph use this one
representation.  The lower-bound graph is built in *negated space* (each
vertex stands for the negated program value), which turns every ``>=``
fact into a ``<=`` edge so a single solver serves both problems — see
``repro.core.constraints`` for the dual construction rules.

Each edge records the basic block of its generating statement, which the
driver uses to replicate the paper's "local vs. global" breakdown of
Figure 6 (a check counts as *locally* redundant when a proof exists using
only constraints generated in the check's own block).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class Node:
    """A vertex of the inequality graph.

    ``kind`` is one of:

    * ``"var"`` — an e-SSA variable; ``name`` holds the SSA name;
    * ``"len"`` — the array-length literal of the SSA array variable
      ``name``;
    * ``"const"`` — the integer constant ``value``.
    """

    kind: str
    name: str = ""
    value: int = 0

    def __str__(self) -> str:
        if self.kind == "var":
            return self.name
        if self.kind == "len":
            return f"len({self.name})"
        return str(self.value)


def var_node(name: str) -> Node:
    return Node("var", name)


def len_node(array: str) -> Node:
    return Node("len", array)


def const_node(value: int) -> Node:
    return Node("const", "", value)


@dataclass(frozen=True)
class Edge:
    """A difference constraint ``target <= source + weight``.

    ``block`` is the label of the basic block whose statement generated the
    constraint (``None`` for synthetic edges such as the const-const
    completion the solver performs on the fly).
    """

    source: Node
    target: Node
    weight: int
    block: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.target} <= {self.source} + {self.weight}"


class InequalityGraph:
    """Sparse difference-constraint system over e-SSA names.

    Stored as in-edge adjacency (the solver of Figure 5 explores
    *backwards*, from the array-index vertex toward the array-length
    vertex).  ``direction`` is ``"upper"`` or ``"lower"`` and only affects
    how constant vertices translate to numeric values (negated space for
    the lower graph).
    """

    def __init__(self, direction: str = "upper") -> None:
        if direction not in ("upper", "lower"):
            raise ValueError(f"bad direction {direction!r}")
        self.direction = direction
        self._in_edges: Dict[Node, List[Edge]] = {}
        self.phi_nodes: set = set()
        #: Constant vertices that have real in-edges; used by the solver's
        #: on-demand constant completion (see :meth:`in_edges`).
        self._anchored_consts: set = set()
        self.edge_count = 0

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    def add_edge(
        self, source: Node, target: Node, weight: int, block: Optional[str] = None
    ) -> None:
        """Add the constraint ``target <= source + weight``.

        Parallel edges between the same pair keep only the strongest
        (smallest-weight) constraint — e-SSA guarantees ``G_I`` is not a
        multigraph for paper-generated constraints, but extensions (GVN,
        allocation bounds) may repeat a pair.
        """
        edges = self._in_edges.setdefault(target, [])
        for position, existing in enumerate(edges):
            if existing.source == source:
                if weight < existing.weight:
                    edges[position] = Edge(source, target, weight, block)
                return
        edges.append(Edge(source, target, weight, block))
        self.edge_count += 1
        if target.kind == "const":
            self._anchored_consts.add(target)

    def mark_phi(self, node: Node) -> None:
        """Put ``node`` into ``V_φ`` (max-vertex set)."""
        self.phi_nodes.add(node)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    def const_value(self, node: Node) -> int:
        """Numeric value a constant vertex stands for, respecting negated
        space in the lower-bound graph."""
        assert node.kind == "const"
        return node.value if self.direction == "upper" else -node.value

    def is_phi(self, node: Node) -> bool:
        return node in self.phi_nodes

    def in_edges(self, node: Node) -> List[Edge]:
        """In-edges of ``node``, including the on-demand constant
        completion: between two constant vertices the constraint
        ``c2 <= c1 + (value(c2) - value(c1))`` always holds, so every
        *anchored* constant (one with real in-edges, e.g. from an
        allocation bound) offers a virtual edge into any constant of
        **strictly smaller** value.

        The descending-only restriction keeps the completion acyclic,
        preserving the solver's soundness invariant that every cycle of
        ``G_I`` passes through a φ vertex (see Section 4's consistency
        argument); an ascending constant hop could only prove bounds slack
        by more than the constant gap, which bounds-check queries never
        need.
        """
        edges = list(self._in_edges.get(node, ()))
        if node.kind == "const":
            target_value = self.const_value(node)
            # Sorted iteration keeps traversal (and therefore emitted proof
            # witnesses) deterministic across interpreter hash seeds.
            for anchor in sorted(self._anchored_consts, key=lambda n: n.value):
                if anchor == node:
                    continue
                anchor_value = self.const_value(anchor)
                if target_value < anchor_value:
                    edges.append(Edge(anchor, node, target_value - anchor_value))
        return edges

    def has_predecessors(self, node: Node) -> bool:
        if self._in_edges.get(node):
            return True
        if node.kind != "const":
            return False
        value = self.const_value(node)
        return any(
            self.const_value(anchor) > value
            for anchor in self._anchored_consts
            if anchor != node
        )

    def nodes(self) -> List[Node]:
        """All vertices mentioned by any edge."""
        seen = set()
        for target, edges in self._in_edges.items():
            seen.add(target)
            for edge in edges:
                seen.add(edge.source)
        seen.update(self.phi_nodes)
        return sorted(seen, key=str)

    def edges(self) -> Iterable[Edge]:
        for edges in self._in_edges.values():
            yield from edges

    # ------------------------------------------------------------------
    # Export.
    # ------------------------------------------------------------------

    def to_dot(self, highlight: Tuple[Node, ...] = ()) -> str:
        """Graphviz rendering in the style of the paper's Figure 4."""
        lines = [
            f'digraph "inequality_{self.direction}" {{',
            "  rankdir=TB; node [fontname=monospace];",
        ]
        for node in self.nodes():
            shape = "doublecircle" if self.is_phi(node) else "ellipse"
            color = ', style=filled, fillcolor="#ffdd99"' if node in highlight else ""
            lines.append(f'  "{node}" [shape={shape}{color}];')
        for edge in self.edges():
            lines.append(
                f'  "{edge.source}" -> "{edge.target}" [label="{edge.weight}"];'
            )
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"InequalityGraph({self.direction}, {len(self.nodes())} nodes, "
            f"{self.edge_count} edges, {len(self.phi_nodes)} phi)"
        )


class DualGraph:
    """One inequality graph carrying **both** directions' constraints.

    The paper solves two difference-constraint systems per function — the
    upper-bound graph and its negated-space lower-bound dual — over the
    same e-SSA vertex universe.  This class stores them as a single graph
    whose edges carry *per-direction* weights: ``add_edge(u, v,
    upper=w1, lower=w2)`` records the Table-1 contribution of one
    statement to both systems at once, and queries are direction-tagged
    (``in_edges(v, "upper")``).  The φ vertex set ``V_φ`` is shared —
    Table 1 marks the same destinations in both systems — while edge
    topology and weights may differ (C4/C5 π predicates are one-sided,
    allocation facts and the ``len(A) >= 0`` axiom are asymmetric).

    Per-direction insertion order is preserved exactly as if two separate
    graphs had been built, which keeps the solver's traversal — and the
    proof witnesses it emits — byte-identical to the historical
    two-graph pipeline.

    ``view(direction)`` returns a :class:`DirectionView` satisfying the
    full :class:`InequalityGraph` protocol, so single-direction consumers
    (the PRE prover, the exhaustive oracle, the baselines, hand-written
    tests) keep working unchanged against ``bundle.upper``/``bundle.lower``.
    """

    DIRECTIONS = ("upper", "lower")

    def __init__(self) -> None:
        self._in_edges: Dict[str, Dict[Node, List[Edge]]] = {
            "upper": {},
            "lower": {},
        }
        self.phi_nodes: set = set()
        self._anchored_consts: Dict[str, set] = {"upper": set(), "lower": set()}
        self.edge_counts: Dict[str, int] = {"upper": 0, "lower": 0}
        self._views: Dict[str, "DirectionView"] = {
            d: DirectionView(self, d) for d in self.DIRECTIONS
        }

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    def add_edge(
        self,
        source: Node,
        target: Node,
        upper: Optional[int] = None,
        lower: Optional[int] = None,
        block: Optional[str] = None,
    ) -> None:
        """Add ``target <= source + w`` with per-direction weights (a
        ``None`` weight leaves that direction's system untouched)."""
        if upper is not None:
            self.add_directed_edge("upper", source, target, upper, block)
        if lower is not None:
            self.add_directed_edge("lower", source, target, lower, block)

    def add_directed_edge(
        self,
        direction: str,
        source: Node,
        target: Node,
        weight: int,
        block: Optional[str] = None,
    ) -> None:
        """One direction's half of :meth:`add_edge`.  Parallel edges
        between the same pair keep only the strongest (smallest-weight)
        constraint, exactly as :meth:`InequalityGraph.add_edge`."""
        edges = self._in_edges[direction].setdefault(target, [])
        for position, existing in enumerate(edges):
            if existing.source == source:
                if weight < existing.weight:
                    edges[position] = Edge(source, target, weight, block)
                return
        edges.append(Edge(source, target, weight, block))
        self.edge_counts[direction] += 1
        if target.kind == "const":
            self._anchored_consts[direction].add(target)

    def mark_phi(self, node: Node) -> None:
        """Put ``node`` into the shared ``V_φ`` (max-vertex) set."""
        self.phi_nodes.add(node)

    # ------------------------------------------------------------------
    # Direction-tagged queries (the solver's interface).
    # ------------------------------------------------------------------

    @property
    def views(self) -> Dict[str, "DirectionView"]:
        """Direction views, keyed ``"upper"``/``"lower"`` — handing this
        to :class:`~repro.core.solver.DemandProver` makes the session
        dual-direction."""
        return self._views

    def view(self, direction: str) -> "DirectionView":
        return self._views[direction]

    def is_phi(self, node: Node) -> bool:
        return node in self.phi_nodes

    def const_value(self, node: Node, direction: str) -> int:
        assert node.kind == "const"
        return node.value if direction == "upper" else -node.value

    def in_edges(self, node: Node, direction: str) -> List[Edge]:
        """In-edges of ``node`` in one direction's system, including the
        same on-demand descending constant completion as
        :meth:`InequalityGraph.in_edges`."""
        edges = list(self._in_edges[direction].get(node, ()))
        if node.kind == "const":
            target_value = self.const_value(node, direction)
            for anchor in sorted(
                self._anchored_consts[direction], key=lambda n: n.value
            ):
                if anchor == node:
                    continue
                anchor_value = self.const_value(anchor, direction)
                if target_value < anchor_value:
                    edges.append(Edge(anchor, node, target_value - anchor_value))
        return edges

    def has_predecessors(self, node: Node, direction: str) -> bool:
        if self._in_edges[direction].get(node):
            return True
        if node.kind != "const":
            return False
        value = self.const_value(node, direction)
        return any(
            self.const_value(anchor, direction) > value
            for anchor in self._anchored_consts[direction]
            if anchor != node
        )

    def nodes(self, direction: str) -> List[Node]:
        seen = set()
        for target, edges in self._in_edges[direction].items():
            seen.add(target)
            for edge in edges:
                seen.add(edge.source)
        seen.update(self.phi_nodes)
        return sorted(seen, key=str)

    def edges(self, direction: str) -> Iterable[Edge]:
        for edges in self._in_edges[direction].values():
            yield from edges

    def __repr__(self) -> str:
        return (
            f"DualGraph({self.edge_counts['upper']} upper / "
            f"{self.edge_counts['lower']} lower edges, "
            f"{len(self.phi_nodes)} phi)"
        )


class DirectionView:
    """One direction of a :class:`DualGraph`, presenting the
    :class:`InequalityGraph` protocol (``direction``, ``in_edges``,
    ``is_phi``, ``const_value``, …) so single-direction consumers are
    agnostic to whether they were handed a standalone graph or half of a
    dual one."""

    __slots__ = ("_dual", "direction")

    def __init__(self, dual: DualGraph, direction: str) -> None:
        if direction not in DualGraph.DIRECTIONS:
            raise ValueError(f"bad direction {direction!r}")
        self._dual = dual
        self.direction = direction

    # Construction (forwarded; used by GVN augmentation and tests).

    def add_edge(
        self, source: Node, target: Node, weight: int, block: Optional[str] = None
    ) -> None:
        self._dual.add_directed_edge(self.direction, source, target, weight, block)

    def mark_phi(self, node: Node) -> None:
        self._dual.mark_phi(node)

    # Queries.

    @property
    def _in_edges(self):
        # Raw per-direction adjacency of the backing dual graph.  Exposed
        # for the fault-injection harness, which corrupts edge lists in
        # place to exercise the downstream soundness gates.
        return self._dual._in_edges[self.direction]

    @property
    def phi_nodes(self) -> set:
        return self._dual.phi_nodes

    @property
    def edge_count(self) -> int:
        return self._dual.edge_counts[self.direction]

    def const_value(self, node: Node) -> int:
        return self._dual.const_value(node, self.direction)

    def is_phi(self, node: Node) -> bool:
        return self._dual.is_phi(node)

    def in_edges(self, node: Node) -> List[Edge]:
        return self._dual.in_edges(node, self.direction)

    def has_predecessors(self, node: Node) -> bool:
        return self._dual.has_predecessors(node, self.direction)

    def nodes(self) -> List[Node]:
        return self._dual.nodes(self.direction)

    def edges(self) -> Iterable[Edge]:
        return self._dual.edges(self.direction)

    def to_dot(self, highlight: Tuple[Node, ...] = ()) -> str:
        lines = [
            f'digraph "inequality_{self.direction}" {{',
            "  rankdir=TB; node [fontname=monospace];",
        ]
        for node in self.nodes():
            shape = "doublecircle" if self.is_phi(node) else "ellipse"
            color = ', style=filled, fillcolor="#ffdd99"' if node in highlight else ""
            lines.append(f'  "{node}" [shape={shape}{color}];')
        for edge in self.edges():
            lines.append(
                f'  "{edge.source}" -> "{edge.target}" [label="{edge.weight}"];'
            )
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"DirectionView({self.direction}, {self.edge_count} edges, "
            f"{len(self.phi_nodes)} phi)"
        )
