"""Exhaustive distance computation over the inequality graph.

Section 5 of the paper lists exhaustive alternatives to the demand-driven
solver (hypergraph shortest paths, grammar problems, the Graham–Wegman
dataflow solver).  This module implements the distance semantics of the
Figure-4 caption directly as a monotone fixpoint:

* ``dist(a) = min(0, incoming)`` — the empty path from the source;
* at a φ (max) vertex, ``dist(v) = max over in-edges (dist(u) + w)``
  (the weakest constraint over incoming control-flow paths);
* at a min vertex, ``dist(v) = min over in-edges (dist(u) + w)``
  (the strongest constraint on this path);
* unreachable vertices have distance ``+∞`` (unconstrained);
* vertices draining a negative-weight min-cycle have distance ``-∞``.

A bounds check ``b - a <= c`` is redundant iff ``dist(b) <= c``.

The module serves three roles:

1. the **oracle** for property-based testing of the demand-driven solver
   (soundness: ``demand_prove`` True ⇒ ``dist(b) <= c``);
2. the **exhaustive baseline** of the E8 ablation (same answers, more
   work);
3. batch analysis: one fixpoint answers every check against one source.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

from repro.core.graph import InequalityGraph, Node

INF = math.inf
NEG_INF = -math.inf


def compute_distances(
    graph: InequalityGraph,
    source: Node,
    extra_nodes: Iterable[Node] = (),
) -> Dict[Node, float]:
    """Distance from ``source`` to every vertex (``+inf`` = unconstrained).

    Runs a monotone-decreasing round-robin iteration from ``+inf``;
    vertices still changing after ``|V|`` extra rounds sit on negative
    cycles not broken by a φ vertex and are clamped to ``-inf``.
    """
    nodes = set(graph.nodes())
    nodes.add(source)
    nodes.update(extra_nodes)
    # Constant targets may only be linked via the virtual descending
    # completion; make sure all constants that appear anywhere participate.
    dist: Dict[Node, float] = {node: INF for node in nodes}
    dist[source] = 0.0
    if source.kind == "const":
        source_value = graph.const_value(source)
        for node in nodes:
            if node.kind == "const" and node != source:
                # Arithmetic fact: node <= source + (value(node) - value(source)).
                dist[node] = graph.const_value(node) - source_value

    in_edges = {node: graph.in_edges(node) for node in nodes}

    def recompute(node: Node) -> float:
        edges = in_edges[node]
        values = [dist[edge.source] + edge.weight for edge in edges if edge.source in dist]
        if not values:
            merged = INF
        elif graph.is_phi(node):
            merged = max(values)
        else:
            merged = min(values)
        if node == source:
            merged = min(merged, 0.0)
        if node.kind == "const" and source.kind == "const" and node != source:
            merged = min(
                merged, graph.const_value(node) - graph.const_value(source)
            )
        if (
            node.kind == "const"
            and source.kind == "len"
            and graph.direction == "upper"
        ):
            # Non-negative array length axiom: const(k) <= len(A) + k.
            merged = min(merged, node.value)
        return merged

    # Any *finite* distance is the value of some simple path (φ vertices
    # stabilize at the value of their strongest non-cyclic argument), so it
    # is bounded below by -(sum of |weights| + constant span).  A vertex
    # dropping below that bound is draining a negative min-cycle: clamp it
    # to -inf.  With values confined to the finite lattice
    # {-inf} ∪ [-bound, +bound-ish] ∪ {+inf}, the monotone-decreasing
    # iteration terminates.
    weight_sum = sum(abs(edge.weight) for edges in in_edges.values() for edge in edges)
    const_values = [graph.const_value(n) for n in nodes if n.kind == "const"]
    max_abs_const = max((abs(c) for c in const_values), default=0)
    # A finite distance is a simple-path weight sum plus at most one
    # constant-axiom hop and one constant-difference hop.
    bound = weight_sum + 3 * max_abs_const + 1

    max_rounds = len(nodes) * (2 * bound + 3) + 10
    for _ in range(max_rounds):
        changed = False
        for node in nodes:
            new_value = recompute(node)
            if new_value < -bound:
                new_value = NEG_INF
            if new_value != dist[node]:
                dist[node] = new_value
                changed = True
        if not changed:
            break
    return dist


def exact_distance(
    graph: InequalityGraph,
    source: Node,
    target: Node,
    max_phi: int = 12,
) -> float:
    """The *exact* constraint-system distance ``sup D(target) - D(source)``.

    A feasible solution satisfies, at each φ vertex, ``v <= max(args)`` —
    i.e. ``v <= arg + w`` for *some* argument.  Enumerating one chosen
    in-edge per φ turns the system into a pure conjunction of difference
    constraints, whose supremum is the classic shortest-path distance
    (infeasible selections — those with a negative cycle — contribute
    nothing).  The exact distance is the maximum over selections.

    Exponential in the number of φ vertices; intended as the independent
    oracle for property-based testing of both other solvers.  The fixpoint
    of :func:`compute_distances` is an upper approximation of this value
    (it may report ``+inf`` where a negative φ-cycle actually reduces).
    """
    import itertools

    nodes = set(graph.nodes())
    nodes.add(source)
    nodes.add(target)

    phi_nodes = [n for n in nodes if graph.is_phi(n) and graph.in_edges(n)]
    if len(phi_nodes) > max_phi:
        raise ValueError(f"too many φ vertices for exact enumeration: {len(phi_nodes)}")
    min_nodes = [n for n in nodes if not graph.is_phi(n)]

    # Constraints shared by every selection.
    base_edges = []
    for node in min_nodes:
        for edge in graph.in_edges(node):
            base_edges.append((edge.source, node, edge.weight))
    consts = [n for n in nodes if n.kind == "const"]
    for c1 in consts:
        for c2 in consts:
            if c1 != c2:
                base_edges.append(
                    (c1, c2, graph.const_value(c2) - graph.const_value(c1))
                )
    if graph.direction == "upper":
        lens = [n for n in nodes if n.kind == "len"]
        for ln in lens:
            for c in consts:
                # len >= 0 axiom: const(k) <= len + k.
                base_edges.append((ln, c, graph.const_value(c)))

    choices = [graph.in_edges(phi) for phi in phi_nodes]
    best = -INF
    for selection in itertools.product(*choices) if choices else [()]:
        edges = list(base_edges)
        for phi, edge in zip(phi_nodes, selection):
            edges.append((edge.source, phi, edge.weight))
        distance = _bellman_ford(nodes, edges, source, target)
        if distance is None:  # infeasible selection (negative cycle)
            continue
        best = max(best, distance)
        if best == INF:
            break
    return best


def _bellman_ford(nodes, edges, source: Node, target: Node):
    """Shortest-path distance source→target; ``None`` if any negative
    cycle exists (infeasible difference system), ``+inf`` if unreachable."""
    # Feasibility: a negative cycle *anywhere* (reachable or not) makes the
    # system unsatisfiable; a zero-initialized pass (implicit super-source)
    # detects all of them.
    feas = {node: 0.0 for node in nodes}
    for _ in range(len(nodes)):
        changed = False
        for u, v, w in edges:
            if feas[u] + w < feas[v]:
                feas[v] = feas[u] + w
                changed = True
        if not changed:
            break
    else:
        for u, v, w in edges:
            if feas[u] + w < feas[v]:
                return None

    dist = {node: INF for node in nodes}
    dist[source] = 0.0
    for _ in range(len(nodes)):
        changed = False
        for u, v, w in edges:
            if dist[u] + w < dist[v]:
                dist[v] = dist[u] + w
                changed = True
        if not changed:
            break
    return dist[target]


def exhaustive_prove(
    graph: InequalityGraph,
    source: Node,
    target: Node,
    budget: int,
    distances: Optional[Dict[Node, float]] = None,
) -> bool:
    """Decide ``target - source <= budget`` via the full fixpoint."""
    if distances is None:
        distances = compute_distances(graph, source, extra_nodes=[target])
    return distances.get(target, INF) <= budget
