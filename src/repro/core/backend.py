"""Pluggable solver backends behind one per-function proof surface.

``analyze_checks`` used to talk to :class:`~repro.core.solver.DemandProver`
directly; this module extracts that contact surface into an explicit
:class:`SolverBackend` interface so the demand-driven Figure-5 engine and
the DBM closure tier (:mod:`repro.core.dbm`) are interchangeable per
function session:

* ``prove(source, target, budget, direction)`` — one check's query,
  returning the same :class:`~repro.core.solver.ProveOutcome` the demand
  engine produces (result, per-query steps, budget exhaustion, and — in
  certify sessions — a replayable witness);
* ``prepare(queries)`` / ``prove_all(queries)`` — the batch form: a
  closure backend warms every needed matrix row in one sweep, after
  which each ``prove`` answers from the closed matrix;
* ``counters()`` — backend telemetry folded into the pass-manager
  ``solver.*`` counters (demand: steps/frames/frontier; closure:
  cells relaxed / rows closed).

The scheduler (``resolve_backend``) implements the ``hybrid`` setting:
pick the closure tier when a function's check density crosses the
measured break-even point, demand-DFS otherwise.  The crossover constant
is *measured*, not guessed — ``benchmarks/bench_solver_tiers.py`` sweeps
the bench corpus plus synthetic check-dense functions and derives the
smallest per-function check count at which the closure tier's up-front
O(rows x cells) cost amortizes below the demand engine's per-query
traversal; ``benchmarks/perf_budget.json`` gates the constant against
drift (``check_perf_budget.py --solver-crossover``).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.graph import Node
from repro.core.solver import ProveOutcome

#: Query tuples handed to the batch interface:
#: ``(source, target, budget, direction)``.
SolverQuery = Tuple[Node, Node, int, str]

#: The measured demand/closure break-even point, in analyzed checks per
#: function, for *certifying* sessions — the regime where the demand
#: engine runs one fresh session per query (witness independence) and
#: so re-pays proof-chain traversals the closure matrix shares.  On the
#: ``bench_solver_tiers.py`` nested-guard chain family the demand cost
#: grows quadratically with chain depth while the closure tier stays
#: linear; the curves cross between 6 checks (demand 75 vs closure 76
#: work units) and 8 checks (demand 120 vs closure 100).  In plain mode
#: the shared dual-direction demand session measured cheaper at every
#: density (its memo amortizes exactly the reuse closure offers, with a
#: smaller constant), so the hybrid scheduler only switches tiers under
#: certification.  Derived by ``benchmarks/bench_solver_tiers.py`` (see
#: DESIGN.md §16 for the measurement table) and gated in
#: ``benchmarks/perf_budget.json`` — update both together, never this
#: constant alone.
HYBRID_CROSSOVER_CHECKS = 8

#: Recognized ``ABCDConfig.solver_backend`` settings.
SOLVER_BACKENDS = ("demand", "closure", "hybrid")


class SolverBackend:
    """One function session's proof engine.

    Concrete backends implement :meth:`prove`; the batch entry points
    have interchange-friendly defaults (a backend with no batch
    advantage simply answers queries one at a time).
    """

    name = "abstract"

    def prepare(self, queries: Iterable[SolverQuery]) -> None:
        """Warm whatever shared state answers ``queries`` best (no-op by
        default; the closure backend closes every needed row here)."""

    def prove(
        self, source: Node, target: Node, budget: int, direction: str
    ) -> ProveOutcome:
        raise NotImplementedError

    def prove_all(self, queries: Sequence[SolverQuery]) -> List[ProveOutcome]:
        """Batch-prove, preserving query order."""
        self.prepare(queries)
        return [self.prove(*query) for query in queries]

    def counters(self) -> Dict[str, int]:
        """Session telemetry, keyed relative to the ``solver.`` namespace
        (``_peak``-suffixed keys merge by maximum, like
        :meth:`~repro.passes.manager.SessionStats.bump_peak`)."""
        return {}


class DemandBackend(SolverBackend):
    """The Figure-5 demand engine behind the backend interface.

    ``prover_factory(graph)`` builds one
    :class:`~repro.core.solver.DemandProver`-compatible session; the
    factory stays in ``repro.core.abcd`` so the fault-injection harness's
    ``DemandProver`` substitution keeps working.  In plain mode one
    shared dual-direction session serves every query of the function
    (memo reuse across check sites); certify mode — and bundles without
    a dual graph — fall back to a fresh per-query session, keeping
    witness bytes independent of which sites ran earlier.
    """

    name = "demand"

    def __init__(self, bundle, prover_factory: Callable, shared: bool) -> None:
        self._bundle = bundle
        self._factory = prover_factory
        self._shared = None
        if shared and bundle.dual is not None:
            self._shared = prover_factory(bundle.dual)
        self._provers: List = [] if self._shared is None else [self._shared]

    def prove(
        self, source: Node, target: Node, budget: int, direction: str
    ) -> ProveOutcome:
        if self._shared is not None:
            return self._shared.demand_prove(source, target, budget, direction=direction)
        graph = self._bundle.upper if direction == "upper" else self._bundle.lower
        prover = self._factory(graph)
        self._provers.append(prover)
        return prover.demand_prove(source, target, budget)

    def counters(self) -> Dict[str, int]:
        folded: Dict[str, int] = {
            "frames_pushed": 0,
            "frontier_peak": 0,
            "steps.upper": 0,
            "steps.lower": 0,
        }
        for prover in self._provers:
            # ``getattr`` defaults keep this safe against fault-injected
            # prover doubles that expose only ``steps``/``budget_exhausted``.
            folded["frames_pushed"] += getattr(prover, "frames_pushed", 0)
            folded["frontier_peak"] = max(
                folded["frontier_peak"], getattr(prover, "frontier_peak", 0)
            )
            directed = getattr(prover, "steps_by_direction", None)
            if directed:
                for direction, count in directed.items():
                    key = f"steps.{direction}"
                    folded[key] = folded.get(key, 0) + count
        return folded


def resolve_backend(config, check_count: int) -> str:
    """The per-function scheduler: map a ``solver_backend`` setting to a
    concrete engine for a function with ``check_count`` analyzed checks.

    The hybrid choice follows the measurement behind
    :data:`HYBRID_CROSSOVER_CHECKS`: the closure tier only amortizes in
    certifying sessions (per-query demand sessions re-pay chain
    traversals the shared matrix answers once), and only once the
    function is check-dense enough to cross the break-even point.
    """
    setting = getattr(config, "solver_backend", "demand")
    if setting not in SOLVER_BACKENDS:
        raise ValueError(f"bad solver_backend {setting!r}")
    if setting != "hybrid":
        return setting
    if getattr(config, "certify", False) and check_count >= HYBRID_CROSSOVER_CHECKS:
        return "closure"
    return "demand"


def make_backend(
    name: str,
    bundle,
    config,
    prover_factory: Callable,
    extra_vertices: Iterable[Node] = (),
) -> SolverBackend:
    """Instantiate the engine ``resolve_backend`` picked.

    ``extra_vertices`` registers query endpoints (check targets, GVN
    retry sources) that edges alone may not mention, so the closure
    matrix's vertex universe covers every query it will be asked.
    """
    if name == "demand":
        return DemandBackend(bundle, prover_factory, shared=not config.certify)
    from repro.core.dbm import ClosureBackend

    return ClosureBackend(bundle, config, extra_vertices=extra_vertices)
