"""Loop versioning: the restructuring-based comparator (paper: [MMS98]).

The paper's related work contrasts ABCD with Midkiff/Moreira/Snir-style
optimization of scientific Java: *version* each loop into a check-free
fast copy and an unmodified slow copy, selected by a run-time test of the
loop bounds against the array length ("partitioning a loop iteration space
into safe and unsafe regions").  ABCD's authors argue such code
duplication is too expensive for a dynamic compiler; this module makes the
trade-off measurable.

The implementation runs on **non-SSA** IR (between lowering and e-SSA):

1. find natural loops whose header tests a *basic induction variable*
   ``i`` (all in-loop updates are ``i := i + c`` with ``c >= 0``) against
   a loop-invariant bound — an invariant variable/constant ``B`` or a
   header-recomputed ``len(A)`` of an invariant array;
2. collect candidate checks: ``checklower``/``checkupper`` on indices of
   the form ``i + k`` (constant offset) over loop-invariant arrays.  Each
   check's *slack* accounts for the induction increments that can execute
   earlier in the same iteration (an access after ``i := i + 1`` sees a
   larger value than the header test did);
3. in a preheader, emit the versioning tests —
   ``B + k + slack <= len(A)`` for upper checks and ``i + k >= 0``
   evaluated at the preheader (where ``i`` still holds its initial value)
   for lower checks;
4. clone the loop body; the fast clone drops the candidate checks, the
   original remains the slow path.  Cloned checks keep their ids so
   exception attribution matches the unversioned program.

The measured contrast (``benchmarks/bench_loop_versioning.py``): similar
dynamic check reduction on inductive loops, but paid for with code-size
growth that ABCD's in-place removal avoids, and no coverage of non-loop
or non-inductive checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.analysis.loops import NaturalLoop, find_natural_loops
from repro.ir.function import BasicBlock, Function, Program
from repro.ir.instructions import (
    ArrayLen,
    BinOp,
    Branch,
    CheckLower,
    CheckUpper,
    Cmp,
    Const,
    Copy,
    Instr,
    Jump,
    Operand,
    Var,
)


@dataclass
class VersioningReport:
    """Outcome of the pass over a function or program."""

    loops_versioned: int = 0
    checks_removed_in_fast_path: int = 0
    blocks_added: int = 0

    def merge(self, other: "VersioningReport") -> None:
        self.loops_versioned += other.loops_versioned
        self.checks_removed_in_fast_path += other.checks_removed_in_fast_path
        self.blocks_added += other.blocks_added


@dataclass(frozen=True)
class _LenExpr:
    """A loop bound that is ``len(array)`` recomputed in the header."""

    array: str


_Bound = Union[Operand, _LenExpr]


@dataclass
class _UpperCandidate:
    check: CheckUpper
    array: str
    offset: int
    slack: int  # increments that may precede the access in one iteration


@dataclass
class _LowerCandidate:
    check: CheckLower
    offset: int


@dataclass
class _LoopPlan:
    loop: NaturalLoop
    ivar: str
    bound: _Bound
    strict: bool  # header tests i < B (True) or i <= B (False)
    body_target: str
    exit_target: str
    uppers: List[_UpperCandidate] = field(default_factory=list)
    lowers: List[_LowerCandidate] = field(default_factory=list)

    @property
    def candidate_checks(self) -> List[Instr]:
        return [c.check for c in self.uppers] + [c.check for c in self.lowers]


def version_loops(fn: Function, program: Program, analysis=None) -> VersioningReport:
    """Apply loop versioning to one non-SSA function in place.

    ``analysis`` (an :class:`~repro.passes.analysis.AnalysisManager`)
    serves the natural-loop analysis from the session cache; versioning
    mutates the CFG, so the function's cached analyses are dropped after
    any transformation.
    """
    if fn.ssa_form != "none":
        raise ValueError("loop versioning must run before SSA construction")
    report = VersioningReport()
    loops = analysis.get("loops", fn) if analysis is not None else find_natural_loops(fn)
    # Plan against a stable snapshot: versioning adds loops (the clones),
    # which must not be re-versioned.
    plans = []
    for loop in loops:
        plan = _plan_loop(fn, loop)
        if plan is not None and plan.candidate_checks:
            plans.append(plan)
    for plan in plans:
        _apply(fn, program, plan, report)
    if plans:
        # Versioning clones blocks and rewires edges directly; drop the
        # def-use index along with any cached analyses.
        fn.invalidate_def_use()
        if analysis is not None:
            analysis.invalidate(fn)
    return report


def version_program_loops(program: Program, analysis=None) -> VersioningReport:
    report = VersioningReport()
    for fn in program.functions.values():
        report.merge(version_loops(fn, program, analysis=analysis))
    return report


# ----------------------------------------------------------------------
# Analysis.
# ----------------------------------------------------------------------


def _definitions_in_loop(fn: Function, loop: NaturalLoop) -> Dict[str, List[Instr]]:
    defs: Dict[str, List[Instr]] = {}
    for label in loop.body:
        for instr in fn.blocks[label].instructions():
            dest = instr.defs()
            if dest is not None:
                defs.setdefault(dest, []).append(instr)
    return defs


def _plan_loop(fn: Function, loop: NaturalLoop) -> Optional[_LoopPlan]:
    header = fn.blocks[loop.header]
    term = header.terminator
    if not isinstance(term, Branch) or not isinstance(term.cond, Var):
        return None
    in_loop = {term.true_target in loop.body, term.false_target in loop.body}
    if in_loop != {True, False}:
        return None  # need one arm in, one out
    body_target = term.true_target if term.true_target in loop.body else term.false_target
    exit_target = term.false_target if body_target == term.true_target else term.true_target

    cmp = _defining_cmp(header, term.cond.name)
    if cmp is None:
        return None
    defs = _definitions_in_loop(fn, loop)

    ivar, raw_bound, rel = _normalized_condition(cmp, body_target == term.true_target)
    if ivar is None or rel not in ("lt", "le"):
        return None
    if ivar in () or ivar not in defs:
        return None  # the tested variable must actually be an IV

    bound = _resolve_bound(fn, loop, defs, raw_bound)
    if bound is None:
        return None

    if _induction_increments(fn, loop, defs, ivar) is None:
        return None

    plan = _LoopPlan(
        loop=loop,
        ivar=ivar,
        bound=bound,
        strict=(rel == "lt"),
        body_target=body_target,
        exit_target=exit_target,
    )
    _collect_candidate_checks(fn, loop, defs, plan)
    return plan


def _resolve_bound(
    fn: Function, loop: NaturalLoop, defs: Dict[str, List[Instr]], bound
) -> Optional[_Bound]:
    """Accept an invariant operand, or a header-recomputed ``len(A)``
    (the shape ``while (i < len(a))`` lowers to)."""
    if isinstance(bound, Const):
        return bound
    assert isinstance(bound, Var)
    bound_defs = defs.get(bound.name)
    if bound_defs is None:
        return bound  # defined outside: invariant
    if len(bound_defs) == 1 and isinstance(bound_defs[0], ArrayLen):
        array = bound_defs[0].array
        if array not in defs:  # the array reference itself is invariant
            return _LenExpr(array)
    return None


def _defining_cmp(block: BasicBlock, cond: str) -> Optional[Cmp]:
    for instr in reversed(block.body):
        if instr.defs() == cond:
            return instr if isinstance(instr, Cmp) else None
    return None


def _normalized_condition(cmp: Cmp, body_on_true: bool):
    """Return (ivar, bound, rel) such that ``ivar rel bound`` holds on the
    body edge, for rel in lt/le (else (None, None, None))."""
    rel = cmp.op
    lhs, rhs = cmp.lhs, cmp.rhs
    if not body_on_true:
        rel = {"lt": "ge", "le": "gt", "gt": "le", "ge": "lt", "eq": "ne", "ne": "eq"}[rel]
    if rel in ("gt", "ge") and isinstance(rhs, Var):
        # B > i  ==  i < B (swap).
        lhs, rhs = rhs, lhs
        rel = {"gt": "lt", "ge": "le"}[rel]
    if rel in ("lt", "le") and isinstance(lhs, Var):
        return lhs.name, rhs, rel
    return None, None, None


def _induction_increments(
    fn: Function, loop: NaturalLoop, defs: Dict[str, List[Instr]], ivar: str
) -> Optional[List[Tuple[str, int, int]]]:
    """``(block, position, constant)`` for each update when ``ivar`` is a
    non-decreasing basic induction variable; ``None`` otherwise."""
    updates = defs.get(ivar, [])
    if not updates:
        return None
    located: List[Tuple[str, int, int]] = []
    positions = _instr_positions(fn, loop)
    for instr in updates:
        increment = _increment_of(fn, loop, defs, instr, ivar)
        if increment is None or increment < 0:
            return None
        block, position = positions[id(instr)]
        located.append((block, position, increment))
    return located


def _instr_positions(fn: Function, loop: NaturalLoop) -> Dict[int, Tuple[str, int]]:
    positions: Dict[int, Tuple[str, int]] = {}
    for label in loop.body:
        for position, instr in enumerate(fn.blocks[label].body):
            positions[id(instr)] = (label, position)
    return positions


def _increment_of(
    fn: Function,
    loop: NaturalLoop,
    defs: Dict[str, List[Instr]],
    instr: Instr,
    ivar: str,
    depth: int = 0,
) -> Optional[int]:
    """Constant c when ``instr`` is (a copy of) ``ivar + c``."""
    if depth > 4:
        return None
    if isinstance(instr, BinOp) and instr.op == "add":
        if instr.lhs == Var(ivar) and isinstance(instr.rhs, Const):
            return instr.rhs.value
        if instr.rhs == Var(ivar) and isinstance(instr.lhs, Const):
            return instr.lhs.value
        return None
    if isinstance(instr, Copy) and isinstance(instr.src, Var):
        source_defs = defs.get(instr.src.name, [])
        if len(source_defs) == 1:
            return _increment_of(fn, loop, defs, source_defs[0], ivar, depth + 1)
    return None


def _index_offset(
    defs: Dict[str, List[Instr]], operand: Operand, ivar: str, depth: int = 0
) -> Optional[int]:
    """k when ``operand`` evaluates to ``ivar + k`` at the check."""
    if depth > 6:
        return None
    if operand == Var(ivar):
        return 0
    if not isinstance(operand, Var):
        return None
    operand_defs = defs.get(operand.name, [])
    if len(operand_defs) != 1:
        return None
    definition = operand_defs[0]
    if isinstance(definition, Copy) and isinstance(definition.src, Var):
        return _index_offset(defs, definition.src, ivar, depth + 1)
    if isinstance(definition, BinOp) and definition.op == "add":
        if isinstance(definition.rhs, Const):
            base = _index_offset(defs, definition.lhs, ivar, depth + 1)
            return None if base is None else base + definition.rhs.value
        if isinstance(definition.lhs, Const):
            base = _index_offset(defs, definition.rhs, ivar, depth + 1)
            return None if base is None else base + definition.lhs.value
    if isinstance(definition, BinOp) and definition.op == "sub":
        if isinstance(definition.rhs, Const):
            base = _index_offset(defs, definition.lhs, ivar, depth + 1)
            return None if base is None else base - definition.rhs.value
    return None


def _iteration_reachability(fn: Function, loop: NaturalLoop) -> Dict[str, Set[str]]:
    """``reaches[b]`` = loop blocks reachable from ``b`` within one
    iteration (edges back into the header are cut)."""
    succs = {
        label: [
            s
            for s in fn.blocks[label].successors()
            if s in loop.body and s != loop.header
        ]
        for label in loop.body
    }
    reaches: Dict[str, Set[str]] = {}
    for start in loop.body:
        seen: Set[str] = set()
        stack = list(succs[start])
        while stack:
            label = stack.pop()
            if label in seen:
                continue
            seen.add(label)
            stack.extend(succs[label])
        reaches[start] = seen
    return reaches


def _collect_candidate_checks(
    fn: Function, loop: NaturalLoop, defs: Dict[str, List[Instr]], plan: _LoopPlan
) -> None:
    increments = _induction_increments(fn, loop, defs, plan.ivar)
    assert increments is not None
    reaches = _iteration_reachability(fn, loop)
    positions = _instr_positions(fn, loop)

    def slack_at(check: Instr) -> int:
        """Sum of increments that may already have executed when the check
        runs, within a single iteration."""
        check_block, check_position = positions[id(check)]
        total = 0
        for def_block, def_position, constant in increments:
            may_precede = (
                def_block == check_block and def_position < check_position
            ) or (def_block != check_block and check_block in reaches[def_block])
            if may_precede:
                total += constant
        return total

    for label in loop.body:
        for instr in fn.blocks[label].body:
            if isinstance(instr, CheckUpper) and instr.guard_group is None:
                if instr.array in defs:
                    continue  # array reference not invariant
                offset = _index_offset(defs, instr.index, plan.ivar)
                if offset is None:
                    continue
                plan.uppers.append(
                    _UpperCandidate(instr, instr.array, offset, slack_at(instr))
                )
            elif isinstance(instr, CheckLower) and instr.guard_group is None:
                offset = _index_offset(defs, instr.index, plan.ivar)
                if offset is None:
                    continue
                plan.lowers.append(_LowerCandidate(instr, offset))


# ----------------------------------------------------------------------
# Transformation.
# ----------------------------------------------------------------------


def _apply(fn: Function, program: Program, plan: _LoopPlan, report: VersioningReport) -> None:
    loop = plan.loop
    preds = fn.predecessors()
    outside_preds = [p for p in preds[loop.header] if p not in loop.body]
    if not outside_preds:
        return

    # 1. Clone the loop (fast version) without the candidate checks.
    candidates = set(id(c) for c in plan.candidate_checks)
    label_map: Dict[str, str] = {}
    for label in sorted(loop.body):
        label_map[label] = fn.new_block("fast").label
        report.blocks_added += 1
    for label in sorted(loop.body):
        source_block = fn.blocks[label]
        clone = fn.blocks[label_map[label]]
        for instr in source_block.body:
            if id(instr) in candidates:
                report.checks_removed_in_fast_path += 1
                continue
            # Cloned checks keep their identity: fast- and slow-path copies
            # are the same source check, so exception attribution and
            # per-check dynamic counting stay comparable with the
            # unversioned program.
            clone.body.append(instr.clone())
        terminator = (
            source_block.terminator.clone()
            if source_block.terminator is not None
            else None
        )
        if isinstance(terminator, Jump) and terminator.target in label_map:
            terminator.target = label_map[terminator.target]
        elif isinstance(terminator, Branch):
            if terminator.true_target in label_map:
                terminator.true_target = label_map[terminator.true_target]
            if terminator.false_target in label_map:
                terminator.false_target = label_map[terminator.false_target]
        clone.terminator = terminator

    # 2. Build the preheader test chain.
    slow_entry = loop.header
    fast_entry = label_map[loop.header]
    current = fn.new_block("version")
    report.blocks_added += 1
    entry_label = current.label

    def materialize_bound() -> Operand:
        if isinstance(plan.bound, _LenExpr):
            temp = fn.new_temp("vn")
            current.body.append(ArrayLen(temp, plan.bound.array))
            return Var(temp)
        return plan.bound

    tests: List[Tuple[str, Operand, Operand]] = []  # (op, lhs, rhs)
    for candidate in plan.uppers:
        length = fn.new_temp("vlen")
        current.body.append(ArrayLen(length, candidate.array))
        # Body edge guarantees ivar <= B-1 (strict) or B; the access sees
        # at most that plus the increments already executed this iteration
        # plus the index offset.  Test: max_index <= len(A) - 1.
        slack = candidate.offset + candidate.slack + (0 if plan.strict else 1)
        bound_operand = materialize_bound()
        index_bound: Operand
        if isinstance(bound_operand, Const):
            index_bound = Const(bound_operand.value + slack)
        elif slack == 0:
            index_bound = bound_operand
        else:
            temp = fn.new_temp("vbound")
            current.body.append(BinOp(temp, "add", bound_operand, Const(slack)))
            index_bound = Var(temp)
        tests.append(("le", index_bound, Var(length)))
    for candidate in plan.lowers:
        base: Operand = Var(plan.ivar)
        if candidate.offset != 0:
            temp = fn.new_temp("vlow")
            current.body.append(BinOp(temp, "add", base, Const(candidate.offset)))
            base = Var(temp)
        tests.append(("ge", base, Const(0)))

    if not tests:  # pragma: no cover - candidates imply tests
        return

    # Chain the tests: all pass -> fast loop, any fail -> slow loop.
    for position, (op, lhs, rhs) in enumerate(tests):
        flag = fn.new_temp("vtest")
        current.body.append(Cmp(flag, op, lhs, rhs))
        if position == len(tests) - 1:
            current.terminator = Branch(Var(flag), fast_entry, slow_entry)
        else:
            next_block = fn.new_block("version")
            report.blocks_added += 1
            current.terminator = Branch(Var(flag), next_block.label, slow_entry)
            current = next_block

    # 3. Route the outside predecessors through the test chain.
    for pred in outside_preds:
        fn.blocks[pred].replace_successor(loop.header, entry_label)

    report.loops_versioned += 1
