"""Value-range (interval) analysis baseline for bounds-check elimination.

This is the comparison class the paper positions ABCD against: "some
simpler algorithms (e.g., those based upon value-range analysis [Har77,
Pat95]) cannot eliminate partially redundant checks" — and, being purely
numeric, they also cannot relate an index to a *symbolic* array length.

The analysis computes an integer interval per SSA variable by abstract
interpretation over the SSA value graph with widening at φs:

* arithmetic transfers on intervals (precise for ``± const``, conservative
  otherwise);
* π-assignments refine their source interval with the branch/check
  predicate — numeric bounds only (a predicate against another variable
  uses that variable's current interval; a predicate against ``len(A)``
  uses the tracked length interval);
* array lengths are tracked as intervals too: ``new int[c]`` pins the
  length exactly, ``new int[n]`` adopts ``n``'s interval intersected with
  ``[0, +inf)``.

A lower check is redundant when ``lo(index) >= 0``; an upper check when
``hi(index) <= lo(len(A)) - 1``.  The baseline therefore removes most
lower checks and the upper checks of constant-sized (or provably
large-enough) arrays — but no loop against a symbolic ``len(a)`` and no
partially redundant check, which is exactly the gap Figure 6 attributes
to ABCD.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ir.function import Function, Program
from repro.ir.instructions import (
    ArrayLen,
    ArrayLoad,
    ArrayNew,
    BinOp,
    Call,
    CheckLower,
    CheckUpper,
    Cmp,
    Const,
    Copy,
    Operand,
    Phi,
    Pi,
    Var,
)

INF = math.inf


@dataclass(frozen=True)
class Interval:
    """A closed integer interval with ±inf endpoints."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        assert self.lo <= self.hi or (self.lo == INF and self.hi == -INF)

    @classmethod
    def top(cls) -> "Interval":
        return cls(-INF, INF)

    @classmethod
    def exact(cls, value: int) -> "Interval":
        return cls(value, value)

    @classmethod
    def at_least(cls, value: float) -> "Interval":
        return cls(value, INF)

    @classmethod
    def at_most(cls, value: float) -> "Interval":
        return cls(-INF, value)

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def widen(self, other: "Interval") -> "Interval":
        """Classic interval widening: unstable bounds jump to ±inf."""
        lo = self.lo if other.lo >= self.lo else -INF
        hi = self.hi if other.hi <= self.hi else INF
        return Interval(lo, hi)

    def shift(self, amount: int) -> "Interval":
        return Interval(self.lo + amount, self.hi + amount)

    def add(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def sub(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def clamp_lo(self, bound: float) -> "Interval":
        """Intersect with ``[bound, +inf)`` (empty collapses to bound)."""
        return Interval(max(self.lo, bound), max(self.hi, bound))

    def clamp_hi(self, bound: float) -> "Interval":
        return Interval(min(self.lo, bound), min(self.hi, bound))

    def __str__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


@dataclass
class RangeReport:
    """Outcome of the baseline over one function or program."""

    analyzed_lower: int = 0
    analyzed_upper: int = 0
    eliminated_lower: int = 0
    eliminated_upper: int = 0
    eliminated_ids: set = field(default_factory=set)

    @property
    def analyzed(self) -> int:
        return self.analyzed_lower + self.analyzed_upper

    @property
    def eliminated(self) -> int:
        return self.eliminated_lower + self.eliminated_upper

    def merge(self, other: "RangeReport") -> None:
        self.analyzed_lower += other.analyzed_lower
        self.analyzed_upper += other.analyzed_upper
        self.eliminated_lower += other.eliminated_lower
        self.eliminated_upper += other.eliminated_upper
        self.eliminated_ids |= other.eliminated_ids


#: After this many refinements of one variable, widening kicks in.
_WIDEN_THRESHOLD = 3


class RangeAnalysis:
    """Interval analysis over one SSA/e-SSA function."""

    def __init__(self, fn: Function) -> None:
        if fn.ssa_form == "none":
            raise ValueError("range analysis requires SSA form")
        self._fn = fn
        self.ranges: Dict[str, Interval] = {}
        self.length_ranges: Dict[str, Interval] = {}
        self._update_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Fixpoint.
    # ------------------------------------------------------------------

    def run(self) -> None:
        for param in self._fn.params:
            self.ranges[param] = Interval.top()
        order = self._fn.reachable_blocks()
        converged = False
        for _ in range(256):  # φ-widening bounds the ascending chains
            changed = False
            for label in order:
                for instr in self._fn.blocks[label].instructions():
                    changed |= self._transfer(instr)
            if not changed:
                converged = True
                break
        if not converged:
            # Sound fallback: a truncated fixpoint would under-approximate,
            # so forget everything rather than risk removing a live check.
            for name in self.ranges:
                self.ranges[name] = Interval.top()
            for name in self.length_ranges:
                self.length_ranges[name] = Interval.at_least(0)

    def _value(self, operand: Operand) -> Interval:
        if isinstance(operand, Const):
            return Interval.exact(operand.value)
        assert isinstance(operand, Var)
        return self.ranges.get(operand.name, Interval.top())

    def _length(self, array: str) -> Interval:
        return self.length_ranges.get(array, Interval.at_least(0))

    def _update(
        self,
        name: str,
        new: Interval,
        table: Optional[Dict[str, Interval]] = None,
        widen_ok: bool = False,
    ) -> bool:
        table = self.ranges if table is None else table
        old = table.get(name)
        if old is not None:
            merged = old.join(new)
            count = self._update_counts.get(name, 0)
            # Widening only at φ (loop-head) merges: every cyclic dataflow
            # dependency passes through a φ, so that alone guarantees
            # termination, and it keeps π/copy refinements precise.
            if widen_ok and merged != old and count >= _WIDEN_THRESHOLD:
                merged = old.widen(merged)
            if merged == old:
                return False
            self._update_counts[name] = count + 1
            table[name] = merged
            return True
        table[name] = new
        self._update_counts[name] = 1
        return True

    def _transfer(self, instr) -> bool:
        if isinstance(instr, Copy):
            changed = self._update(instr.dest, self._value(instr.src))
            if isinstance(instr.src, Var) and instr.src.name in self.length_ranges:
                changed |= self._update(
                    instr.dest, self.length_ranges[instr.src.name], self.length_ranges
                )
            return changed
        if isinstance(instr, BinOp):
            return self._update(instr.dest, self._binop(instr))
        if isinstance(instr, Cmp):
            return self._update(instr.dest, Interval(0, 1))
        if isinstance(instr, ArrayLen):
            return self._update(instr.dest, self._length(instr.array))
        if isinstance(instr, ArrayNew):
            length = self._value(instr.length).clamp_lo(0)
            return self._update(instr.dest, length, self.length_ranges)
        if isinstance(instr, ArrayLoad):
            return self._update(instr.dest, Interval.top())
        if isinstance(instr, Call):
            if instr.dest is not None:
                return self._update(instr.dest, Interval.top())
            return False
        if isinstance(instr, Phi):
            # Optimistic iteration: skip operands whose defining
            # instruction has not produced a value yet — they contribute
            # on a later round (the fixpoint loop re-runs until stable).
            merged: Optional[Interval] = None
            for operand in instr.incomings.values():
                if isinstance(operand, Var) and operand.name not in self.ranges:
                    continue
                incoming = self._value(operand)
                merged = incoming if merged is None else merged.join(incoming)
            if merged is None:
                return False
            changed = self._update(instr.dest, merged, widen_ok=True)
            # An array φ merges length information as well.
            length: Optional[Interval] = None
            for operand in instr.incomings.values():
                if isinstance(operand, Var) and operand.name in self.length_ranges:
                    incoming = self.length_ranges[operand.name]
                    length = incoming if length is None else length.join(incoming)
            if length is not None:
                changed |= self._update(instr.dest, length, self.length_ranges)
            return changed
        if isinstance(instr, Pi):
            return self._pi(instr)
        return False

    def _binop(self, instr: BinOp) -> Interval:
        lhs, rhs = self._value(instr.lhs), self._value(instr.rhs)
        if instr.op == "add":
            return lhs.add(rhs)
        if instr.op == "sub":
            return lhs.sub(rhs)
        if instr.op == "mul":
            if isinstance(instr.lhs, Const) and isinstance(instr.rhs, Const):
                return Interval.exact(instr.lhs.value * instr.rhs.value)
            # Sign-preserving special case: non-negative times non-negative.
            if lhs.lo >= 0 and rhs.lo >= 0:
                return Interval.at_least(0)
            return Interval.top()
        if instr.op in ("div", "mod"):
            if instr.op == "mod" and isinstance(instr.rhs, Const) and instr.rhs.value > 0:
                bound = instr.rhs.value - 1
                if lhs.lo >= 0:
                    return Interval(0, bound)
                return Interval(-bound, bound)
            if instr.op == "div" and lhs.lo >= 0 and rhs.lo >= 1:
                return Interval(0, lhs.hi)
            return Interval.top()
        return Interval.top()

    def _pi(self, instr: Pi) -> bool:
        source = self.ranges.get(instr.src, Interval.top())
        predicate = instr.predicate
        refined = source
        changed = False
        if predicate.arraylen_of is not None:
            if predicate.rel == "lt":
                length = self._length(predicate.arraylen_of)
                refined = refined.clamp_hi(length.hi - 1)
        else:
            assert predicate.other is not None
            other = self._value(predicate.other)
            if predicate.rel == "lt":
                refined = refined.clamp_hi(other.hi - 1)
            elif predicate.rel == "le":
                refined = refined.clamp_hi(other.hi)
            elif predicate.rel == "gt":
                refined = refined.clamp_lo(other.lo + 1)
            elif predicate.rel == "ge":
                refined = refined.clamp_lo(other.lo)
            elif predicate.rel == "eq":
                refined = refined.clamp_lo(other.lo).clamp_hi(other.hi)
        changed |= self._update(instr.dest, refined)
        # Arrays flowing through πs keep their length interval.
        if instr.src in self.length_ranges:
            changed |= self._update(
                instr.dest, self.length_ranges[instr.src], self.length_ranges
            )
        return changed

    # ------------------------------------------------------------------
    # Elimination.
    # ------------------------------------------------------------------

    def redundant_lower(self, instr: CheckLower) -> bool:
        return self._value(instr.index).lo >= 0

    def redundant_upper(self, instr: CheckUpper) -> bool:
        index = self._value(instr.index)
        length = self._length(instr.array)
        return index.hi <= length.lo - 1


def eliminate_with_ranges(fn: Function) -> RangeReport:
    """Run the baseline over one function, removing provably redundant
    checks in place."""
    analysis = RangeAnalysis(fn)
    analysis.run()
    report = RangeReport()
    for block in fn.blocks.values():
        kept: List = []
        for instr in block.body:
            if isinstance(instr, CheckLower):
                report.analyzed_lower += 1
                if analysis.redundant_lower(instr):
                    report.eliminated_lower += 1
                    report.eliminated_ids.add(instr.check_id)
                    continue
            elif isinstance(instr, CheckUpper):
                report.analyzed_upper += 1
                if analysis.redundant_upper(instr):
                    report.eliminated_upper += 1
                    report.eliminated_ids.add(instr.check_id)
                    continue
            kept.append(instr)
        block.body = kept
    return report


def eliminate_program_with_ranges(program: Program) -> RangeReport:
    """Run the baseline over every function of a program."""
    report = RangeReport()
    for fn in program.functions.values():
        report.merge(eliminate_with_ranges(fn))
    return report
