"""Baseline bounds-check eliminators ABCD is compared against."""

from repro.baselines.range_analysis import (
    Interval,
    RangeAnalysis,
    RangeReport,
    eliminate_program_with_ranges,
    eliminate_with_ranges,
)

__all__ = [
    "Interval",
    "RangeAnalysis",
    "RangeReport",
    "eliminate_with_ranges",
    "eliminate_program_with_ranges",
]
