"""The MiniJ VM: interpreter, values, and profiler."""

from repro.runtime.interpreter import (
    DEFAULT_COSTS,
    ExecutionResult,
    ExecutionStats,
    Interpreter,
    run_program,
)
from repro.runtime.profiler import Profile, collect_profile, static_check_table
from repro.runtime.values import ArrayValue, minij_div, minij_mod

__all__ = [
    "Interpreter",
    "run_program",
    "ExecutionResult",
    "ExecutionStats",
    "DEFAULT_COSTS",
    "Profile",
    "collect_profile",
    "static_check_table",
    "ArrayValue",
    "minij_div",
    "minij_mod",
]
