"""Runtime values for the MiniJ VM.

Scalars are Python ints (booleans are 0/1).  Arrays are
:class:`ArrayValue` objects with Java-like reference semantics: copies of
the reference alias the same storage, and the length is fixed at
allocation.

MiniJ integer division truncates toward zero (like Java), so the VM uses
:func:`minij_div` / :func:`minij_mod` rather than Python's floor division.
"""

from __future__ import annotations

from typing import List

from repro.errors import DivisionByZeroError, NegativeArraySizeError


class ArrayValue:
    """A fixed-length integer array with reference semantics."""

    __slots__ = ("data",)

    def __init__(self, length: int) -> None:
        if length < 0:
            raise NegativeArraySizeError(f"new int[{length}]")
        self.data: List[int] = [0] * length

    @property
    def length(self) -> int:
        return len(self.data)

    @classmethod
    def from_list(cls, values: List[int]) -> "ArrayValue":
        array = cls(len(values))
        array.data[:] = values
        return array

    def to_list(self) -> List[int]:
        return list(self.data)

    def __repr__(self) -> str:
        preview = ", ".join(str(v) for v in self.data[:8])
        suffix = ", ..." if self.length > 8 else ""
        return f"ArrayValue([{preview}{suffix}], len={self.length})"


def minij_div(lhs: int, rhs: int) -> int:
    """Integer division truncating toward zero (Java semantics)."""
    if rhs == 0:
        raise DivisionByZeroError(f"{lhs} / 0")
    quotient = abs(lhs) // abs(rhs)
    return quotient if (lhs >= 0) == (rhs >= 0) else -quotient


def minij_mod(lhs: int, rhs: int) -> int:
    """Remainder matching :func:`minij_div`: sign follows the dividend."""
    if rhs == 0:
        raise DivisionByZeroError(f"{lhs} % 0")
    return lhs - minij_div(lhs, rhs) * rhs
