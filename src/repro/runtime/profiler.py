"""Execution profiling: block/edge frequencies and hot checks.

ABCD is demand-driven: a dynamic compiler applies it to the *hot* bounds
checks first, and the PRE extension uses edge frequencies to decide whether
speculative insertion is profitable (paper, Sections 1 and 6.1).  This
module runs a training input through the interpreter and packages the
profile both consumers need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.function import Program
from repro.ir.instructions import CheckLower, CheckUpper
from repro.runtime.interpreter import Interpreter, Value


@dataclass
class Profile:
    """Edge/block frequencies and per-check execution counts."""

    block_counts: Dict[Tuple[str, str], int] = field(default_factory=dict)
    edge_counts: Dict[Tuple[str, str, str], int] = field(default_factory=dict)
    check_counts: Dict[int, int] = field(default_factory=dict)

    def block_frequency(self, function: str, label: str) -> int:
        return self.block_counts.get((function, label), 0)

    def edge_frequency(self, function: str, from_label: str, to_label: str) -> int:
        return self.edge_counts.get((function, from_label, to_label), 0)

    def check_frequency(self, check_id: int) -> int:
        return self.check_counts.get(check_id, 0)

    def hot_checks(self, threshold: int = 1) -> List[int]:
        """Check ids executed at least ``threshold`` times, hottest first."""
        hot = [
            (count, check_id)
            for check_id, count in self.check_counts.items()
            if count >= threshold
        ]
        hot.sort(reverse=True)
        return [check_id for _, check_id in hot]

    def hottest_fraction(self, fraction: float) -> List[int]:
        """The smallest set of hottest checks covering ``fraction`` of all
        dynamic check executions — the paper's "optimize only hot checks"
        scenario."""
        ranked = self.hot_checks()
        total = sum(self.check_counts.values())
        if total == 0:
            return []
        covered = 0
        selected: List[int] = []
        for check_id in ranked:
            selected.append(check_id)
            covered += self.check_counts[check_id]
            if covered >= fraction * total:
                break
        return selected


def collect_profile(
    program: Program,
    function_name: str = "main",
    args: Sequence[Value] = (),
    fuel: int = 50_000_000,
    on_trap: str = "raise",
) -> Profile:
    """Run the program once with profiling switched on.

    ``on_trap="partial"`` returns the counts gathered up to a runtime trap
    instead of propagating it — a JIT's training run must never abort the
    compile, and a partial profile is still a valid (if colder) profile.
    """
    if on_trap not in ("raise", "partial"):
        raise ValueError(f"bad on_trap {on_trap!r}")
    from repro.errors import MiniJRuntimeError

    interp = Interpreter(program, fuel=fuel, record_profile=True)
    try:
        interp.run(function_name, args)
    except MiniJRuntimeError:
        if on_trap == "raise":
            raise
    stats = interp.stats
    return Profile(
        block_counts=dict(stats.block_counts),
        edge_counts=dict(stats.edge_counts),
        check_counts=dict(stats.check_counts),
    )


def static_check_table(program: Program) -> Dict[int, Tuple[str, str, str]]:
    """Map every check id to (function, block label, kind) for reporting."""
    table: Dict[int, Tuple[str, str, str]] = {}
    for fn in program.functions.values():
        for label in fn.reachable_blocks():
            for instr in fn.blocks[label].instructions():
                if isinstance(instr, CheckLower):
                    table[instr.check_id] = (fn.name, label, "lower")
                elif isinstance(instr, CheckUpper):
                    table[instr.check_id] = (fn.name, label, "upper")
    return table


def find_check(program: Program, check_id: int) -> Optional[Tuple[str, str]]:
    """Locate a check id, returning (function, block label) or ``None``."""
    located = static_check_table(program).get(check_id)
    if located is None:
        return None
    return located[0], located[1]
