"""A compiling backend: translate the IR to Python source and ``exec`` it.

The paper's setting is a JIT — code is *compiled* after optimization, not
interpreted.  This backend is the reproduction's compiled tier: each MiniJ
function becomes one Python function whose body is straight-line Python
with gotos emulated by a block-dispatch loop.  Observable semantics match
the interpreter exactly:

* bounds checks raise :class:`BoundsCheckError` with the same check id and
  update the same counters;
* speculative checks raise guard flags; guarded checks test them;
* MiniJ division/modulo truncate toward zero;
* φs are compiled as parallel assignments on each incoming edge
  (the function is SSA-destructed-on-the-fly: the generated code assigns
  φ destinations at the end of each predecessor).

Differential tests (``tests/test_codegen.py``) run random and corpus
programs through both tiers and require identical results and counters.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import BoundsCheckError, MiniJRuntimeError
from repro.ir.function import Function, Program
from repro.ir.instructions import (
    ArrayLen,
    ArrayLoad,
    ArrayNew,
    ArrayStore,
    BinOp,
    Branch,
    Call,
    CheckLower,
    CheckUnsigned,
    CheckUpper,
    Cmp,
    Const,
    Copy,
    Jump,
    Operand,
    Phi,
    Pi,
    Return,
    SpeculativeCheck,
    Var,
)
from repro.runtime.interpreter import ExecutionResult, ExecutionStats
from repro.runtime.values import ArrayValue, minij_div, minij_mod

_CMP_PY = {
    "lt": "<",
    "le": "<=",
    "gt": ">",
    "ge": ">=",
    "eq": "==",
    "ne": "!=",
}


def _mangle(name: str) -> str:
    """IR variable names (``%t3``, ``j.2``, ``x@inl0``) to Python
    identifiers.  Escaping the underscore first makes the mapping
    injective, so distinct IR names can never collide in the generated
    code (e.g. a source variable ``x_d_0`` vs. the SSA name ``x.0``)."""
    return (
        "v_"
        + name.replace("_", "_u_")
        .replace("%", "_p_")
        .replace(".", "_d_")
        .replace("@", "_a_")
    )


def _operand(op: Operand) -> str:
    if isinstance(op, Const):
        return repr(op.value)
    assert isinstance(op, Var)
    return _mangle(op.name)


class _FunctionCompiler:
    """Emits one Python function for one IR function."""

    def __init__(self, fn: Function) -> None:
        self._fn = fn
        self._lines: List[str] = []
        self._indent = 2

    def emit(self, text: str) -> None:
        self._lines.append("    " * self._indent + text)

    def compile(self) -> str:
        fn = self._fn
        params = ", ".join(_mangle(p) for p in fn.params)
        self._lines.append(f"def {fn.name}({params}):")
        self._indent = 1
        self.emit("_guards = {}")
        labels = fn.reachable_blocks()
        label_ids = {label: i for i, label in enumerate(labels)}
        self.emit(f"_block = {label_ids[fn.entry]}")
        self.emit("while True:")
        self._indent = 2
        for label in labels:
            block = fn.blocks[label]
            self.emit(f"if _block == {label_ids[label]}:")
            self._indent += 1
            for instr in block.body:
                self._instr(instr)
            self._terminator(block, label_ids)
            self._indent -= 1
        self.emit("raise _RuntimeError('fell off dispatch loop')")
        return "\n".join(self._lines)

    # ------------------------------------------------------------------

    def _phi_moves(self, target_label: str, from_label: str) -> None:
        """Parallel φ assignment for the edge from_label -> target_label."""
        phis = self._fn.blocks[target_label].phis
        if not phis:
            return
        sources = ", ".join(
            _operand(phi.incomings[from_label]) for phi in phis
        )
        dests = ", ".join(_mangle(phi.dest) for phi in phis)
        # Tuple assignment evaluates the whole RHS first: parallel-copy
        # semantics for φs that read each other's destinations.
        self.emit(f"{dests} = {sources}")
        self.emit(f"_stats.instructions += {len(phis)}")
        self.emit(f"_stats.cycles += {len(phis)} * _costs['phi']")

    def _goto(self, target: str, from_label: str, label_ids: Dict[str, int]) -> None:
        self._phi_moves(target, from_label)
        self.emit(f"_block = {label_ids[target]}")
        self.emit("continue")

    def _terminator(self, block, label_ids: Dict[str, int]) -> None:
        term = block.terminator
        self.emit("_stats.instructions += 1")
        if isinstance(term, Jump):
            self.emit("_stats.cycles += _costs['jump']")
            self._goto(term.target, block.label, label_ids)
        elif isinstance(term, Branch):
            self.emit("_stats.cycles += _costs['branch']")
            self.emit(f"if {_operand(term.cond)} != 0:")
            self._indent += 1
            self._goto(term.true_target, block.label, label_ids)
            self._indent -= 1
            self.emit("else:")
            self._indent += 1
            self._goto(term.false_target, block.label, label_ids)
            self._indent -= 1
        elif isinstance(term, Return):
            self.emit("_stats.cycles += _costs['return']")
            if term.value is None:
                self.emit("return None")
            else:
                self.emit(f"return {_operand(term.value)}")
        else:  # pragma: no cover
            raise MiniJRuntimeError(f"bad terminator {term}")

    # ------------------------------------------------------------------

    def _count(self, cost_key: str) -> None:
        self.emit("_stats.instructions += 1")
        self.emit(f"_stats.cycles += _costs['{cost_key}']")

    def _instr(self, instr) -> None:
        if isinstance(instr, Copy):
            self._count("copy")
            self.emit(f"{_mangle(instr.dest)} = {_operand(instr.src)}")
        elif isinstance(instr, Pi):
            self._count("pi")
            self.emit(f"{_mangle(instr.dest)} = {_mangle(instr.src)}")
        elif isinstance(instr, BinOp):
            dest = _mangle(instr.dest)
            lhs, rhs = _operand(instr.lhs), _operand(instr.rhs)
            if instr.op == "add":
                self._count("binop")
                self.emit(f"{dest} = {lhs} + {rhs}")
            elif instr.op == "sub":
                self._count("binop")
                self.emit(f"{dest} = {lhs} - {rhs}")
            elif instr.op == "mul":
                self._count("binop")
                self.emit(f"{dest} = {lhs} * {rhs}")
            elif instr.op == "div":
                self._count("div")
                self.emit(f"{dest} = _div({lhs}, {rhs})")
            else:
                self._count("div")
                self.emit(f"{dest} = _mod({lhs}, {rhs})")
        elif isinstance(instr, Cmp):
            self._count("cmp")
            op = _CMP_PY[instr.op]
            self.emit(
                f"{_mangle(instr.dest)} = 1 if {_operand(instr.lhs)} {op} "
                f"{_operand(instr.rhs)} else 0"
            )
        elif isinstance(instr, ArrayNew):
            self._count("arraynew")
            self.emit(f"{_mangle(instr.dest)} = _ArrayValue({_operand(instr.length)})")
        elif isinstance(instr, ArrayLen):
            self._count("arraylen")
            self.emit(f"{_mangle(instr.dest)} = len({_mangle(instr.array)}.data)")
        elif isinstance(instr, ArrayLoad):
            self._count("arrayload")
            self.emit(
                f"{_mangle(instr.dest)} = _load("
                f"{_mangle(instr.array)}, {_operand(instr.index)})"
            )
        elif isinstance(instr, ArrayStore):
            self._count("arraystore")
            self.emit(
                f"_store({_mangle(instr.array)}, {_operand(instr.index)}, "
                f"{_operand(instr.value)})"
            )
        elif isinstance(instr, CheckLower):
            self.emit("_stats.instructions += 1")
            self._check_guard_prefix(instr)
            self.emit(f"_stats.lower_checks += 1")
            self.emit(f"_stats.count_check({instr.check_id})")
            self.emit(f"_stats.cycles += _costs['checklower']")
            self.emit(
                f"if {_operand(instr.index)} < 0: "
                f"raise _BoundsError({instr.check_id}, {_operand(instr.index)}, -1, 'lower')"
            )
            self._check_guard_suffix(instr)
        elif isinstance(instr, CheckUpper):
            self.emit("_stats.instructions += 1")
            self._check_guard_prefix(instr)
            self.emit(f"_stats.upper_checks += 1")
            self.emit(f"_stats.count_check({instr.check_id})")
            self.emit(f"_stats.cycles += _costs['checkupper']")
            index = _operand(instr.index)
            array = _mangle(instr.array)
            self.emit(
                f"if {index} >= len({array}.data): "
                f"raise _BoundsError({instr.check_id}, {index}, "
                f"len({array}.data), 'upper')"
            )
            self._check_guard_suffix(instr)
        elif isinstance(instr, CheckUnsigned):
            self.emit("_stats.instructions += 1")
            self._check_guard_prefix(instr)
            self.emit("_stats.unsigned_checks += 1")
            self.emit("_stats.lower_checks += 1")
            self.emit("_stats.upper_checks += 1")
            self.emit(f"_stats.count_check({instr.lower_id})")
            self.emit(f"_stats.count_check({instr.upper_id})")
            self.emit("_stats.cycles += _costs['checkunsigned']")
            index = _operand(instr.index)
            array = _mangle(instr.array)
            self.emit(
                f"if {index} < 0: raise _BoundsError({instr.lower_id}, "
                f"{index}, len({array}.data), 'lower')"
            )
            self.emit(
                f"if {index} >= len({array}.data): raise _BoundsError("
                f"{instr.upper_id}, {index}, len({array}.data), 'upper')"
            )
            self._check_guard_suffix(instr)
        elif isinstance(instr, SpeculativeCheck):
            cost = "checkupper" if instr.kind == "upper" else "checklower"
            self._count(cost)
            self.emit("_stats.speculative_checks += 1")
            self.emit(f"_stats.count_check({instr.check_id})")
            index = _operand(instr.index)
            if instr.kind == "upper":
                condition = f"{index} >= len({_mangle(instr.array)}.data)"
            else:
                condition = f"{index} < 0"
            self.emit(f"if {condition}:")
            self._indent += 1
            self.emit(f"_guards[{instr.guard_group}] = True")
            self.emit("_stats.speculation_failures += 1")
            self._indent -= 1
        elif isinstance(instr, Call):
            self._count("call")
            args = ", ".join(_operand(a) for a in instr.args)
            target = _mangle(instr.dest) if instr.dest is not None else "_"
            self.emit(f"{target} = _functions['{instr.callee}']({args})")
        elif isinstance(instr, Phi):  # pragma: no cover - φs live in block.phis
            raise MiniJRuntimeError("φ in block body")
        else:  # pragma: no cover
            raise MiniJRuntimeError(f"cannot compile {instr}")

    def _check_guard_prefix(self, instr) -> None:
        if instr.guard_group is not None:
            self.emit("_stats.cycles += _costs['guard_test']")
            self.emit(f"if _guards.get({instr.guard_group}, False):")
            self._indent += 1

    def _check_guard_suffix(self, instr) -> None:
        if instr.guard_group is not None:
            self._indent -= 1


class CompiledProgram:
    """A program translated to Python functions sharing one stats object."""

    def __init__(self, program: Program) -> None:
        self.stats = ExecutionStats()
        self._functions: Dict[str, object] = {}
        self.sources: Dict[str, str] = {}
        namespace = {
            "_stats": self.stats,
            "_costs": dict(__import__("repro.runtime.interpreter", fromlist=["DEFAULT_COSTS"]).DEFAULT_COSTS),
            "_div": minij_div,
            "_mod": minij_mod,
            "_ArrayValue": ArrayValue,
            "_BoundsError": BoundsCheckError,
            "_RuntimeError": MiniJRuntimeError,
            "_load": _checked_load,
            "_store": _checked_store,
            "_functions": self._functions,
        }
        for fn in program.functions.values():
            source = _FunctionCompiler(fn).compile()
            self.sources[fn.name] = source
            exec(compile(source, f"<repro:{fn.name}>", "exec"), namespace)
            self._functions[fn.name] = namespace[fn.name]

    def run(self, function_name: str = "main", args: Sequence = ()) -> ExecutionResult:
        from repro.errors import CallDepthExceeded, UnknownFunctionError
        from repro.limits import recursion_headroom

        try:
            fn = self._functions[function_name]
        except KeyError:
            raise UnknownFunctionError(
                f"program has no function {function_name!r}"
            ) from None
        try:
            with recursion_headroom(20_000):
                value = fn(*args)
        except RecursionError:
            raise CallDepthExceeded(
                f"call depth exhausted the generated-code stack in "
                f"{function_name!r}"
            ) from None
        return ExecutionResult(value, self.stats)


def _checked_load(array: ArrayValue, index: int) -> int:
    if not 0 <= index < len(array.data):
        raise MiniJRuntimeError(
            f"UNSOUND: unchecked load at index {index} (length {len(array.data)})"
        )
    return array.data[index]


def _checked_store(array: ArrayValue, index: int, value: int) -> None:
    if not 0 <= index < len(array.data):
        raise MiniJRuntimeError(
            f"UNSOUND: unchecked store at index {index} (length {len(array.data)})"
        )
    array.data[index] = value


def compile_to_python(program: Program) -> CompiledProgram:
    """Translate ``program`` into executable Python (the compiled tier)."""
    return CompiledProgram(program)
