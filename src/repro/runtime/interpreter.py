"""The MiniJ virtual machine: a direct interpreter over the CFG IR.

This is the reproduction's stand-in for running optimized code on hardware.
It provides the measurements the paper reports:

* **dynamic bounds-check counts**, per check id and per kind — Figure 6's
  metric is "fraction of dynamic upper-bound checks removed", which the
  harness computes by running the same input through the unoptimized and
  optimized programs and comparing these counters;
* a **cycle cost model** (a full bounds check costs one memory load of the
  array length plus two compares, per Section 1) for the run-time
  improvement experiment;
* **exception semantics** — checks raise :class:`BoundsCheckError` exactly
  at their program point, which differential tests use to confirm ABCD
  never changes observable behaviour;
* the **speculation protocol** of Section 6.2 — a PRE-inserted
  :class:`SpeculativeCheck` sets a guard flag instead of trapping, and the
  original check (now ``guard_group``-tagged) only executes when its flag
  is set, emulating "fall back to the unoptimized loop" recovery.

The interpreter executes SSA, e-SSA, and plain form alike: φs resolve via
the incoming edge taken, πs are copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import (
    BoundsCheckError,
    CallDepthExceeded,
    MiniJRuntimeError,
    TrapLimitExceeded,
    UnknownFunctionError,
)
from repro.ir.function import Function, Program
from repro.ir.instructions import (
    ArrayLen,
    ArrayLoad,
    ArrayNew,
    ArrayStore,
    BinOp,
    Branch,
    Call,
    CheckLower,
    CheckUnsigned,
    CheckUpper,
    Cmp,
    Const,
    Copy,
    Jump,
    Operand,
    Phi,
    Pi,
    Return,
    SpeculativeCheck,
    Var,
)
from repro.runtime.values import ArrayValue, minij_div, minij_mod

Value = Union[int, ArrayValue]

#: Cycle costs per instruction class.  A full bounds check (lower+upper)
#: costs 3: one length load plus two compares (paper, Section 1).
DEFAULT_COSTS = {
    "copy": 1,
    "binop": 1,
    "div": 8,
    "cmp": 1,
    "arraynew": 10,
    "arraylen": 1,
    "arrayload": 2,
    "arraystore": 2,
    "checklower": 1,
    "checkupper": 2,
    # Section 7.2: one unsigned comparison replaces the pair.
    "checkunsigned": 2,
    "guard_test": 1,
    "call": 5,
    "jump": 1,
    "branch": 1,
    "return": 1,
    "phi": 1,
    "pi": 1,
}


@dataclass
class ExecutionStats:
    """Counters accumulated over one execution."""

    instructions: int = 0
    cycles: int = 0
    #: Dynamic execution count per check id (includes speculative checks).
    check_counts: Dict[int, int] = field(default_factory=dict)
    #: Dynamic count of lower/upper checks that actually executed their
    #: comparison (guarded checks with an unraised flag do not count).
    lower_checks: int = 0
    upper_checks: int = 0
    #: Merged (Section 7.2) checks executed; each also counts one lower
    #: and one upper execution since it verifies both bounds.
    unsigned_checks: int = 0
    speculative_checks: int = 0
    #: How often a speculative check failed (raised its guard flag).
    speculation_failures: int = 0
    #: Per-block execution counts, keyed by (function, label).
    block_counts: Dict[tuple, int] = field(default_factory=dict)
    #: Per-edge execution counts, keyed by (function, from_label, to_label).
    edge_counts: Dict[tuple, int] = field(default_factory=dict)

    def count_check(self, check_id: int) -> None:
        self.check_counts[check_id] = self.check_counts.get(check_id, 0) + 1

    @property
    def total_checks(self) -> int:
        return self.lower_checks + self.upper_checks


@dataclass
class ExecutionResult:
    """The outcome of running a program: value + counters."""

    value: Optional[Value]
    stats: ExecutionStats


class Interpreter:
    """Executes a :class:`Program` starting from a chosen function."""

    def __init__(
        self,
        program: Program,
        fuel: int = 50_000_000,
        record_profile: bool = False,
        costs: Optional[Dict[str, int]] = None,
    ) -> None:
        self._program = program
        self._fuel = fuel
        self._record_profile = record_profile
        self._costs = dict(DEFAULT_COSTS if costs is None else costs)
        self.stats = ExecutionStats()

    # ------------------------------------------------------------------
    # Entry points.
    # ------------------------------------------------------------------

    def run(self, function_name: str, args: Sequence[Value] = ()) -> ExecutionResult:
        """Execute ``function_name`` with ``args`` and return the result.

        Every failure mode crosses this boundary as a
        :class:`MiniJRuntimeError`: an entry name the program lacks would
        otherwise leak the program table's raw :class:`KeyError`, and
        unbounded MiniJ recursion the host's :class:`RecursionError`.
        """
        try:
            fn = self._program.function(function_name)
        except KeyError:
            raise UnknownFunctionError(
                f"program has no function {function_name!r}"
            ) from None
        try:
            value = self._call(fn, list(args))
        except RecursionError:
            raise CallDepthExceeded(
                f"call depth exhausted the interpreter stack in {function_name!r}"
            ) from None
        return ExecutionResult(value, self.stats)

    # ------------------------------------------------------------------
    # Frames.
    # ------------------------------------------------------------------

    def _call(self, fn: Function, args: List[Value]) -> Optional[Value]:
        if len(args) != len(fn.params):
            raise MiniJRuntimeError(
                f"{fn.name} expects {len(fn.params)} argument(s), got {len(args)}"
            )
        env: Dict[str, Value] = dict(zip(fn.params, args))
        guards: Dict[int, bool] = {}
        label = fn.entry
        came_from: Optional[str] = None
        stats = self.stats
        profile = self._record_profile

        while True:
            block = fn.blocks[label]
            if profile:
                key = (fn.name, label)
                stats.block_counts[key] = stats.block_counts.get(key, 0) + 1
                if came_from is not None:
                    edge = (fn.name, came_from, label)
                    stats.edge_counts[edge] = stats.edge_counts.get(edge, 0) + 1

            # φs evaluate in parallel against the incoming edge.
            if block.phis:
                assert came_from is not None, "φ in entry block"
                updates = {
                    phi.dest: self._value(env, phi.incomings[came_from])
                    for phi in block.phis
                }
                env.update(updates)
                stats.instructions += len(updates)
                stats.cycles += len(updates) * self._costs["phi"]

            for instr in block.body:
                self._execute(fn, env, guards, instr)

            term = block.terminator
            stats.instructions += 1
            if isinstance(term, Jump):
                stats.cycles += self._costs["jump"]
                came_from, label = label, term.target
            elif isinstance(term, Branch):
                stats.cycles += self._costs["branch"]
                taken = term.true_target if self._value(env, term.cond) != 0 else term.false_target
                came_from, label = label, taken
            elif isinstance(term, Return):
                stats.cycles += self._costs["return"]
                return None if term.value is None else self._value(env, term.value)
            else:  # pragma: no cover - verifier precludes this
                raise MiniJRuntimeError(f"bad terminator {term}")

            if stats.instructions > self._fuel:
                raise TrapLimitExceeded(
                    f"exceeded fuel of {self._fuel} instructions in {fn.name}"
                )

    # ------------------------------------------------------------------
    # Instructions.
    # ------------------------------------------------------------------

    def _value(self, env: Dict[str, Value], operand: Operand) -> Value:
        if isinstance(operand, Const):
            return operand.value
        assert isinstance(operand, Var)
        try:
            return env[operand.name]
        except KeyError:
            raise MiniJRuntimeError(f"read of unset variable {operand.name!r}") from None

    def _execute(self, fn: Function, env: Dict[str, Value], guards: Dict[int, bool], instr) -> None:
        stats = self.stats
        stats.instructions += 1
        costs = self._costs

        if isinstance(instr, Copy):
            stats.cycles += costs["copy"]
            env[instr.dest] = self._value(env, instr.src)
        elif isinstance(instr, BinOp):
            lhs = self._value(env, instr.lhs)
            rhs = self._value(env, instr.rhs)
            op = instr.op
            if op == "add":
                stats.cycles += costs["binop"]
                env[instr.dest] = lhs + rhs
            elif op == "sub":
                stats.cycles += costs["binop"]
                env[instr.dest] = lhs - rhs
            elif op == "mul":
                stats.cycles += costs["binop"]
                env[instr.dest] = lhs * rhs
            elif op == "div":
                stats.cycles += costs["div"]
                env[instr.dest] = minij_div(lhs, rhs)
            elif op == "mod":
                stats.cycles += costs["div"]
                env[instr.dest] = minij_mod(lhs, rhs)
            else:  # pragma: no cover
                raise MiniJRuntimeError(f"bad binop {op!r}")
        elif isinstance(instr, Cmp):
            stats.cycles += costs["cmp"]
            lhs = self._value(env, instr.lhs)
            rhs = self._value(env, instr.rhs)
            op = instr.op
            if op == "lt":
                result = lhs < rhs
            elif op == "le":
                result = lhs <= rhs
            elif op == "gt":
                result = lhs > rhs
            elif op == "ge":
                result = lhs >= rhs
            elif op == "eq":
                result = lhs == rhs
            else:
                result = lhs != rhs
            env[instr.dest] = 1 if result else 0
        elif isinstance(instr, CheckLower):
            if instr.guard_group is not None:
                stats.cycles += costs["guard_test"]
                if not guards.get(instr.guard_group, False):
                    return
            stats.cycles += costs["checklower"]
            stats.lower_checks += 1
            stats.count_check(instr.check_id)
            index = self._value(env, instr.index)
            if index < 0:
                raise BoundsCheckError(instr.check_id, index, -1, "lower")
        elif isinstance(instr, CheckUpper):
            if instr.guard_group is not None:
                stats.cycles += costs["guard_test"]
                if not guards.get(instr.guard_group, False):
                    return
            stats.cycles += costs["checkupper"]
            stats.upper_checks += 1
            stats.count_check(instr.check_id)
            index = self._value(env, instr.index)
            array = self._array(env, instr.array)
            if index >= array.length:
                raise BoundsCheckError(instr.check_id, index, array.length, "upper")
        elif isinstance(instr, CheckUnsigned):
            if instr.guard_group is not None:
                stats.cycles += costs["guard_test"]
                if not guards.get(instr.guard_group, False):
                    return
            stats.cycles += costs["checkunsigned"]
            stats.unsigned_checks += 1
            stats.lower_checks += 1
            stats.upper_checks += 1
            stats.count_check(instr.lower_id)
            stats.count_check(instr.upper_id)
            index = self._value(env, instr.index)
            array = self._array(env, instr.array)
            # The unsigned trick: a negative index, viewed unsigned, always
            # exceeds the length; report it as the lower-bound failure the
            # unmerged program would raise.
            if index < 0:
                raise BoundsCheckError(instr.lower_id, index, array.length, "lower")
            if index >= array.length:
                raise BoundsCheckError(instr.upper_id, index, array.length, "upper")
        elif isinstance(instr, SpeculativeCheck):
            stats.cycles += costs["checkupper" if instr.kind == "upper" else "checklower"]
            stats.speculative_checks += 1
            stats.count_check(instr.check_id)
            index = self._value(env, instr.index)
            failed = False
            if instr.kind == "upper":
                array = self._array(env, instr.array)
                failed = index >= array.length
            else:
                failed = index < 0
            if failed:
                guards[instr.guard_group] = True
                stats.speculation_failures += 1
        elif isinstance(instr, ArrayLoad):
            stats.cycles += costs["arrayload"]
            array = self._array(env, instr.array)
            index = self._value(env, instr.index)
            if not 0 <= index < array.length:
                # Unchecked access out of range: only possible if an
                # optimizer wrongly removed a needed check.  Fail loudly.
                raise MiniJRuntimeError(
                    f"UNSOUND: unchecked load {instr.array}[{index}] "
                    f"(length {array.length}) in {fn.name}"
                )
            env[instr.dest] = array.data[index]
        elif isinstance(instr, ArrayStore):
            stats.cycles += costs["arraystore"]
            array = self._array(env, instr.array)
            index = self._value(env, instr.index)
            if not 0 <= index < array.length:
                raise MiniJRuntimeError(
                    f"UNSOUND: unchecked store {instr.array}[{index}] "
                    f"(length {array.length}) in {fn.name}"
                )
            array.data[index] = self._value(env, instr.value)
        elif isinstance(instr, ArrayLen):
            stats.cycles += costs["arraylen"]
            env[instr.dest] = self._array(env, instr.array).length
        elif isinstance(instr, ArrayNew):
            stats.cycles += costs["arraynew"]
            length = self._value(env, instr.length)
            env[instr.dest] = ArrayValue(length)
        elif isinstance(instr, Call):
            stats.cycles += costs["call"]
            callee = self._program.function(instr.callee)
            args = [self._value(env, arg) for arg in instr.args]
            result = self._call(callee, args)
            if instr.dest is not None:
                if result is None:
                    raise MiniJRuntimeError(f"void call result used: {instr}")
                env[instr.dest] = result
        elif isinstance(instr, Pi):
            stats.cycles += costs["pi"]
            env[instr.dest] = env[instr.src]
        else:  # pragma: no cover - exhaustive
            raise MiniJRuntimeError(f"cannot execute {instr}")

    def _array(self, env: Dict[str, Value], name: str) -> ArrayValue:
        value = env.get(name)
        if not isinstance(value, ArrayValue):
            raise MiniJRuntimeError(f"{name!r} is not an array (got {value!r})")
        return value


def run_program(
    program: Program,
    function_name: str = "main",
    args: Sequence[Value] = (),
    fuel: int = 50_000_000,
    record_profile: bool = False,
) -> ExecutionResult:
    """Convenience wrapper: run ``function_name`` and return the result."""
    interp = Interpreter(program, fuel=fuel, record_profile=record_profile)
    return interp.run(function_name, args)
