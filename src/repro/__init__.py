"""repro — a full reproduction of *ABCD: Eliminating Array Bounds Checks
on Demand* (Bodík, Gupta, Sarkar; PLDI 2000).

The package contains everything the paper's system needs, built from
scratch:

* ``repro.frontend`` — MiniJ, a small Java-like source language;
* ``repro.ir`` — a three-address CFG IR with explicit bounds checks;
* ``repro.analysis`` / ``repro.ssa`` — dominance, liveness, pruned SSA,
  and the paper's extended SSA (π-nodes);
* ``repro.opt`` — the standard pre-pass suite (copy propagation, constant
  folding, DCE, GVN);
* ``repro.core`` — the ABCD algorithm itself: inequality graph, the
  demand-driven Figure-5 solver, PRE of partially redundant checks, and
  the exhaustive baseline;
* ``repro.runtime`` — a profiling VM that measures dynamic check counts
  and models check cost;
* ``repro.baselines`` — value-range analysis, the classic full-redundancy
  competitor;
* ``repro.passes`` — the pass-manager layer: compilation sessions, the
  cached analysis manager, and the unified pass registry every driver
  shares;
* ``repro.bench`` — the benchmark corpus and the harness regenerating the
  paper's evaluation.

Quick start::

    from repro import CompilationSession, run

    session = CompilationSession()
    program = session.compile(open("prog.mj").read())
    report = session.optimize(program)
    print(report.eliminated_count("upper"), "upper checks removed")
    print(session.stats.format_table())   # per-pass timing + cache stats
    print(run(program, "main").value)

The one-shot helpers remain::

    from repro import compile_source, abcd, run

    program = compile_source(open("prog.mj").read())
    report = abcd(program)
"""

from repro.core.abcd import ABCDConfig, ABCDReport
from repro.passes.session import CompilationSession
from repro.pipeline import abcd, clone_program, compile_source, profile, run

__version__ = "1.0.0"

__all__ = [
    "CompilationSession",
    "compile_source",
    "clone_program",
    "profile",
    "abcd",
    "run",
    "ABCDConfig",
    "ABCDReport",
    "__version__",
]
